//! The paper's §6 ordering claims, asserted across several seeds.
//!
//! - best case ≤ one-step, iterative ≤ one-step ≤ worst case;
//! - static-doubled lies between best case and worst case and lands near
//!   the iterative result, but is not itself a bound;
//! - one-step costs ≈ 2 waveform calculations per arc, iterative ≥ 3 full
//!   passes' worth.

use xtalk::prelude::*;

fn analyze_all(seed: u64) -> [ModeReport; 5] {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = xtalk::netlist::generator::generate(&GeneratorConfig::small(seed), &library)
        .expect("generate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
    AnalysisMode::all().map(|m| sta.analyze(m).expect("analysis"))
}

#[test]
fn orderings_hold_across_seeds() {
    for seed in [101u64, 202, 303] {
        let [best, doubled, worst, one, iter] = analyze_all(seed);
        let (b, d, w, o, i) = (
            best.longest_delay,
            doubled.longest_delay,
            worst.longest_delay,
            one.longest_delay,
            iter.longest_delay,
        );
        let eps = 1e-12;
        assert!(b <= o + eps, "seed {seed}: best {b} <= one-step {o}");
        assert!(i <= o + eps, "seed {seed}: iterative {i} <= one-step {o}");
        assert!(o <= w + eps, "seed {seed}: one-step {o} <= worst {w}");
        assert!(b <= d + eps, "seed {seed}: best {b} <= doubled {d}");
        assert!(d <= w + eps, "seed {seed}: doubled {d} <= worst {w}");
        assert!(b <= i + eps, "seed {seed}: best {b} <= iterative {i}");
        // Coupling is a real effect on these routed blocks.
        assert!(w > b * 1.005, "seed {seed}: coupling visible");
    }
}

#[test]
fn doubled_is_near_iterative_but_not_a_bound_by_construction() {
    // The paper's §6 discussion: static-doubled lands in the same range as
    // the iterative refinement (which is why people used it), yet it is not
    // a safe bound. We check the "lands near" part numerically and the "not
    // safe" part structurally (mode classification).
    let [_, doubled, worst, _, iter] = analyze_all(404);
    let d = doubled.longest_delay;
    let i = iter.longest_delay;
    let w = worst.longest_delay;
    assert!(
        d > 0.8 * i && d < 1.25 * i,
        "doubled {d} should land near iterative {i}"
    );
    assert!(d < w, "doubled stays below the worst-case bound");
    assert!(!AnalysisMode::StaticDoubled.is_safe_bound());
    assert!(AnalysisMode::Iterative { esperance: false }.is_safe_bound());
}

#[test]
fn work_ratios_match_paper_complexity_claims() {
    let [best, _doubled, worst, one, iter] = analyze_all(505);
    // One-step: at most two waveform calculations per arc (paper §5.1),
    // and strictly more than a plain pass on a coupled design.
    assert!(one.stage_solves > best.stage_solves);
    assert!(one.stage_solves <= 2 * best.stage_solves);
    // Worst case costs one calculation per arc, like best case.
    assert_eq!(worst.stage_solves, best.stage_solves);
    // Iterative: at least two full passes (paper: "a full STA is performed
    // twice, with improvement at least three times").
    assert!(iter.passes >= 2);
    assert!(iter.stage_solves > one.stage_solves);
}

#[test]
fn iterative_pass_delays_never_increase() {
    let [_, _, _, one, iter] = analyze_all(606);
    assert!(
        iter.pass_delays[0] <= one.longest_delay + 1e-12,
        "pass 1 of iterative IS the one-step analysis"
    );
    for w in iter.pass_delays.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "monotone refinement: {:?}",
            iter.pass_delays
        );
    }
}
