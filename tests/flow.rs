//! End-to-end flow test: generate → place → route → extract → analyze.

use xtalk::prelude::*;

struct Flow {
    process: Process,
    library: Library,
    netlist: Netlist,
    parasitics: xtalk::layout::Parasitics,
}

fn flow(config: &GeneratorConfig) -> Flow {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = xtalk::netlist::generator::generate(config, &library).expect("generate");
    netlist.validate(&library).expect("valid netlist");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    Flow {
        process,
        library,
        netlist,
        parasitics,
    }
}

#[test]
fn full_flow_all_modes_on_small_block() {
    let f = flow(&GeneratorConfig::small(77));
    let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
    let mut delays = Vec::new();
    for mode in AnalysisMode::all() {
        let r = sta.analyze(mode).expect("analysis runs");
        assert!(r.longest_delay > 0.0, "{mode}: positive delay");
        assert!(r.longest_delay < 100e-9, "{mode}: sane delay");
        assert!(!r.critical_path.is_empty(), "{mode}: path reported");
        assert!(r.stage_solves > 0);
        assert_eq!(r.passes, r.pass_delays.len());
        delays.push(r.longest_delay);
    }
    // Modes must actually differ on a coupled design.
    let best = delays[0];
    let worst = delays[2];
    assert!(worst > best * 1.01, "coupling must be visible: {delays:?}");
}

#[test]
fn critical_path_endpoint_matches_report() {
    let f = flow(&GeneratorConfig::small(78));
    let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
    let r = sta.analyze(AnalysisMode::OneStep).expect("analysis");
    let last = r.critical_path.last().expect("path nonempty");
    let endpoint = r.endpoint_net.expect("net endpoint");
    assert_eq!(last.net, endpoint);
    assert_eq!(last.rising, r.endpoint_rising);
    assert!((last.arrival - r.longest_delay).abs() < 1e-15);
    // Endpoint is a real endpoint: PO or FF data input.
    let net = f.netlist.net(endpoint);
    let feeds_ff = net.loads.iter().any(|&(g, pin)| {
        let gate = f.netlist.gate(g);
        f.library
            .cell(&gate.cell)
            .and_then(|c| c.seq.as_ref().map(|s| s.d_pin == pin))
            .unwrap_or(false)
    });
    assert!(net.is_primary_output || feeds_ff);
}

#[test]
fn analysis_is_deterministic() {
    let f = flow(&GeneratorConfig::small(79));
    let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
    let a = sta
        .analyze(AnalysisMode::Iterative { esperance: false })
        .expect("a");
    let b = sta
        .analyze(AnalysisMode::Iterative { esperance: false })
        .expect("b");
    assert_eq!(a.longest_delay, b.longest_delay);
    assert_eq!(a.passes, b.passes);
    assert_eq!(a.critical_path.len(), b.critical_path.len());
}

#[test]
fn unrouted_design_times_without_coupling() {
    // Timing with empty parasitics (pre-layout mode): all modes agree.
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist =
        xtalk::netlist::bench::parse(xtalk::netlist::data::S27_BENCH, &library).expect("parse");
    let parasitics = xtalk::layout::Parasitics::empty(netlist.net_count());
    let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
    let best = sta
        .analyze(AnalysisMode::BestCase)
        .expect("best")
        .longest_delay;
    let worst = sta
        .analyze(AnalysisMode::WorstCase)
        .expect("worst")
        .longest_delay;
    assert!(
        (best - worst).abs() < 1e-15,
        "no couplings => all modes identical"
    );
}

#[test]
fn clock_tree_contributes_insertion_delay() {
    // The same block with and without a clock tree: launch arrivals (and so
    // the longest path) must be later with the buffered tree.
    let mut cfg = GeneratorConfig::small(80);
    cfg.clock_tree = true;
    let with_tree = flow(&cfg);
    cfg.clock_tree = false;
    let flat = flow(&cfg);
    let d_tree = Sta::new(
        &with_tree.netlist,
        &with_tree.library,
        &with_tree.process,
        &with_tree.parasitics,
    )
    .expect("sta")
    .analyze(AnalysisMode::BestCase)
    .expect("tree")
    .longest_delay;
    let d_flat = Sta::new(
        &flat.netlist,
        &flat.library,
        &flat.process,
        &flat.parasitics,
    )
    .expect("sta")
    .analyze(AnalysisMode::BestCase)
    .expect("flat")
    .longest_delay;
    assert!(
        d_tree > d_flat,
        "clock-tree insertion delay must show: {d_flat} vs {d_tree}"
    );
}

#[test]
fn slack_table_reports_violations() {
    use xtalk::sta::report::slack_table;
    let f = flow(&GeneratorConfig::small(81));
    let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
    let r = sta.analyze(AnalysisMode::OneStep).expect("analysis");
    // A generous period: no violations.
    let relaxed = slack_table(&f.netlist, &r, r.longest_delay * 2.0, 5);
    assert!(!relaxed.contains("VIOLATED"));
    // A period below the longest path: the worst endpoint must violate.
    let tight = slack_table(&f.netlist, &r, r.longest_delay * 0.5, 5);
    assert!(tight.contains("VIOLATED"));
    // Worst endpoint leads the table.
    let first_line = tight.lines().nth(1).expect("at least one row");
    let endpoint_name = &f.netlist.net(r.endpoint_net.expect("net")).name;
    assert!(
        first_line.contains(endpoint_name.as_str()),
        "worst endpoint {endpoint_name} should lead: {first_line}"
    );
}

#[test]
fn min_delay_vs_max_delay_window() {
    let f = flow(&GeneratorConfig::small(82));
    let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
    let min = sta.analyze(AnalysisMode::MinDelay).expect("min");
    let max = sta
        .analyze(AnalysisMode::Iterative { esperance: false })
        .expect("max");
    assert!(min.longest_delay < max.longest_delay);
    // Hold-style check: every endpoint's earliest arrival in the min
    // analysis is at most its latest arrival in the max analysis.
    for e_min in &min.endpoints {
        if let Some(e_max) = max.endpoints.iter().find(|e| e.net == e_min.net) {
            assert!(e_min.earliest() <= e_max.latest() + 1e-15);
        }
    }
}
