//! Golden ModeReport snapshot: pins the analyzer's output bit-exactly.
//!
//! A fixed generated design is analyzed under every mode and the resulting
//! arrivals, slacks and work counters are serialized with full `f64` bit
//! patterns, then compared against the committed snapshot in
//! `tests/golden/modes_small_97.txt`. Any change to propagation, coupling
//! treatment, merging or sensitization — however small — flips at least one
//! bit here, so refactors of the engine are guarded step by step.
//!
//! The snapshot was recorded before the layered-engine refactor (CSR graph
//! + kernel/policy split) and must survive it unchanged.
//!
//! Since the macromodel fast path landed, the snapshot is taken under
//! *signoff* configuration (`ExecConfig::with_signoff(true)`, the same
//! switch `--signoff` / `XTALK_SIGNOFF` flips): every stage solve runs the
//! full transistor-level Newton iteration, so the output must stay
//! bit-identical to the pre-macromodel engine — serial and threaded alike.
//!
//! Regenerate (only when an *intentional* numerical change lands) with:
//!
//! ```text
//! XTALK_BLESS=1 cargo test -p xtalk --test golden_modes
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use xtalk::prelude::*;

/// Clock period used for the pinned slack column, seconds.
const PERIOD: f64 = 10e-9;

/// All analyses the snapshot covers: the paper's five plus the two
/// extensions (Esperance refinement and min-delay/hold).
const MODES: [AnalysisMode; 7] = [
    AnalysisMode::BestCase,
    AnalysisMode::StaticDoubled,
    AnalysisMode::WorstCase,
    AnalysisMode::OneStep,
    AnalysisMode::Iterative { esperance: false },
    AnalysisMode::Iterative { esperance: true },
    AnalysisMode::MinDelay,
];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/modes_small_97.txt")
}

/// Hex bit pattern of an `f64` (or `-` for an absent arrival).
fn bits(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:016x}", v.to_bits()),
        None => "-".to_string(),
    }
}

fn snapshot(config: ExecConfig) -> String {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = xtalk::netlist::generator::generate(&GeneratorConfig::small(97), &library)
        .expect("generate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    let sta = Sta::with_config(&netlist, &library, &process, &parasitics, config).expect("sta");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden mode snapshot: small(97), {} gates, {} nets, period {} ns",
        netlist.gate_count(),
        netlist.net_count(),
        PERIOD * 1e9
    );
    for mode in MODES {
        let r = sta.analyze(mode).expect("analysis");
        assert!(
            r.diagnostics.is_empty(),
            "golden run must be clean, got {:?}",
            r.diagnostics
        );
        let endpoint = r
            .endpoint_net
            .map(|n| netlist.net(n).name.clone())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "mode={mode} delay={} endpoint={endpoint} rising={} passes={} solves={}",
            bits(Some(r.longest_delay)),
            r.endpoint_rising,
            r.passes,
            r.stage_solves
        );
        for (i, d) in r.pass_delays.iter().enumerate() {
            let _ = writeln!(out, "  pass[{i}] delay={}", bits(Some(*d)));
        }
        for e in &r.endpoints {
            let slack = PERIOD - e.latest();
            let _ = writeln!(
                out,
                "  endpoint={} rise={} fall={} slack={}",
                netlist.net(e.net).name,
                bits(e.rise),
                bits(e.fall),
                bits(Some(slack))
            );
        }
        let _ = writeln!(out, "  path_len={}", r.critical_path.len());
        for step in &r.critical_path {
            let _ = writeln!(
                out,
                "  step gate={} cell={} pin={} net={} rising={} arrival={}",
                netlist.gate(step.gate).name,
                step.cell,
                step.pin as isize,
                netlist.net(step.net).name,
                step.rising,
                bits(Some(step.arrival))
            );
        }
    }
    out
}

/// Fails with the first diverging line rather than one giant string diff.
fn assert_matches_golden(golden: &str, current: &str, label: &str) {
    if golden == current {
        return;
    }
    for (i, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        assert_eq!(g, c, "[{label}] golden snapshot diverged at line {}", i + 1);
    }
    assert_eq!(
        golden.lines().count(),
        current.lines().count(),
        "[{label}] golden snapshot line count diverged"
    );
    panic!("[{label}] golden snapshot diverged");
}

#[test]
fn mode_reports_match_golden_snapshot() {
    let serial = snapshot(ExecConfig::serial().with_signoff(true));
    let path = golden_path();
    if std::env::var("XTALK_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &serial).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with XTALK_BLESS=1",
            path.display()
        )
    });
    assert_matches_golden(&golden, &serial, "signoff serial");

    // Threaded signoff must reproduce the same bits: the wavefront schedule
    // changes the order stage solves land in, never their values.
    let threaded = snapshot(
        ExecConfig::serial()
            .with_signoff(true)
            .with_threads(4)
            .with_serial_cutoff(0),
    );
    assert_matches_golden(&golden, &threaded, "signoff threaded");
}
