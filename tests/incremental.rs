//! Property test: incremental ECO re-analysis is equivalent to a fresh
//! batch analysis — for random circuits, random edit sequences, and every
//! analysis mode.
//!
//! This is the subsystem's acceptance gate. The incremental engine caches
//! per-pass node arrivals and re-evaluates only the coupling-aware dirty
//! cone, with exact (bit-level) early termination at the default epsilon;
//! therefore every report it produces must match what `Sta::analyze` on the
//! post-edit design computes, bit for bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk::prelude::*;
use xtalk_sta::incremental::Edit;

fn tiny_config(seed: u64, gates: usize, depth: usize) -> GeneratorConfig {
    GeneratorConfig {
        name: format!("eco_{seed}"),
        seed,
        flip_flops: 4,
        comb_gates: gates,
        depth,
        primary_inputs: 4,
        primary_outputs: 4,
        clock_tree: false,
        clock_leaf_fanout: 8,
    }
}

fn build_incremental<'a>(
    seed: u64,
    gates: usize,
    depth: usize,
    library: &'a Library,
    process: &'a Process,
) -> IncrementalSta<'a> {
    let netlist = xtalk::netlist::generator::generate(&tiny_config(seed, gates, depth), library)
        .expect("generate");
    let placement = xtalk::layout::place::place(&netlist, library, process);
    let routes = xtalk::layout::route::route(&netlist, &placement, process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, process);
    IncrementalSta::new(netlist, library, process, parasitics).expect("incremental sta")
}

/// Same-interface drive-strength swaps available in the c05um library.
fn resize_target(cell: &str) -> Option<&'static str> {
    Some(match cell {
        "INVX1" => "INVX4",
        "INVX2" => "INVX8",
        "INVX4" => "INVX1",
        "INVX8" => "INVX2",
        "BUFX2" => "BUFX4",
        "BUFX4" => "BUFX2",
        "NAND2X1" => "NAND2X2",
        "NAND2X2" => "NAND2X1",
        "NOR2X1" => "NOR2X2",
        "NOR2X2" => "NOR2X1",
        _ => return None,
    })
}

/// Draws a random applicable edit for the current design, if one exists.
fn random_edit(rng: &mut StdRng, eco: &IncrementalSta<'_>) -> Option<Edit> {
    let netlist = eco.netlist();
    let nets = netlist.nets();
    for _ in 0..32 {
        match rng.gen_range(0u32..4) {
            0 => {
                let gates = netlist.gates();
                let gate = &gates[rng.gen_range(0..gates.len())];
                if let Some(cell) = resize_target(&gate.cell) {
                    return Some(Edit::ResizeCell {
                        gate: gate.name.clone(),
                        cell: cell.to_string(),
                    });
                }
            }
            1 => {
                let net = &nets[rng.gen_range(0..nets.len())];
                if net.driver.is_some() || !net.loads.is_empty() {
                    return Some(Edit::RerouteNet {
                        net: net.name.clone(),
                        scale: rng.gen_range(0.25f64..4.0),
                    });
                }
            }
            2 => {
                let net = &nets[rng.gen_range(0..nets.len())];
                // Leave the clock alone: rebuffering the launch net is a
                // clock-tree change, not a signal ECO.
                if net.driver.is_some() && !net.loads.is_empty() && !net.is_clock {
                    return Some(Edit::InsertBuffer {
                        net: net.name.clone(),
                        cell: None,
                    });
                }
            }
            _ => {
                let ni = rng.gen_range(0..nets.len());
                if let Some(cc) = eco.parasitics().nets[ni].couplings.first() {
                    return Some(Edit::RemoveCoupling {
                        a: nets[ni].name.clone(),
                        b: nets[cc.other.index()].name.clone(),
                    });
                }
            }
        }
    }
    None
}

/// Every mode the incremental engine caches (esperance delegates to the
/// batch engine, so there is nothing to verify for it).
fn cached_modes() -> [AnalysisMode; 6] {
    [
        AnalysisMode::BestCase,
        AnalysisMode::StaticDoubled,
        AnalysisMode::WorstCase,
        AnalysisMode::OneStep,
        AnalysisMode::Iterative { esperance: false },
        AnalysisMode::MinDelay,
    ]
}

fn assert_reports_match(
    mode: AnalysisMode,
    incremental: &ModeReport,
    fresh: &ModeReport,
) -> Result<(), String> {
    if incremental.longest_delay.to_bits() != fresh.longest_delay.to_bits() {
        return Err(format!(
            "{mode}: delay {:.6e} != batch {:.6e}",
            incremental.longest_delay, fresh.longest_delay
        ));
    }
    if incremental.endpoint_net != fresh.endpoint_net
        || incremental.endpoint_rising != fresh.endpoint_rising
    {
        return Err(format!("{mode}: endpoint mismatch"));
    }
    if incremental.passes != fresh.passes
        || incremental.pass_delays.len() != fresh.pass_delays.len()
    {
        return Err(format!(
            "{mode}: pass structure {:?} != {:?}",
            incremental.pass_delays, fresh.pass_delays
        ));
    }
    for (a, b) in incremental.pass_delays.iter().zip(&fresh.pass_delays) {
        if a.to_bits() != b.to_bits() {
            return Err(format!("{mode}: pass delay {a:.6e} != {b:.6e}"));
        }
    }
    if incremental.critical_path.len() != fresh.critical_path.len() {
        return Err(format!("{mode}: critical path length mismatch"));
    }
    for (a, b) in incremental.critical_path.iter().zip(&fresh.critical_path) {
        if a.gate != b.gate
            || a.net != b.net
            || a.rising != b.rising
            || a.arrival.to_bits() != b.arrival.to_bits()
        {
            return Err(format!("{mode}: critical path step mismatch"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4, // each case runs dozens of full and incremental analyses
        .. ProptestConfig::default()
    })]

    /// Random edit sequences: after each edit, incremental re-analysis of a
    /// random mode stays consistent; after the whole sequence, every cached
    /// mode matches a fresh batch analysis bit for bit.
    #[test]
    fn incremental_matches_batch_for_every_mode(
        seed in 0u64..10_000,
        gates in 20usize..60,
        depth in 3usize..7,
        edit_seed in 0u64..1_000_000,
    ) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let mut eco = build_incremental(seed, gates, depth, &library, &process);
        let mut rng = StdRng::seed_from_u64(edit_seed);

        // Warm every cache from scratch.
        for mode in cached_modes() {
            eco.analyze(mode).expect("warm analysis");
        }

        let edits = rng.gen_range(1usize..4);
        let mut applied = 0usize;
        for _ in 0..edits {
            let Some(edit) = random_edit(&mut rng, &eco) else { continue };
            eco.apply(&edit).unwrap_or_else(|e| panic!("apply {edit:?}: {e}"));
            applied += 1;
            // Interleave: re-analyze one random mode now, leaving the other
            // caches to catch up across several dirt-log entries at once.
            let mode = cached_modes()[rng.gen_range(0..6usize)];
            eco.analyze(mode).expect("interleaved analysis");
        }
        prop_assert!(applied > 0, "no applicable edit drawn");

        for mode in cached_modes() {
            let incremental = eco.analyze(mode).expect("incremental analysis");
            let fresh = eco.fresh_sta().analyze(mode).expect("batch analysis");
            if let Err(msg) = assert_reports_match(mode, &incremental, &fresh) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// A clean replay (no edits since the cache was filled) re-evaluates
    /// zero stages in every cached mode and reproduces the cached report.
    #[test]
    fn clean_replay_is_free(seed in 0u64..10_000) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let mut eco = build_incremental(seed, 30, 4, &library, &process);
        for mode in cached_modes() {
            let first = eco.analyze(mode).expect("first");
            let second = eco.analyze(mode).expect("second");
            let stats = eco.last_stats();
            prop_assert!(!stats.full, "{mode}: replay must hit the cache");
            prop_assert_eq!(stats.stages_evaluated, 0, "{}: clean replay", mode);
            prop_assert_eq!(
                first.longest_delay.to_bits(),
                second.longest_delay.to_bits(),
                "{}: replay changed the answer", mode
            );
        }
    }
}
