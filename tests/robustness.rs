//! Robustness properties of the degrade-don't-die analysis path, driven by
//! the deterministic fault-injection harness (`--features fault-injection`).
//!
//! Three invariants from the failure-containment design (DESIGN.md, D8):
//!
//! 1. **Zero-fault transparency** — with the harness compiled in but no
//!    plan installed, results are bit-identical across repeated runs and
//!    across serial/threaded execution, and no diagnostics are emitted.
//! 2. **Degrade, don't die** — under every fault class the analysis still
//!    completes, reports a matching [`FaultClass`] diagnostic, and the
//!    substituted bounds are never optimistic: per endpoint, degraded
//!    arrivals are `>=` the fault-free ones (`<=` for `MinDelay`).
//! 3. **Strict mode restores fail-fast** — the same faulted run returns a
//!    typed error instead of a degraded report.

use xtalk::prelude::*;
use xtalk::sta::{Fault, FaultPlan};

fn build_design(
    seed: u64,
) -> (
    Process,
    Library,
    Netlist,
    xtalk::layout::extract::Parasitics,
) {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let config = GeneratorConfig {
        name: format!("robust_{seed}"),
        seed,
        flip_flops: 4,
        comb_gates: 30,
        depth: 4,
        primary_inputs: 4,
        primary_outputs: 4,
        clock_tree: false,
        clock_leaf_fanout: 8,
    };
    let netlist = xtalk::netlist::generator::generate(&config, &library).expect("generate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    (process, library, netlist, parasitics)
}

/// All analysis modes, with whether the mode bounds *earliest* arrivals
/// (where a conservative substitution must be `<=`, not `>=`).
fn all_modes() -> Vec<(AnalysisMode, bool)> {
    vec![
        (AnalysisMode::BestCase, false),
        (AnalysisMode::OneStep, false),
        (AnalysisMode::WorstCase, false),
        (AnalysisMode::Iterative { esperance: false }, false),
        (AnalysisMode::MinDelay, true),
    ]
}

/// Every bit of numerical output a report carries, for exact comparison.
fn fingerprint(r: &ModeReport) -> Vec<u64> {
    let mut v = vec![r.longest_delay.to_bits(), r.passes as u64];
    for ep in &r.endpoints {
        v.push(ep.rise.map_or(u64::MAX, f64::to_bits));
        v.push(ep.fall.map_or(u64::MAX, f64::to_bits));
    }
    for step in &r.critical_path {
        v.push(step.arrival.to_bits());
    }
    v
}

/// Per-endpoint never-optimistic check: `faulted` must bound `free` from
/// above (or below, for earliest-arrival modes).
fn assert_conservative(free: &ModeReport, faulted: &ModeReport, earliest: bool, what: &str) {
    assert_eq!(
        free.endpoints.len(),
        faulted.endpoints.len(),
        "{what}: endpoint sets must match"
    );
    let eps = 1e-12;
    for (f, d) in free.endpoints.iter().zip(&faulted.endpoints) {
        assert_eq!(f.net, d.net, "{what}: endpoint order must match");
        for (a, b) in [(f.rise, d.rise), (f.fall, d.fall)] {
            let (Some(a), Some(b)) = (a, b) else {
                assert_eq!(a.is_some(), b.is_some(), "{what}: transition presence");
                continue;
            };
            if earliest {
                assert!(b <= a + eps, "{what}: degraded {b} > fault-free {a}");
            } else {
                assert!(b + eps >= a, "{what}: degraded {b} < fault-free {a}");
            }
        }
    }
}

#[test]
fn zero_fault_runs_are_bit_identical() {
    let (process, library, netlist, parasitics) = build_design(11);
    for (mode, _) in all_modes() {
        let serial = Sta::with_config(
            &netlist,
            &library,
            &process,
            &parasitics,
            ExecConfig::serial(),
        )
        .expect("sta");
        serial.set_fault_plan(None);
        let a = serial.analyze(mode).expect("serial analyze");
        assert!(a.diagnostics.is_empty(), "zero-fault run must be clean");

        // A second, fresh serial run.
        let again = Sta::with_config(
            &netlist,
            &library,
            &process,
            &parasitics,
            ExecConfig::serial(),
        )
        .expect("sta");
        let b = again.analyze(mode).expect("repeat analyze");

        // A threaded run with the serial cutoff disabled.
        let threaded = Sta::with_config(
            &netlist,
            &library,
            &process,
            &parasitics,
            ExecConfig::serial().with_threads(4).with_serial_cutoff(0),
        )
        .expect("sta");
        let c = threaded.analyze(mode).expect("threaded analyze");

        assert_eq!(fingerprint(&a), fingerprint(&b), "{mode:?}: repeat run");
        assert_eq!(fingerprint(&a), fingerprint(&c), "{mode:?}: threaded run");
    }
}

#[test]
fn every_fault_class_degrades_without_dying() {
    let (process, library, netlist, parasitics) = build_design(23);
    let cases = [
        (Fault::NanLoad, FaultClass::NonFiniteValue),
        (Fault::TruncatedTable, FaultClass::TruncatedModel),
        (Fault::DivergentStage, FaultClass::SolverDivergence),
        (Fault::MidJobPanic, FaultClass::WorkerPanic),
    ];
    for (fault, expected_class) in cases {
        for (mode, earliest) in [
            (AnalysisMode::OneStep, false),
            (AnalysisMode::MinDelay, true),
        ] {
            let sta = Sta::with_config(
                &netlist,
                &library,
                &process,
                &parasitics,
                ExecConfig::serial(),
            )
            .expect("sta");
            let free = sta.analyze(mode).expect("fault-free analyze");
            assert!(free.diagnostics.is_empty());

            // Inject at every stage: the analysis must still complete.
            sta.set_fault_plan(Some(FaultPlan::new(fault, 7, 1)));
            let faulted = sta
                .analyze(mode)
                .unwrap_or_else(|e| panic!("{fault:?}/{mode:?} must not kill the run: {e}"));
            assert!(
                faulted
                    .diagnostics
                    .iter()
                    .any(|d| d.fault == expected_class),
                "{fault:?}/{mode:?}: expected a {expected_class:?} diagnostic, got {:?}",
                faulted.diagnostics
            );
            assert_eq!(
                faulted.worst_severity(),
                Some(Severity::Error),
                "{fault:?}/{mode:?}: substituted bounds are Error-severity"
            );
            assert_conservative(&free, &faulted, earliest, &format!("{fault:?}/{mode:?}"));
        }
    }
}

#[test]
fn degraded_delays_are_never_optimistic_across_all_modes() {
    for seed in [3, 17] {
        let (process, library, netlist, parasitics) = build_design(seed);
        for (mode, earliest) in all_modes() {
            let sta = Sta::with_config(
                &netlist,
                &library,
                &process,
                &parasitics,
                ExecConfig::serial(),
            )
            .expect("sta");
            let free = sta.analyze(mode).expect("fault-free analyze");
            // Inject at roughly one stage in three.
            sta.set_fault_plan(Some(FaultPlan::new(Fault::NanLoad, seed, 3)));
            let faulted = sta.analyze(mode).expect("degraded analyze");
            assert_conservative(&free, &faulted, earliest, &format!("seed {seed} {mode:?}"));
        }
    }
}

#[test]
fn strict_mode_restores_fail_fast() {
    let (process, library, netlist, parasitics) = build_design(29);
    for fault in [
        Fault::NanLoad,
        Fault::TruncatedTable,
        Fault::DivergentStage,
        Fault::MidJobPanic,
    ] {
        let sta = Sta::with_config(
            &netlist,
            &library,
            &process,
            &parasitics,
            ExecConfig::serial().with_strict(true),
        )
        .expect("sta");
        sta.set_fault_plan(Some(FaultPlan::new(fault, 7, 1)));
        let err = sta
            .analyze(AnalysisMode::OneStep)
            .expect_err("strict mode must fail fast");
        // The error is typed and printable, not a panic.
        assert!(!err.to_string().is_empty(), "{fault:?}");
    }
}

#[test]
fn poisoned_cache_entries_are_detected_and_evicted() {
    let (process, library, netlist, parasitics) = build_design(31);
    let sta = Sta::with_config(
        &netlist,
        &library,
        &process,
        &parasitics,
        ExecConfig::serial().with_cache(true),
    )
    .expect("sta");
    let free = sta.analyze(AnalysisMode::OneStep).expect("clean analyze");

    // First faulted run corrupts every fresh cache entry as it is inserted.
    sta.set_fault_plan(Some(FaultPlan::new(Fault::PoisonedCache, 7, 1)));
    sta.clear_solve_cache();
    let _ = sta.analyze(AnalysisMode::OneStep).expect("poisoning run");

    // Second run with the plan cleared hits the poisoned entries: every one
    // must fail its integrity check and be re-solved, never served.
    sta.set_fault_plan(None);
    let reread = sta.analyze(AnalysisMode::OneStep).expect("re-read run");
    assert!(
        reread
            .diagnostics
            .iter()
            .any(|d| d.fault == FaultClass::CacheCorruption),
        "expected CacheCorruption diagnostics, got {:?}",
        reread.diagnostics
    );
    // Evict-and-resolve means the numbers match the clean run exactly.
    assert_eq!(
        fingerprint(&free),
        fingerprint(&reread),
        "corrupted entries must be re-solved, not served"
    );
}

#[test]
fn cli_strict_flag_turns_degraded_runs_into_errors() {
    let dir = std::env::temp_dir().join("xtalk_robustness_cli");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bench = dir.join("c17.bench");
    std::fs::write(&bench, xtalk::netlist::data::C17_BENCH).expect("write bench");
    let path = bench.to_string_lossy().into_owned();
    let args = |extra: &[&str]| -> Vec<String> {
        let mut v = vec!["report".to_string(), path.clone()];
        v.extend(extra.iter().map(|s| (*s).to_string()));
        v
    };

    // Degraded run: completes, reports diagnostics, exits 3 (Error severity).
    let out = xtalk::cli::run_with_code(&args(&["--inject", "nan-load:0:1"]))
        .expect("degraded run completes");
    assert_eq!(out.exit_code, 3, "substituted bounds must exit 3");
    assert!(out.text.contains("diagnostics:"), "{}", out.text);

    // Same run under --strict: a typed CLI error, no report.
    let err = xtalk::cli::run_with_code(&args(&["--inject", "nan-load:0:1", "--strict"]))
        .expect_err("strict faulted run must fail");
    assert!(!err.to_string().is_empty());

    let _ = std::fs::remove_file(&bench);
}
