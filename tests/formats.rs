//! Cross-format integration: .bench ↔ netlist ↔ Verilog, parasitics ↔ SPEF.

use xtalk::prelude::*;

fn setup(seed: u64) -> (Process, Library, Netlist) {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = xtalk::netlist::generator::generate(&GeneratorConfig::small(seed), &library)
        .expect("generate");
    (process, library, netlist)
}

#[test]
fn generated_circuit_survives_bench_roundtrip() {
    let (_, library, netlist) = setup(50);
    let text = xtalk::netlist::bench::write(&netlist, &library).expect("write");
    let back = xtalk::netlist::bench::parse(&text, &library).expect("parse");
    back.validate(&library).expect("valid");
    // AOI/OAI/MUX decompose into AND/OR/NOT lines, so gate counts may grow,
    // but I/O and flip-flop structure must be identical.
    assert_eq!(
        netlist.primary_inputs().count(),
        back.primary_inputs().count()
    );
    assert_eq!(
        netlist.primary_outputs().count(),
        back.primary_outputs().count()
    );
    assert_eq!(netlist.flip_flop_count(), back.flip_flop_count());
    assert!(back.gate_count() >= netlist.gate_count());
}

#[test]
fn generated_circuit_survives_verilog_roundtrip_exactly() {
    let (_, library, netlist) = setup(51);
    let text = xtalk::netlist::verilog::write(&netlist, &library).expect("write");
    let back = xtalk::netlist::verilog::parse(&text, &library).expect("parse");
    back.validate(&library).expect("valid");
    assert_eq!(netlist.gate_count(), back.gate_count());
    assert_eq!(netlist.net_count(), back.net_count());
    assert_eq!(netlist.cell_histogram(), back.cell_histogram());
}

#[test]
fn spef_roundtrip_preserves_timing() {
    let (process, library, netlist) = setup(52);
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);

    let spef = xtalk::layout::spef::write(&netlist, &parasitics);
    let mut back = xtalk::layout::spef::parse(&spef, &netlist).expect("parse");
    // SPEF does not carry per-sink Elmore resistances; restore them.
    for (a, b) in back.nets.iter_mut().zip(&parasitics.nets) {
        a.sinks = b.sinks.clone();
    }

    let d1 = Sta::new(&netlist, &library, &process, &parasitics)
        .expect("sta")
        .analyze(AnalysisMode::OneStep)
        .expect("analyze")
        .longest_delay;
    let d2 = Sta::new(&netlist, &library, &process, &back)
        .expect("sta")
        .analyze(AnalysisMode::OneStep)
        .expect("analyze")
        .longest_delay;
    assert!(
        (d1 - d2).abs() < 1e-15,
        "SPEF roundtrip changed timing: {d1} vs {d2}"
    );
}

#[test]
fn bench_logical_equivalence_after_roundtrip() {
    // Random-vector equivalence check between the original and the
    // re-imported netlist (three-valued logic simulation).
    use xtalk::sim::LogicSim;
    let (_, library, netlist) = setup(53);
    let text = xtalk::netlist::bench::write(&netlist, &library).expect("write");
    let back = xtalk::netlist::bench::parse(&text, &library).expect("parse");

    let mut sim_a = LogicSim::new(&netlist, &library).expect("sim a");
    let mut sim_b = LogicSim::new(&back, &library).expect("sim b");
    let n_pi = netlist
        .primary_inputs()
        .filter(|&id| !netlist.net(id).is_clock)
        .count();
    let mut state = 0x9e3779b97f4a7c15u64;
    for round in 0..12 {
        let bits: Vec<bool> = (0..n_pi)
            .map(|k| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> (k % 48 + 13)) & 1 == 1
            })
            .collect();
        let a = sim_a.run_vector(bits.clone());
        let b = sim_b.run_vector(bits);
        sim_a.clock();
        sim_b.clock();
        // Outputs are matched by *name* (net order may differ).
        let names_a: Vec<&str> = netlist
            .primary_outputs()
            .map(|id| netlist.net(id).name.as_str())
            .collect();
        let names_b: Vec<&str> = back
            .primary_outputs()
            .map(|id| back.net(id).name.as_str())
            .collect();
        for (name, va) in names_a.iter().zip(&a) {
            let k = names_b
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("output {name} lost in roundtrip"));
            // Three-valued: only compare when both are defined.
            if let (Some(x), Some(y)) = (va, b[k]) {
                assert_eq!(*x, y, "round {round}: output {name} diverged");
            }
        }
    }
}
