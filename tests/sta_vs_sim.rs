//! STA vs transistor-level simulation — the paper's §6 validation.
//!
//! The longest path reported by the analyzer is re-simulated with the
//! transient engine; aggressors are ideal sources aligned adversarially by
//! coordinate ascent (the paper's "iteratively adjusted" PWL sources). The
//! safe analyses must bound the simulation; the refined analyses must stay
//! close to it.

use xtalk::prelude::*;
use xtalk::sim::align::coordinate_ascent;
use xtalk::sim::path::{simulate_path, AggressorSpec, PathGateSpec, PathSpec};
use xtalk::sta::report::ModeReport as Report;

const SIM_OFFSET: f64 = 1.5e-9;

struct Setup {
    process: Process,
    library: Library,
    netlist: Netlist,
    parasitics: xtalk::layout::Parasitics,
}

/// Purely combinational block (paths start at primary inputs).
fn comb_setup(seed: u64) -> Setup {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let mut cfg = GeneratorConfig::small(seed);
    cfg.flip_flops = 0;
    cfg.comb_gates = 60;
    cfg.depth = 6;
    let netlist = xtalk::netlist::generator::generate(&cfg, &library).expect("generate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    Setup {
        process,
        library,
        netlist,
        parasitics,
    }
}

/// Converts a reported critical path into a simulatable [`PathSpec`] plus
/// the STA's own delay over the same span (input Vdd/2 crossing to endpoint
/// arrival).
fn to_spec(setup: &Setup, report: &Report, n_aggressors: usize) -> (PathSpec, f64, Vec<f64>) {
    let steps = &report.critical_path;
    assert!(!steps.is_empty());
    assert!(
        steps.iter().all(|s| s.pin != usize::MAX),
        "combinational paths only"
    );
    let gates: Vec<PathGateSpec> = steps
        .iter()
        .map(|s| PathGateSpec {
            gate: s.gate,
            switching_pin: s.pin,
            side_values: s.side_values.clone(),
        })
        .collect();

    // Input direction at the path head.
    let first_cell = setup.library.cell(&steps[0].cell).expect("library cell");
    let first_inverting = first_cell
        .arc_inverting(steps[0].pin, &steps[0].side_values, setup.process.vdd)
        .unwrap_or(first_cell.function.is_inverting());
    let in_rising = if first_inverting {
        !steps[0].rising
    } else {
        steps[0].rising
    };
    let slew = setup.process.default_input_slew;
    let (v0, v1) = if in_rising {
        (0.0, setup.process.vdd)
    } else {
        (setup.process.vdd, 0.0)
    };
    let input_wave = Waveform::ramp(SIM_OFFSET, slew, v0, v1).expect("ramp");
    // The STA launched its PI ramp at t = 0; its Vdd/2 crossing is slew/2.
    let sta_path_delay = report.longest_delay - 0.5 * slew;

    // Aggressors: the strongest couplings onto path nets.
    let on_path: std::collections::HashSet<_> = steps.iter().map(|s| s.net).collect();
    let mut cands: Vec<(f64, AggressorSpec, f64)> = Vec::new(); // (cap, spec, t0)
    for s in steps {
        for cc in &setup.parasitics.nets[s.net.index()].couplings {
            if on_path.contains(&cc.other) {
                continue;
            }
            cands.push((
                cc.c,
                AggressorSpec {
                    net: cc.other,
                    rising: !s.rising,
                },
                s.arrival + SIM_OFFSET,
            ));
        }
    }
    cands.sort_by(|a, b| b.0.total_cmp(&a.0));
    cands.truncate(n_aggressors);
    // Keep one spec per aggressor net.
    let mut seen = std::collections::HashSet::new();
    cands.retain(|(_, spec, _)| seen.insert(spec.net));
    let t0: Vec<f64> = cands.iter().map(|&(_, _, t)| t).collect();
    let aggressors: Vec<AggressorSpec> = cands.iter().map(|&(_, s, _)| s).collect();
    (
        PathSpec {
            gates,
            input_wave,
            aggressors,
        },
        sta_path_delay,
        t0,
    )
}

#[test]
fn quiet_simulation_matches_best_case_sta() {
    let s = comb_setup(900);
    // Signoff: this suite validates the *exact* transistor-level solver
    // against transient simulation (the paper's accuracy claim). The
    // macromodel fast path adds certified pessimism that is bounded
    // separately in `tests/macromodel.rs`.
    let sta = Sta::with_config(
        &s.netlist,
        &s.library,
        &s.process,
        &s.parasitics,
        ExecConfig::serial().with_signoff(true),
    )
    .expect("sta");
    let best = sta.analyze(AnalysisMode::BestCase).expect("best");
    let (mut spec, sta_delay, _) = to_spec(&s, &best, 0);
    spec.aggressors.clear();
    let sim = simulate_path(
        &s.netlist,
        &s.library,
        &s.process,
        &s.parasitics,
        &spec,
        &[],
        None,
    )
    .expect("simulate");
    let rel = (sim.delay - sta_delay).abs() / sta_delay;
    // Transistor-level STA accuracy claim: the quiet path simulation lands
    // close to the quiet STA prediction (lumped-wire differences allowed).
    assert!(
        rel < 0.30,
        "quiet sim {:.3}ns vs best-case STA {:.3}ns (rel {rel:.2})",
        sim.delay * 1e9,
        sta_delay * 1e9
    );
}

#[test]
fn aligned_simulation_respects_safe_bounds() {
    let s = comb_setup(901);
    // Signoff for the same reason as above: compare the exact engine.
    let sta = Sta::with_config(
        &s.netlist,
        &s.library,
        &s.process,
        &s.parasitics,
        ExecConfig::serial().with_signoff(true),
    )
    .expect("sta");
    let iter = sta
        .analyze(AnalysisMode::Iterative { esperance: false })
        .expect("iterative");
    let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst");
    let (spec, iter_delay, t0) = to_spec(&s, &iter, 4);

    let mut sims = 0usize;
    let oracle = |times: &[f64]| -> Option<f64> {
        sims += 1;
        simulate_path(
            &s.netlist,
            &s.library,
            &s.process,
            &s.parasitics,
            &spec,
            times,
            None,
        )
        .ok()
        .map(|r| r.delay)
    };
    let (sim_worst, _times) = coordinate_ascent(oracle, t0, 0.4e-9, 2);
    assert!(sim_worst.is_finite(), "at least one simulation succeeded");

    // Safety: adversarially aligned simulation must not exceed the safe
    // worst-case bound over the same span.
    let worst_span = worst.longest_delay - 0.5 * s.process.default_input_slew;
    assert!(
        sim_worst <= worst_span * 1.05,
        "sim {:.3}ns must respect the worst-case bound {:.3}ns",
        sim_worst * 1e9,
        worst_span * 1e9
    );
    // Usefulness: the refined iterative bound is not wildly above the
    // simulated worst case on its own path.
    assert!(
        iter_delay >= sim_worst * 0.7,
        "iterative {:.3}ns vs aligned sim {:.3}ns",
        iter_delay * 1e9,
        sim_worst * 1e9
    );
}
