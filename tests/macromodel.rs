//! Macromodel fast path vs signoff: safety of the table approximation.
//!
//! The characterized-table fast path (`DESIGN.md` D12) answers in-grid
//! stage solves from pessimistically padded delay tables instead of the
//! transistor-level Newton iteration. That approximation must be *safe*:
//!
//! 1. **Never optimistic** — every endpoint arrival the default engine
//!    reports is at least the signoff arrival (tables only add delay).
//! 2. **Bounded** — the added pessimism stays within the certified
//!    per-stage interpolation bound accumulated along the critical path.
//! 3. **Engaged** — the tables actually answer solves on this design, so
//!    the two assertions above are not vacuous.
//! 4. **Min-delay untouched** — tables are disabled for earliest-arrival
//!    analysis (pessimistic maximum-delay tables would be optimistic
//!    there), so `MinDelay` must match signoff bit for bit.

use xtalk::prelude::*;
use xtalk::wave::macromodel::{TOL_DELAY, TOL_SLEW};

/// Max-delay analyses where the fast path may engage.
const MAX_MODES: [AnalysisMode; 5] = [
    AnalysisMode::BestCase,
    AnalysisMode::StaticDoubled,
    AnalysisMode::WorstCase,
    AnalysisMode::OneStep,
    AnalysisMode::Iterative { esperance: false },
];

struct Design {
    netlist: xtalk::netlist::Netlist,
    library: Library,
    process: Process,
    parasitics: xtalk::layout::extract::Parasitics,
}

fn design(seed: u64) -> Design {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = xtalk::netlist::generator::generate(&GeneratorConfig::small(seed), &library)
        .expect("generate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    Design {
        netlist,
        library,
        process,
        parasitics,
    }
}

fn analyze(d: &Design, mode: AnalysisMode, signoff: bool) -> ModeReport {
    let sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::serial().with_signoff(signoff),
    )
    .expect("sta");
    sta.analyze(mode).expect("analysis")
}

#[test]
fn fast_path_never_optimistic_and_pessimism_bounded() {
    let d = design(4242);
    let mut any_hits = 0usize;
    for mode in MAX_MODES {
        let exact = analyze(&d, mode, true);
        let fast = analyze(&d, mode, false);
        any_hits += fast.table_hits;
        assert_eq!(
            exact.table_hits, 0,
            "{mode}: signoff must never touch the tables"
        );

        // Per-stage worst case: certified delay bound plus the certified
        // slew bound (an inflated slew can only further slow the stage it
        // feeds; downstream delay sensitivity to input slew is below one
        // for the characterized arcs). Accumulated over the path depth
        // this bounds the total pessimism the tables may inject.
        let depth = fast.critical_path.len().max(exact.critical_path.len()) + 2;
        let budget = depth as f64 * (TOL_DELAY + TOL_SLEW);

        assert!(
            fast.longest_delay >= exact.longest_delay - 1e-12,
            "{mode}: fast path optimistic on longest delay ({} < {})",
            fast.longest_delay,
            exact.longest_delay
        );
        assert!(
            fast.longest_delay <= exact.longest_delay + budget,
            "{mode}: fast-path pessimism {} exceeds budget {}",
            fast.longest_delay - exact.longest_delay,
            budget
        );
        // The reported residual is the per-hit bound, so it can never
        // exceed the admission tolerance.
        assert!(
            fast.table_residual <= TOL_DELAY + 1e-15,
            "{mode}: residual {} above admission tolerance",
            fast.table_residual
        );

        assert_eq!(exact.endpoints.len(), fast.endpoints.len());
        for (e, f) in exact.endpoints.iter().zip(&fast.endpoints) {
            assert_eq!(e.net, f.net);
            for (ex, fa) in [(e.rise, f.rise), (e.fall, f.fall)] {
                assert_eq!(
                    ex.is_some(),
                    fa.is_some(),
                    "{mode}: endpoint {:?} transition set diverged",
                    e.net
                );
                if let (Some(ex), Some(fa)) = (ex, fa) {
                    assert!(
                        fa >= ex - 1e-12,
                        "{mode}: endpoint {:?} optimistic ({fa} < {ex})",
                        e.net
                    );
                    assert!(
                        fa <= ex + budget,
                        "{mode}: endpoint {:?} pessimism {} exceeds budget {budget}",
                        e.net,
                        fa - ex
                    );
                }
            }
        }
    }
    assert!(
        any_hits > 0,
        "tables never engaged; the safety assertions above are vacuous"
    );
}

#[test]
fn min_delay_ignores_tables_bit_exactly() {
    let d = design(4242);
    let exact = analyze(&d, AnalysisMode::MinDelay, true);
    let fast = analyze(&d, AnalysisMode::MinDelay, false);
    assert_eq!(
        fast.table_hits, 0,
        "tables must not serve earliest arrivals"
    );
    assert_eq!(exact.longest_delay.to_bits(), fast.longest_delay.to_bits());
    assert_eq!(exact.endpoints.len(), fast.endpoints.len());
    for (e, f) in exact.endpoints.iter().zip(&fast.endpoints) {
        assert_eq!(e.net, f.net);
        assert_eq!(e.rise.map(f64::to_bits), f.rise.map(f64::to_bits));
        assert_eq!(e.fall.map(f64::to_bits), f.fall.map(f64::to_bits));
    }
}
