//! Cross-crate property-based tests on the analyzer's key invariants.

use proptest::prelude::*;
use xtalk::prelude::*;

fn tiny_config(seed: u64, gates: usize, depth: usize) -> GeneratorConfig {
    GeneratorConfig {
        name: format!("prop_{seed}"),
        seed,
        flip_flops: 4,
        comb_gates: gates,
        depth,
        primary_inputs: 4,
        primary_outputs: 4,
        clock_tree: false,
        clock_leaf_fanout: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs several full analyses
        .. ProptestConfig::default()
    })]

    /// best <= one-step <= worst and iterative <= one-step, on random
    /// circuits with real extracted couplings.
    #[test]
    fn mode_ordering_invariant(seed in 0u64..1000, gates in 20usize..60, depth in 3usize..7) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, gates, depth), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
        let best = sta.analyze(AnalysisMode::BestCase).expect("best").longest_delay;
        let one = sta.analyze(AnalysisMode::OneStep).expect("one").longest_delay;
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst").longest_delay;
        let iter = sta.analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter").longest_delay;
        let eps = 1e-12;
        prop_assert!(best <= one + eps, "best {} one {}", best, one);
        prop_assert!(one <= worst + eps, "one {} worst {}", one, worst);
        prop_assert!(iter <= one + eps, "iter {} one {}", iter, one);
        prop_assert!(best <= iter + eps, "best {} iter {}", best, iter);
        prop_assert!(best > 0.0 && worst < 1e-6);
    }

    /// Generated netlists always validate, levelize, and hit their
    /// configured structural targets.
    #[test]
    fn generator_structural_invariants(seed in 0u64..10_000, gates in 10usize..120, depth in 2usize..10) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let cfg = tiny_config(seed, gates, depth);
        let netlist = xtalk::netlist::generator::generate(&cfg, &library).expect("generate");
        prop_assert!(netlist.validate(&library).is_ok());
        let d = netlist.logic_depth(&library).expect("depth");
        prop_assert!(d <= depth + 1);
        prop_assert_eq!(netlist.flip_flop_count(), cfg.flip_flops);
    }

    /// Extraction invariants on random layouts: symmetry, positivity,
    /// plausible magnitudes.
    #[test]
    fn extraction_invariants(seed in 0u64..10_000) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, 50, 5), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        for (ni, np) in parasitics.nets.iter().enumerate() {
            prop_assert!(np.cwire >= 0.0 && np.cwire < 10e-12);
            prop_assert!(np.rwire >= 0.0 && np.rwire < 1e5);
            for cc in &np.couplings {
                prop_assert!(cc.c > 0.0 && cc.c < 1e-12);
                prop_assert!(cc.other.index() != ni);
                let back = parasitics.nets[cc.other.index()].couplings.iter()
                    .find(|c| c.other.index() == ni);
                prop_assert!(back.is_some());
            }
        }
    }

    /// SPEF roundtrip is lossless for any generated layout.
    #[test]
    fn spef_roundtrip_lossless(seed in 0u64..10_000) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, 40, 4), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let text = xtalk::layout::spef::write(&netlist, &parasitics);
        let back = xtalk::layout::spef::parse(&text, &netlist).expect("parse");
        for (a, b) in parasitics.nets.iter().zip(&back.nets) {
            prop_assert!((a.cwire - b.cwire).abs() < 1e-20);
            prop_assert!((a.rwire - b.rwire).abs() < 1e-4);
            prop_assert_eq!(a.couplings.len(), b.couplings.len());
        }
    }
}
