//! Cross-crate property-based tests on the analyzer's key invariants.

use proptest::prelude::*;
use xtalk::prelude::*;

fn tiny_config(seed: u64, gates: usize, depth: usize) -> GeneratorConfig {
    GeneratorConfig {
        name: format!("prop_{seed}"),
        seed,
        flip_flops: 4,
        comb_gates: gates,
        depth,
        primary_inputs: 4,
        primary_outputs: 4,
        clock_tree: false,
        clock_leaf_fanout: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs several full analyses
        .. ProptestConfig::default()
    })]

    /// best <= one-step <= worst and iterative <= one-step, on random
    /// circuits with real extracted couplings.
    #[test]
    fn mode_ordering_invariant(seed in 0u64..1000, gates in 20usize..60, depth in 3usize..7) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, gates, depth), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
        let best = sta.analyze(AnalysisMode::BestCase).expect("best").longest_delay;
        let one = sta.analyze(AnalysisMode::OneStep).expect("one").longest_delay;
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst").longest_delay;
        let iter = sta.analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter").longest_delay;
        let eps = 1e-12;
        prop_assert!(best <= one + eps, "best {} one {}", best, one);
        prop_assert!(one <= worst + eps, "one {} worst {}", one, worst);
        prop_assert!(iter <= one + eps, "iter {} one {}", iter, one);
        prop_assert!(best <= iter + eps, "best {} iter {}", best, iter);
        prop_assert!(best > 0.0 && worst < 1e-6);
    }

    /// Generated netlists always validate, levelize, and hit their
    /// configured structural targets.
    #[test]
    fn generator_structural_invariants(seed in 0u64..10_000, gates in 10usize..120, depth in 2usize..10) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let cfg = tiny_config(seed, gates, depth);
        let netlist = xtalk::netlist::generator::generate(&cfg, &library).expect("generate");
        prop_assert!(netlist.validate(&library).is_ok());
        let d = netlist.logic_depth(&library).expect("depth");
        prop_assert!(d <= depth + 1);
        prop_assert_eq!(netlist.flip_flop_count(), cfg.flip_flops);
    }

    /// Extraction invariants on random layouts: symmetry, positivity,
    /// plausible magnitudes.
    #[test]
    fn extraction_invariants(seed in 0u64..10_000) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, 50, 5), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        for (ni, np) in parasitics.nets.iter().enumerate() {
            prop_assert!(np.cwire >= 0.0 && np.cwire < 10e-12);
            prop_assert!(np.rwire >= 0.0 && np.rwire < 1e5);
            for cc in &np.couplings {
                prop_assert!(cc.c > 0.0 && cc.c < 1e-12);
                prop_assert!(cc.other.index() != ni);
                let back = parasitics.nets[cc.other.index()].couplings.iter()
                    .find(|c| c.other.index() == ni);
                prop_assert!(back.is_some());
            }
        }
    }

    /// A parallel wavefront run is bit-identical to the serial engine in
    /// every analysis mode: same delay bits, same pass trajectory, same
    /// critical endpoint.
    #[test]
    fn parallel_matches_serial_bitwise(seed in 0u64..1000, gates in 24usize..56, depth in 3usize..6) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, gates, depth), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let serial = Sta::with_config(&netlist, &library, &process, &parasitics,
            ExecConfig::serial()).expect("sta");
        // cutoff 0 forces the wavefront scheduler even on tiny circuits.
        let par = Sta::with_config(&netlist, &library, &process, &parasitics,
            ExecConfig::serial().with_threads(4).with_serial_cutoff(0)).expect("sta");
        for mode in [
            AnalysisMode::BestCase,
            AnalysisMode::StaticDoubled,
            AnalysisMode::WorstCase,
            AnalysisMode::OneStep,
            AnalysisMode::Iterative { esperance: false },
            AnalysisMode::Iterative { esperance: true },
            AnalysisMode::MinDelay,
        ] {
            let a = serial.analyze(mode).expect("serial");
            let b = par.analyze(mode).expect("parallel");
            prop_assert_eq!(a.longest_delay.to_bits(), b.longest_delay.to_bits(),
                "{mode}: serial {} vs parallel {}", a.longest_delay, b.longest_delay);
            prop_assert_eq!(a.endpoint_net, b.endpoint_net);
            prop_assert_eq!(a.pass_delays.len(), b.pass_delays.len());
            for (x, y) in a.pass_delays.iter().zip(&b.pass_delays) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The stage-solve cache is transparent: a warm re-run answers every
    /// solver call from the cache, and clearing it mid-run never changes
    /// a single arrival bit.
    #[test]
    fn solve_cache_is_transparent(seed in 0u64..1000, gates in 24usize..56) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, gates, 5), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let mode = AnalysisMode::Iterative { esperance: false };
        let uncached = Sta::with_config(&netlist, &library, &process, &parasitics,
            ExecConfig::serial().with_cache(false)).expect("sta");
        let reference = uncached.analyze(mode).expect("uncached");
        // With the solve cache off the only reuse layer left is the
        // characterized macromodel (layer 0), so every hit is a table hit
        // and everything else was integrated from scratch.
        prop_assert_eq!(reference.cache_hits, reference.table_hits);
        prop_assert_eq!(reference.newton_solves + reference.table_hits,
            reference.stage_solves);

        let cached = Sta::with_config(&netlist, &library, &process, &parasitics,
            ExecConfig::serial()).expect("sta");
        let cold = cached.analyze(mode).expect("cold");
        let warm = cached.analyze(mode).expect("warm");
        cached.clear_solve_cache();
        let cleared = cached.analyze(mode).expect("cleared");
        for r in [&cold, &warm, &cleared] {
            prop_assert_eq!(r.longest_delay.to_bits(), reference.longest_delay.to_bits());
            prop_assert_eq!(r.endpoint_net, reference.endpoint_net);
            prop_assert_eq!(r.passes, reference.passes);
        }
        // The warm replay answers everything from the cache.
        prop_assert_eq!(warm.cache_hits, warm.stage_solves);
        prop_assert_eq!(warm.newton_solves, 0);
        // Refinement passes re-solve only stages whose coupling decisions
        // changed, so even the cold run hits for the unchanged majority.
        prop_assert!(cold.passes == 1 || cold.cache_hits > 0);
    }

    /// Warm-started solving is invisible in the results: an analyzer whose
    /// reuse layers (per-stage warm-start memo, cost-admitted solve cache)
    /// are fully populated by earlier runs produces bit-identical reports
    /// to a fully cold uncached engine — serial and threaded, every mode.
    #[test]
    fn warm_start_matches_cold_start_bitwise(seed in 0u64..1000, gates in 24usize..48) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, gates, 5), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        for mode in [
            AnalysisMode::BestCase,
            AnalysisMode::StaticDoubled,
            AnalysisMode::WorstCase,
            AnalysisMode::OneStep,
            AnalysisMode::Iterative { esperance: false },
            AnalysisMode::MinDelay,
        ] {
            let reference = Sta::with_config(&netlist, &library, &process, &parasitics,
                ExecConfig::serial().with_cache(false)).expect("sta")
                .analyze(mode).expect("cold uncached");
            for threaded in [false, true] {
                let config = if threaded {
                    ExecConfig::serial().with_threads(4).with_serial_cutoff(0)
                } else {
                    ExecConfig::serial()
                };
                let sta = Sta::with_config(&netlist, &library, &process, &parasitics,
                    config).expect("sta");
                let cold = sta.analyze(mode).expect("cold cached");
                let warm = sta.analyze(mode).expect("warm rerun");
                for r in [&cold, &warm] {
                    prop_assert_eq!(r.longest_delay.to_bits(), reference.longest_delay.to_bits(),
                        "{} threaded={}: warm/cold divergence", mode, threaded);
                    prop_assert_eq!(r.endpoint_net, reference.endpoint_net);
                    prop_assert_eq!(r.pass_delays.len(), reference.pass_delays.len());
                    for (x, y) in r.pass_delays.iter().zip(&reference.pass_delays) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                // The warm rerun never re-integrates anything.
                prop_assert_eq!(warm.newton_solves, 0, "{} threaded={}", mode, threaded);
            }
        }
    }

    /// SPEF roundtrip is lossless for any generated layout.
    #[test]
    fn spef_roundtrip_lossless(seed in 0u64..10_000) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = xtalk::netlist::generator::generate(
            &tiny_config(seed, 40, 4), &library).expect("generate");
        let placement = xtalk::layout::place::place(&netlist, &library, &process);
        let routes = xtalk::layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
        let text = xtalk::layout::spef::write(&netlist, &parasitics);
        let back = xtalk::layout::spef::parse(&text, &netlist).expect("parse");
        for (a, b) in parasitics.nets.iter().zip(&back.nets) {
            prop_assert!((a.cwire - b.cwire).abs() < 1e-20);
            prop_assert!((a.rwire - b.rwire).abs() < 1e-4);
            prop_assert_eq!(a.couplings.len(), b.couplings.len());
        }
    }
}
