//! End-to-end tests of the timing-service daemon and its on-disk solve
//! store: protocol round-trips, concurrent-client bit-identity against
//! the batch CLI, daemon-restart warm starts, corrupt-store replay, and
//! what-if rollback.
//!
//! Every daemon here runs with a serial [`ExecConfig`] — concurrency under
//! test is *between* sessions and clients, not inside the solver — and on
//! a socket/store under a per-process temp directory.

use std::path::{Path, PathBuf};
use std::time::Duration;

use xtalk::cli;
use xtalk::prelude::*;
use xtalk::sta::serve::{Client, Daemon, Json, ServeConfig, ServeSummary};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtalk_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Generates a small coupled design and writes it as a `.bench` file.
fn make_bench(name: &str, seed: u64) -> PathBuf {
    let path = tmp(name);
    let out = cli::run(&[
        "generate".into(),
        "--preset".into(),
        "small".into(),
        "--seed".into(),
        seed.to_string(),
        path.to_string_lossy().into_owned(),
    ])
    .expect("generate");
    assert!(out.contains("generated"));
    path
}

/// Binds a daemon (so clients cannot race the bind) and runs it on a
/// background thread until a client sends `shutdown`.
fn start_daemon(socket: &Path, store: Option<&Path>) -> std::thread::JoinHandle<ServeSummary> {
    start_daemon_with(socket, store, ExecConfig::serial())
}

fn start_daemon_with(
    socket: &Path,
    store: Option<&Path>,
    exec: ExecConfig,
) -> std::thread::JoinHandle<ServeSummary> {
    let daemon = Daemon::bind(ServeConfig {
        socket: socket.to_path_buf(),
        store: store.map(Path::to_path_buf),
        exec,
    })
    .expect("bind daemon");
    std::thread::spawn(move || daemon.run().expect("daemon run"))
}

fn connect(socket: &Path) -> Client {
    Client::connect_retry(socket, Duration::from_secs(5)).expect("connect")
}

fn ok(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {resp}"
    );
    resp
}

fn delay_bits(resp: &Json) -> String {
    resp.str_field("delay_bits")
        .expect("delay_bits")
        .to_string()
}

fn newton_iters(resp: &Json) -> u64 {
    resp.get("newton_iters")
        .and_then(Json::as_u64)
        .expect("newton_iters")
}

/// The batch CLI's bit-exact delay for `netlist` under `mode`, via
/// `xtalk report --bits`.
fn batch_bits(netlist: &Path, mode: &str) -> String {
    let out = cli::run(&[
        "report".into(),
        netlist.to_string_lossy().into_owned(),
        "--mode".into(),
        mode.into(),
        "--bits".into(),
        "--threads".into(),
        "1".into(),
    ])
    .expect("batch report");
    out.lines()
        .find_map(|l| l.strip_prefix("delay bits: "))
        .expect("--bits line")
        .to_string()
}

/// A net that is driven, loaded and coupled — a worthwhile edit target.
fn busy_net(bench_path: &Path) -> String {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let text = std::fs::read_to_string(bench_path).expect("bench");
    let netlist = xtalk::netlist::bench::parse(&text, &library).expect("parse");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    netlist
        .nets()
        .iter()
        .enumerate()
        .find(|(ni, net)| {
            net.driver.is_some()
                && !net.loads.is_empty()
                && !parasitics.nets[*ni].couplings.is_empty()
        })
        .map(|(_, net)| net.name.clone())
        .expect("a coupled net")
}

#[test]
fn concurrent_clients_are_bit_identical_to_the_batch_cli() {
    let bench = make_bench("conc.bench", 21);
    let socket = tmp("conc.sock");
    let daemon = start_daemon(&socket, None);
    let reference = batch_bits(&bench, "onestep");

    let mut threads = Vec::new();
    for i in 0..3 {
        let socket = socket.clone();
        let bench = bench.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = connect(&socket);
            let design = format!("conc{i}");
            let path = bench.to_string_lossy().into_owned();
            ok(&client.load(&design, &path, None).expect("load"));
            let resp = client.analyze(&design, Some("onestep")).expect("analyze");
            delay_bits(ok(&resp))
        }));
    }
    for t in threads {
        let bits = t.join().expect("client thread");
        assert_eq!(
            bits, reference,
            "a concurrent client's delay diverged from the serial batch CLI"
        );
    }

    let mut client = connect(&socket);
    let stats = client.stats().expect("stats");
    assert_eq!(
        ok(&stats)
            .get("sessions")
            .and_then(Json::as_arr)
            .map(<[_]>::len),
        Some(3),
        "three resident sessions: {stats}"
    );
    ok(&client.shutdown().expect("shutdown"));
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.requests >= 8, "all requests counted: {summary:?}");
    assert!(!socket.exists(), "socket file removed on clean shutdown");
}

#[test]
fn restarted_daemon_starts_warm_from_the_store_and_stays_bit_identical() {
    let bench = make_bench("warm.bench", 22);
    let store = tmp("warm.store");
    let _ = std::fs::remove_file(&store);
    let socket = tmp("warm.sock");
    let path = bench.to_string_lossy().into_owned();

    // Generation 1: a cold daemon populates the store.
    let daemon = start_daemon(&socket, Some(&store));
    let mut client = connect(&socket);
    let load = client.load("d", &path, None).expect("load");
    assert_eq!(
        ok(&load).get("store_replayed").and_then(Json::as_u64),
        Some(0),
        "an empty store replays nothing: {load}"
    );
    let cold = client.analyze("d", Some("onestep")).expect("cold analyze");
    let cold_bits = delay_bits(ok(&cold));
    let cold_iters = newton_iters(&cold);
    assert!(cold_iters > 0, "a cold analysis integrates: {cold}");
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon 1");
    assert!(store.exists(), "write-behind populated the store");

    // Generation 2: a fresh daemon on the populated store.
    let daemon = start_daemon(&socket, Some(&store));
    let mut client = connect(&socket);
    let load = client.load("d", &path, None).expect("reload");
    let replayed = ok(&load)
        .get("store_replayed")
        .and_then(Json::as_u64)
        .expect("replayed");
    assert!(
        replayed > 0,
        "the store replays into the fresh session: {load}"
    );
    let warm = client.analyze("d", Some("onestep")).expect("warm analyze");
    let warm_bits = delay_bits(ok(&warm));
    let warm_iters = newton_iters(&warm);
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon 2");

    assert_eq!(
        warm_bits, cold_bits,
        "disk-warm analysis must be bit-identical to the cold one"
    );
    assert_eq!(
        warm_bits,
        batch_bits(&bench, "onestep"),
        "disk-warm analysis must be bit-identical to the batch CLI"
    );
    assert!(
        warm_iters < cold_iters,
        "a disk-warm start must solve strictly fewer Newton iterations \
         ({warm_iters} vs {cold_iters})"
    );
}

#[test]
fn corrupt_store_entries_are_skipped_never_served() {
    let bench = make_bench("corrupt.bench", 23);
    let store = tmp("corrupt.store");
    let _ = std::fs::remove_file(&store);
    let socket = tmp("corrupt.sock");
    let path = bench.to_string_lossy().into_owned();

    // Populate the store, then flip a byte inside the first record's
    // payload (magic 17 bytes, then [len u32][checksum u64][payload]).
    let daemon = start_daemon(&socket, Some(&store));
    let mut client = connect(&socket);
    ok(&client.load("d", &path, None).expect("load"));
    let bits = delay_bits(ok(&client.analyze("d", Some("best")).expect("analyze")));
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon 1");

    let mut bytes = std::fs::read(&store).expect("store bytes");
    let magic = b"XTALKSOLVESTORE1\n".len();
    bytes[magic + 12 + 5] ^= 0x40;
    std::fs::write(&store, &bytes).expect("corrupt store");

    let daemon = start_daemon(&socket, Some(&store));
    let mut client = connect(&socket);
    let load = client.load("d", &path, None).expect("reload");
    let skipped = ok(&load)
        .get("store_corrupt_skipped")
        .and_then(Json::as_u64)
        .expect("corrupt_skipped");
    assert_eq!(skipped, 1, "exactly the damaged record is skipped: {load}");
    assert!(
        load.get("store_replayed").and_then(Json::as_u64) > Some(0),
        "records after the damaged one still replay: {load}"
    );
    // The surviving entries serve correct values: still bit-identical.
    let after = delay_bits(ok(&client.analyze("d", Some("best")).expect("analyze")));
    assert_eq!(after, bits, "corruption may cost warmth, never correctness");
    // The skip surfaces as a diagnostic counter in `stats` too.
    let stats = client.stats().expect("stats");
    let store_stats = ok(&stats).get("store").expect("store stats");
    assert_eq!(
        store_stats.get("corrupt_skipped").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon 2");
}

#[test]
fn what_if_rolls_back_to_baseline_bits_and_matches_a_committed_eco() {
    let bench = make_bench("whatif.bench", 24);
    let socket = tmp("whatif.sock");
    let net = busy_net(&bench);
    let edit = format!("reroute {net} 2.5");
    let path = bench.to_string_lossy().into_owned();

    // Signoff: the premise below — rerouting one coupled net must move the
    // *longest* delay — holds for the exact engine, but the macromodel's
    // padded tables can promote an unrelated path to the maximum in both
    // runs and mask the edit. The what-if/rollback/eco equivalence under
    // test is engine-independent.
    let daemon = start_daemon_with(&socket, None, ExecConfig::serial().with_signoff(true));
    let mut client = connect(&socket);
    // Session A evaluates the edit hypothetically; session B commits it.
    ok(&client.load("a", &path, None).expect("load a"));
    ok(&client.load("b", &path, None).expect("load b"));
    let baseline = delay_bits(ok(&client.analyze("a", Some("onestep")).expect("baseline")));

    let what_if = client
        .what_if("a", &[edit.as_str()], Some("onestep"))
        .expect("what-if");
    assert_eq!(
        ok(&what_if).get("rolled_back").and_then(Json::as_bool),
        Some(true)
    );
    let hypothetical = delay_bits(&what_if);
    assert_ne!(
        hypothetical, baseline,
        "a 2.5x reroute of a coupled net must move the delay"
    );

    // The rollback restored session A exactly: same bits as before.
    let after = delay_bits(ok(&client.analyze("a", Some("onestep")).expect("after")));
    assert_eq!(after, baseline, "what-if must leave the session untouched");

    // Committing the same edit on session B reproduces the what-if bits.
    let eco = client.eco("b", &[edit.as_str()]).expect("eco");
    assert_eq!(ok(&eco).get("applied").and_then(Json::as_u64), Some(1));
    let committed = delay_bits(ok(&client
        .analyze("b", Some("onestep"))
        .expect("committed")));
    assert_eq!(
        committed, hypothetical,
        "what-if and committed-eco timings must agree"
    );
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon");
}

#[test]
fn protocol_errors_are_typed_responses_not_hangups() {
    let bench = make_bench("errors.bench", 25);
    let socket = tmp("errors.sock");
    let path = bench.to_string_lossy().into_owned();
    let daemon = start_daemon(&socket, None);
    let mut client = connect(&socket);

    // Unknown command.
    let resp = client
        .request(&Json::obj(vec![("cmd", Json::str("frobnicate"))]))
        .expect("request");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert!(resp
        .str_field("error")
        .expect("error")
        .contains("unknown command"));

    // Missing cmd field.
    let resp = client
        .request(&Json::obj(vec![("design", Json::str("d"))]))
        .expect("request");
    assert!(resp.str_field("error").expect("error").contains("no `cmd`"));

    // Analysis against a session that was never loaded.
    let resp = client.analyze("ghost", None).expect("request");
    assert!(resp
        .str_field("error")
        .expect("error")
        .contains("no session"));

    // Unknown mode and bad netlist path are rejected per-request; the
    // connection stays usable throughout.
    ok(&client.load("d", &path, None).expect("load"));
    let resp = client.analyze("d", Some("warp")).expect("request");
    assert!(resp
        .str_field("error")
        .expect("error")
        .contains("unknown mode"));
    let resp = client
        .load("x", "/nonexistent.bench", None)
        .expect("request");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));

    // A failing ECO edit reports which edit died and how many applied.
    let resp = client
        .eco("d", &["resize no_such_gate INVX4"])
        .expect("request");
    assert!(resp
        .str_field("error")
        .expect("error")
        .contains("unknown gate"));

    // Clean requests still carry exit_code 0; a query on a real endpoint
    // works after all those failures.
    let analyze = client.analyze("d", Some("best")).expect("analyze");
    assert_eq!(
        ok(&analyze).get("exit_code").and_then(Json::as_u64),
        Some(0)
    );
    let endpoint = analyze.str_field("endpoint").expect("endpoint").to_string();
    let query = client
        .query("d", &endpoint, Some("best"), Some(1000.0))
        .expect("query");
    assert!(
        ok(&query)
            .get("slack_ns")
            .and_then(Json::as_f64)
            .expect("slack")
            > 0.0,
        "a 1000 ns period leaves positive slack: {query}"
    );
    ok(&client.shutdown().expect("shutdown"));
    daemon.join().expect("daemon");
}
