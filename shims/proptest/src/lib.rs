//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's tests use:
//!
//! - `proptest! { ... }` blocks, optionally headed by
//!   `#![proptest_config(ProptestConfig { cases: N, .. })]`;
//! - arguments of the form `name in LO..HI` for integer and float ranges;
//! - `prop_assert!` / `prop_assert_eq!` (plain assertions here).
//!
//! Cases are drawn deterministically from a seed derived from the test's
//! name, so failures reproduce; the failing case's inputs are printed
//! before the panic propagates. Unlike real proptest there is no shrinking
//! and no persistence file.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Run configuration (subset: only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A source of test values.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u32, u64, usize, i32, i64, f64);

/// Deterministic per-test RNG.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name: stable, collision-irrelevant here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests. Each generated `#[test]` runs `cases`
/// deterministic draws of its arguments and executes the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr };
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)+
                        $body
                    }));
                    if let Err(panic) = __result {
                        eprintln!(
                            concat!(
                                "proptest case {}/{} failed in `", stringify!($name), "` with:",
                                $("\n  ", stringify!($arg), " = {:?}",)+
                            ),
                            __case + 1, config.cases, $(&$arg),+
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(a in 0u64..100, b in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!(a < 100);
            prop_assert!((-3.0..3.0).contains(&b));
            prop_assert!((1..10).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..7) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        use rand::Rng as _;
        assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
    }
}
