//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — so `cargo bench` works
//! without network access. Each benchmark runs a timed warm-up to pick an
//! iteration count, then `sample_size` timed samples, and prints
//! mean/min/max per sample. There is no statistical regression analysis,
//! outlier detection, or HTML report.
//!
//! Command-line filters are honoured: `cargo bench -- <substring>` runs
//! only benchmarks whose `group/id` contains the substring.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARM_UP: Duration = Duration::from_millis(500);
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to the closure under test; drives the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count from a warm-up run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        self.run_one(None, &id.into(), sample_size, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: Option<&str>,
        id: &BenchmarkId,
        sample_size: usize,
        mut f: F,
    ) {
        let mut full = String::new();
        if let Some(g) = group {
            let _ = write!(full, "{g}/");
        }
        full.push_str(&id.render());
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: sample_size.max(2),
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        self.criterion
            .run_one(Some(&name), &id.into(), sample_size, f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        println!();
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    criterion_group!(benches, bench_tiny);

    #[test]
    fn harness_runs() {
        // `benches()` reads process args; under `cargo test` the filter may
        // match nothing, so call the internals directly with no filter.
        let _: fn() = benches;
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        bench_tiny(&mut c);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 7).render(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").render(), "x");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
