//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build without network access, so the small slice of
//! the `rand 0.8` API that the circuit generator uses is reimplemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded with SplitMix64, so
//! streams are deterministic across platforms and releases — a property the
//! netlist generator's reproducible presets depend on.
//!
//! The streams differ from upstream `rand`'s `StdRng` (which is ChaCha12);
//! seeds therefore produce different — but equally well-mixed — circuits.

use std::ops::Range;

/// Core interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value (only `f64` in `[0, 1)` is supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        uniform01(self.next_u64()) < p
    }

    /// A uniform sample from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Converts 64 random bits into a sample.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        uniform01(bits)
    }
}

#[inline]
fn uniform01(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift: unbiased enough for simulation use
                // (bias < 2^-64 per draw), and branch-free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize, i64);

impl SampleRange<i32> for Range<i32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end as i64 - self.start as i64) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (self.start as i64 + hi as i64) as i32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + uniform01(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 3, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn all_int_widths_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_range(0u32..10) < 10);
        assert!(rng.gen_range(0u64..10) < 10);
        assert!((0..10).contains(&rng.gen_range(0i32..10)));
        assert!((-5..5).contains(&rng.gen_range(-5i64..5)));
    }
}
