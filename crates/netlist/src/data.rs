//! Embedded reference netlists.
//!
//! Genuine small ISCAS benchmark circuits in `.bench` text form, used by
//! tests and examples. The large ISCAS89 circuits of the paper's evaluation
//! are replaced by the seeded synthetic circuits of [`crate::generator`]
//! (see `DESIGN.md` §4).

/// ISCAS89 `s27`: the smallest sequential benchmark (3 flip-flops).
pub const S27_BENCH: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// ISCAS85 `c17`: the classic six-NAND combinational example.
pub const C17_BENCH: &str = "\
# c17
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use xtalk_tech::{Library, Process};

    #[test]
    fn embedded_netlists_parse_and_validate() {
        let lib = Library::c05um(&Process::c05um());
        for (name, text) in [("s27", S27_BENCH), ("c17", C17_BENCH)] {
            let nl = bench::parse(text, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
            nl.validate(&lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
