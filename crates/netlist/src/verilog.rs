//! Structural Verilog subset reader and writer.
//!
//! Supports the flat gate-level style that placement/STA flows exchange:
//!
//! ```verilog
//! module top (a, b, clk, y);
//!   input a, b, clk;
//!   output y;
//!   wire w1;
//!   NAND2X1 u1 (.A(a), .B(b), .Y(w1));
//!   DFFX1 ff1 (.D(w1), .CK(clk), .Q(y));
//! endmodule
//! ```
//!
//! Restrictions: one module per file, named port connections only, no
//! parameters, no behavioural constructs. `//` and `/* */` comments are
//! stripped.
//!
//! ```
//! use xtalk_netlist::verilog;
//! use xtalk_tech::{Library, Process};
//!
//! let lib = Library::c05um(&Process::c05um());
//! let src = "module t (a, y); input a; output y; INVX1 u0 (.A(a), .Y(y)); endmodule";
//! let nl = verilog::parse(src, &lib)?;
//! assert_eq!(nl.name, "t");
//! let text = verilog::write(&nl, &lib)?;
//! assert!(text.contains("INVX1 u0"));
//! # Ok::<(), xtalk_netlist::NetlistError>(())
//! ```

use std::fmt::Write as _;

use xtalk_tech::Library;

use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist};

/// Parses structural Verilog into a [`Netlist`].
///
/// # Errors
///
/// [`NetlistError::Parse`] for anything outside the supported subset, plus
/// structural errors while building (multiple drivers, unknown cells when a
/// referenced cell is missing from `library`).
pub fn parse(text: &str, library: &Library) -> Result<Netlist, NetlistError> {
    let stripped = strip_comments(text);
    let mut statements = split_statements(&stripped).into_iter();

    // Module header: `module name ( ports )`.
    let (hline, _hcol, header) = statements
        .next()
        .filter(|(_, _, s)| !s.is_empty())
        .ok_or_else(|| parse_err(1, "empty source"))?;
    let header = header
        .strip_prefix("module")
        .ok_or_else(|| parse_err(hline, "expected `module`"))?
        .trim();
    let (name, _ports) = match header.find('(') {
        Some(open) => {
            let name = header[..open].trim();
            let rest = header[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| parse_err(hline, "unterminated port list"))?;
            (name, Some(rest))
        }
        None => (header, None),
    };
    if name.is_empty() {
        return Err(parse_err(hline, "module needs a name"));
    }
    let mut nl = Netlist::new(name);

    for (line, col, stmt) in statements {
        if stmt.is_empty() {
            continue;
        }
        if stmt == "endmodule" || stmt.starts_with("endmodule") {
            break;
        }
        if let Some(rest) = stmt.strip_prefix("input") {
            for n in split_names(rest) {
                let id = nl.net_or_insert(n);
                nl.mark_primary_input(id);
                if n.eq_ignore_ascii_case("clk") || n.eq_ignore_ascii_case("clock") {
                    nl.mark_clock(id);
                }
            }
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("output") {
            for n in split_names(rest) {
                let id = nl.net_or_insert(n);
                nl.mark_primary_output(id);
            }
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("wire") {
            for n in split_names(rest) {
                nl.net_or_insert(n);
            }
            continue;
        }
        // Instance: `CELL inst (.PIN(net), ...)`.
        parse_instance(stmt, line, col, &mut nl, library)?;
    }
    Ok(nl)
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        column: None,
        message: message.into(),
    }
}

fn parse_err_at(line: usize, column: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        column: Some(column),
        message: message.into(),
    }
}

/// Splits `text` on `;`, recording the 1-based line and column where each
/// statement's first non-whitespace character sits. Statements are returned
/// trimmed; byte offsets into a trimmed statement can be mapped back to
/// source positions with [`pos_in`].
fn split_statements(text: &str) -> Vec<(usize, usize, &str)> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    for piece in text.split(';') {
        let lead = piece.len() - piece.trim_start().len();
        let (sl, sc) = advance(line, col, &piece[..lead]);
        out.push((sl, sc, piece.trim()));
        let (el, ec) = advance(line, col, piece);
        line = el;
        col = ec + 1; // the consumed `;`
    }
    out
}

/// Position after walking `s` starting from (`line`, `col`).
fn advance(mut line: usize, mut col: usize, s: &str) -> (usize, usize) {
    for ch in s.chars() {
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Line/column of byte offset `off` within `stmt`, whose first character
/// sits at (`line`, `col`).
fn pos_in(stmt: &str, off: usize, line: usize, col: usize) -> (usize, usize) {
    let pre = &stmt[..off];
    match pre.rsplit_once('\n') {
        Some((before, after)) => (
            line + before.matches('\n').count() + 1,
            after.chars().count() + 1,
        ),
        None => (line, col + pre.chars().count()),
    }
}

fn split_names(rest: &str) -> impl Iterator<Item = &str> {
    rest.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_instance(
    stmt: &str,
    line: usize,
    col: usize,
    nl: &mut Netlist,
    library: &Library,
) -> Result<(), NetlistError> {
    let open = stmt
        .find('(')
        .ok_or_else(|| parse_err_at(line, col, format!("unrecognised statement `{stmt}`")))?;
    let head: Vec<&str> = stmt[..open].split_whitespace().collect();
    let [cell_name, inst_name] = head[..] else {
        return Err(parse_err_at(
            line,
            col,
            format!("bad instance header `{}`", stmt[..open].trim()),
        ));
    };
    let cell = library
        .cell(cell_name)
        .ok_or_else(|| NetlistError::UnknownCell {
            cell: cell_name.to_string(),
        })?;
    let body = stmt[open + 1..]
        .trim_end()
        .strip_suffix(')')
        .ok_or_else(|| {
            let (el, ec) = pos_in(stmt, stmt.len(), line, col);
            parse_err_at(el, ec, "unterminated connection list")
        })?;

    let mut inputs: Vec<Option<NetId>> = vec![None; cell.inputs.len()];
    let mut output: Option<NetId> = None;
    // Byte offset of the next connection within `stmt`, for error positions.
    let mut off = open + 1;
    for conn_raw in body.split(',') {
        let conn_off = off + (conn_raw.len() - conn_raw.trim_start().len());
        off += conn_raw.len() + 1; // the consumed `,`
        let conn = conn_raw.trim();
        if conn.is_empty() {
            continue;
        }
        let (cl, cc) = pos_in(stmt, conn_off, line, col);
        let conn = conn.strip_prefix('.').ok_or_else(|| {
            parse_err_at(cl, cc, format!("expected named connection, got `{conn}`"))
        })?;
        let open = conn
            .find('(')
            .ok_or_else(|| parse_err_at(cl, cc, format!("bad connection `{conn}`")))?;
        let pin = conn[..open].trim();
        let net = conn[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| parse_err_at(cl, cc, format!("bad connection `{conn}`")))?
            .trim();
        let net_id = nl.net_or_insert(net);
        if pin == cell.output {
            output = Some(net_id);
        } else if let Some(idx) = cell.input_index(pin) {
            inputs[idx] = Some(net_id);
        } else {
            return Err(parse_err_at(
                cl,
                cc,
                format!("cell `{cell_name}` has no pin `{pin}`"),
            ));
        }
    }
    let output = output
        .ok_or_else(|| parse_err(line, format!("instance `{inst_name}` leaves output open")))?;
    let inputs: Vec<NetId> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            n.ok_or_else(|| {
                parse_err(
                    line,
                    format!(
                        "instance `{inst_name}` leaves input `{}` open",
                        cell.inputs[i]
                    ),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    nl.add_gate(inst_name, cell_name, inputs, output)?;
    Ok(())
}

fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                b'*' => {
                    i += 2;
                    out.push(' ');
                    // Preserve newlines inside the comment so line numbers
                    // in downstream parse errors stay accurate.
                    while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                        if bytes[i] == b'\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                    if i < bytes.len() && bytes[i] == b'\n' {
                        out.push('\n');
                    }
                    i = (i + 2).min(bytes.len());
                    continue;
                }
                _ => {}
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// Writes a [`Netlist`] as structural Verilog.
///
/// # Errors
///
/// [`NetlistError::UnknownCell`] when a gate references a cell missing from
/// `library`.
pub fn write(netlist: &Netlist, library: &Library) -> Result<String, NetlistError> {
    let mut out = String::new();
    let pis: Vec<&str> = netlist
        .primary_inputs()
        .map(|id| netlist.net(id).name.as_str())
        .collect();
    let pos: Vec<&str> = netlist
        .primary_outputs()
        .map(|id| netlist.net(id).name.as_str())
        .collect();
    let mut ports: Vec<&str> = pis.clone();
    ports.extend(pos.iter().copied());
    let _ = writeln!(out, "module {} ({});", netlist.name, ports.join(", "));
    if !pis.is_empty() {
        let _ = writeln!(out, "  input {};", pis.join(", "));
    }
    if !pos.is_empty() {
        let _ = writeln!(out, "  output {};", pos.join(", "));
    }
    let wires: Vec<&str> = netlist
        .nets()
        .iter()
        .filter(|n| !n.is_primary_input && !n.is_primary_output)
        .map(|n| n.name.as_str())
        .collect();
    for chunk in wires.chunks(16) {
        let _ = writeln!(out, "  wire {};", chunk.join(", "));
    }
    for gate in netlist.gates() {
        let cell = library
            .cell(&gate.cell)
            .ok_or_else(|| NetlistError::UnknownCell {
                cell: gate.cell.clone(),
            })?;
        let mut conns: Vec<String> = gate
            .inputs
            .iter()
            .zip(&cell.inputs)
            .map(|(&net, pin)| format!(".{pin}({})", netlist.net(net).name))
            .collect();
        conns.push(format!(
            ".{}({})",
            cell.output,
            netlist.net(gate.output).name
        ));
        let _ = writeln!(out, "  {} {} ({});", gate.cell, gate.name, conns.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::data;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn parses_minimal_module() {
        let src = "module t (a, y);\n input a;\n output y;\n INVX1 u0 (.A(a), .Y(y));\nendmodule\n";
        let nl = parse(src, &lib()).expect("parse");
        assert_eq!(nl.name, "t");
        assert_eq!(nl.gate_count(), 1);
        nl.validate(&lib()).expect("valid");
    }

    #[test]
    fn strips_comments() {
        let src = "// hi\nmodule t (a, y); /* multi\nline */ input a; output y;\n\
                   INVX1 u0 (.A(a), .Y(y)); endmodule";
        let nl = parse(src, &lib()).expect("parse");
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn clock_input_marked() {
        let src = "module t (clk, a, y); input clk, a; output y;\n\
                   INVX1 u0 (.A(a), .Y(w)); wire w;\n\
                   DFFX1 f (.D(w), .CK(clk), .Q(y)); endmodule";
        let nl = parse(src, &lib()).expect("parse");
        let clk = nl.net_by_name("clk").expect("clk");
        assert!(nl.net(clk).is_clock);
    }

    #[test]
    fn rejects_unknown_pin() {
        let src = "module t (a, y); input a; output y; INVX1 u0 (.Z(a), .Y(y)); endmodule";
        let err = parse(src, &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn errors_carry_line_and_column_context() {
        let src = "module t (a, y);\ninput a;\noutput y;\nINVX1 u0 (.Z(a), .Y(y));\nendmodule\n";
        let err = parse(src, &lib()).unwrap_err();
        match err {
            NetlistError::Parse { line, column, .. } => {
                assert_eq!(line, 4);
                assert_eq!(column, Some(11), "column points at the `.Z(a)` connection");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn block_comments_preserve_line_numbers() {
        let src = "module t (a, y); /* spanning\n multiple\n lines */\ninput a;\noutput y;\n\
                   INVX1 u0 (.Z(a), .Y(y));\nendmodule\n";
        let err = parse(src, &lib()).unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn truncated_connection_list_is_a_typed_error() {
        let src = "module t (a, y);\ninput a;\noutput y;\nINVX1 u0 (.A(a), .Y(y";
        let err = parse(src, &lib()).unwrap_err();
        match err {
            NetlistError::Parse { line, message, .. } => {
                assert_eq!(line, 4);
                assert!(message.contains("unterminated"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn unterminated_block_comment_is_a_typed_error() {
        let src = "module t (a, y); input a; output y; INVX1 u0 /* truncated";
        let err = parse(src, &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_cell() {
        let src = "module t (a, y); input a; output y; FROBX1 u0 (.A(a), .Y(y)); endmodule";
        let err = parse(src, &lib()).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnknownCell {
                cell: "FROBX1".into()
            }
        );
    }

    #[test]
    fn rejects_open_pins() {
        let src = "module t (a, y); input a; output y; NAND2X1 u0 (.A(a), .Y(y)); endmodule";
        let err = parse(src, &lib()).unwrap_err();
        assert!(err.to_string().contains("leaves input"), "{err}");
    }

    #[test]
    fn roundtrip_s27() {
        let library = lib();
        let nl = bench::parse(data::S27_BENCH, &library).expect("bench parse");
        let v = write(&nl, &library).expect("write verilog");
        let nl2 = parse(&v, &library).expect("reparse verilog");
        assert_eq!(nl.gate_count(), nl2.gate_count());
        assert_eq!(nl.net_count(), nl2.net_count());
        assert_eq!(nl.cell_histogram(), nl2.cell_histogram());
        assert_eq!(nl.primary_inputs().count(), nl2.primary_inputs().count());
        assert_eq!(nl.primary_outputs().count(), nl2.primary_outputs().count());
        nl2.validate(&library).expect("still valid");
    }

    #[test]
    fn write_declares_all_wires() {
        let library = lib();
        let nl = bench::parse(data::C17_BENCH, &library).expect("parse");
        let v = write(&nl, &library).expect("write");
        assert!(v.contains("module c17"));
        assert!(v.contains("input "));
        assert!(v.contains("output "));
        assert!(v.contains("NAND2X1"));
        assert!(v.trim_end().ends_with("endmodule"));
    }
}
