//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net was driven by more than one gate output.
    MultipleDrivers {
        /// Name of the offending net.
        net: String,
    },
    /// An internal net has no driver.
    Undriven {
        /// Name of the offending net.
        net: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalLoop {
        /// A net on the detected cycle.
        net: String,
    },
    /// A referenced library cell does not exist.
    UnknownCell {
        /// The missing cell name.
        cell: String,
    },
    /// A gate was connected with the wrong number of inputs.
    PinCountMismatch {
        /// Cell name.
        cell: String,
        /// Inputs the cell has.
        expected: usize,
        /// Inputs the instance supplied.
        got: usize,
    },
    /// The input text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending token, when known.
        column: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// A `.bench` gate type is not supported.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The gate keyword.
        gate: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Undriven { net } => {
                write!(f, "net `{net}` has no driver and is not a primary input")
            }
            NetlistError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            NetlistError::UnknownCell { cell } => {
                write!(f, "unknown library cell `{cell}`")
            }
            NetlistError::PinCountMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "cell `{cell}` takes {expected} inputs but {got} were connected"
            ),
            NetlistError::Parse {
                line,
                column,
                message,
            } => match column {
                Some(col) => write!(f, "parse error at line {line}, column {col}: {message}"),
                None => write!(f, "parse error at line {line}: {message}"),
            },
            NetlistError::UnsupportedGate { line, gate } => {
                write!(f, "unsupported gate `{gate}` at line {line}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::MultipleDrivers { net: "n1".into() };
        assert_eq!(e.to_string(), "net `n1` has multiple drivers");
        let e = NetlistError::Parse {
            line: 3,
            column: None,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = NetlistError::Parse {
            line: 3,
            column: Some(7),
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3, column 7: bad token");
        let e = NetlistError::PinCountMismatch {
            cell: "NAND2X1".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("takes 2 inputs"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetlistError>();
    }
}
