//! The gate-level netlist structure.
//!
//! A [`Netlist`] is a flat graph of named [`Net`]s and library-cell [`Gate`]
//! instances. Sequential cells (D flip-flops) are ordinary gates whose cell
//! is marked sequential in the library; for timing and levelization their
//! outputs count as sources and their data inputs as sinks, which turns the
//! combinational portion into the DAG required by static timing analysis
//! (paper §4).

use std::collections::HashMap;

use xtalk_tech::Library;

use crate::error::NetlistError;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl NetId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named electrical node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The net's name (unique within the netlist).
    pub name: String,
    /// The gate driving this net, if any.
    pub driver: Option<GateId>,
    /// Gates whose inputs this net feeds, as `(gate, input pin index)`.
    pub loads: Vec<(GateId, usize)>,
    /// `true` when the net is a primary input.
    pub is_primary_input: bool,
    /// `true` when the net is a primary output.
    pub is_primary_output: bool,
    /// `true` when the net distributes the clock.
    pub is_clock: bool,
}

/// A library-cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Instance name (unique within the netlist).
    pub name: String,
    /// Library cell name (resolved against a [`Library`]).
    pub cell: String,
    /// Input nets, ordered like the cell's input pins.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    by_name: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Finds a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Returns the net named `name`, creating it if necessary.
    pub fn net_or_insert(&mut self, name: &str) -> NetId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.to_string(),
            driver: None,
            loads: Vec::new(),
            is_primary_input: false,
            is_primary_output: false,
            is_clock: false,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Marks a net as primary input.
    pub fn mark_primary_input(&mut self, id: NetId) {
        self.nets[id.index()].is_primary_input = true;
    }

    /// Marks a net as primary output.
    pub fn mark_primary_output(&mut self, id: NetId) {
        self.nets[id.index()].is_primary_output = true;
    }

    /// Marks a net as a clock distribution net.
    pub fn mark_clock(&mut self, id: NetId) {
        self.nets[id.index()].is_clock = true;
    }

    /// Primary input net ids, in creation order.
    pub fn primary_inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_primary_input)
            .map(|(i, _)| NetId(i as u32))
    }

    /// Primary output net ids, in creation order.
    pub fn primary_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_primary_output)
            .map(|(i, _)| NetId(i as u32))
    }

    /// Adds a gate instance.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] when `output` already has a driver.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell: impl Into<String>,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers {
                net: self.nets[output.index()].name.clone(),
            });
        }
        let id = GateId(self.gates.len() as u32);
        for (pin, &input) in inputs.iter().enumerate() {
            self.nets[input.index()].loads.push((id, pin));
        }
        self.nets[output.index()].driver = Some(id);
        self.gates.push(Gate {
            name: name.into(),
            cell: cell.into(),
            inputs,
            output,
        });
        Ok(id)
    }

    /// ECO: swaps the library cell of an existing gate instance. The pin
    /// interface stays as it is, so the new cell must have the same input
    /// count (checked by the caller against a library, or by `validate`).
    pub fn set_gate_cell(&mut self, id: GateId, cell: impl Into<String>) {
        self.gates[id.index()].cell = cell.into();
    }

    /// ECO: inserts a buffer on `net`, splitting it in two. A new net named
    /// `<net>__buf` (suffix repeated until unique) takes over all of `net`'s
    /// former loads; `net` keeps its driver and feeds only the new buffer
    /// gate `name`. The new net inherits `net`'s clock marking (it now
    /// distributes the same clock); primary-output marking stays on the
    /// original net, which is still the externally visible node.
    ///
    /// Returns `(buffer gate, new net)`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Undriven`] when `net` is a primary output with no
    /// loads (there is nothing to buffer behind it).
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        name: impl Into<String>,
        cell: impl Into<String>,
    ) -> Result<(GateId, NetId), NetlistError> {
        if self.nets[net.index()].loads.is_empty() {
            return Err(NetlistError::Undriven {
                net: self.nets[net.index()].name.clone(),
            });
        }
        let mut new_name = format!("{}__buf", self.nets[net.index()].name);
        while self.by_name.contains_key(&new_name) {
            new_name.push_str("__buf");
        }
        let new_net = self.net_or_insert(&new_name);
        let moved = std::mem::take(&mut self.nets[net.index()].loads);
        for &(gate, pin) in &moved {
            self.gates[gate.index()].inputs[pin] = new_net;
        }
        self.nets[new_net.index()].loads = moved;
        self.nets[new_net.index()].is_clock = self.nets[net.index()].is_clock;
        let buf = self.add_gate(name, cell, vec![net], new_net)?;
        Ok((buf, new_net))
    }

    /// Checks structural sanity against a cell library: every cell exists,
    /// pin counts match, every non-primary-input net is driven, and the
    /// combinational logic is acyclic.
    ///
    /// # Errors
    ///
    /// The first problem found, as a [`NetlistError`].
    pub fn validate(&self, library: &Library) -> Result<(), NetlistError> {
        for gate in &self.gates {
            let cell = library
                .cell(&gate.cell)
                .ok_or_else(|| NetlistError::UnknownCell {
                    cell: gate.cell.clone(),
                })?;
            if cell.inputs.len() != gate.inputs.len() {
                return Err(NetlistError::PinCountMismatch {
                    cell: gate.cell.clone(),
                    expected: cell.inputs.len(),
                    got: gate.inputs.len(),
                });
            }
        }
        for net in &self.nets {
            if net.driver.is_none() && !net.is_primary_input {
                return Err(NetlistError::Undriven {
                    net: net.name.clone(),
                });
            }
        }
        self.levelize(library).map(|_| ())
    }

    /// Number of sequential cells in the design.
    pub fn flip_flop_count(&self) -> usize {
        // Cheap textual check avoids requiring a library here; the
        // validated path goes through `validate`.
        self.gates
            .iter()
            .filter(|g| g.cell.starts_with("DFF"))
            .count()
    }

    /// Topologically orders the *combinational* gates (flip-flop outputs and
    /// primary inputs are sources; flip-flop data/clock inputs are cut).
    /// Sequential gates are listed first (they have no combinational
    /// fan-in by construction).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalLoop`] when a cycle exists.
    pub fn levelize(&self, library: &Library) -> Result<Vec<GateId>, NetlistError> {
        let is_seq: Vec<bool> = self
            .gates
            .iter()
            .map(|g| {
                library
                    .cell(&g.cell)
                    .map(|c| c.is_sequential())
                    .unwrap_or(false)
            })
            .collect();

        // In-degree of each combinational gate = number of its input nets
        // driven by other combinational gates.
        let mut indegree = vec![0usize; self.gates.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            if is_seq[gi] {
                continue;
            }
            for &input in &gate.inputs {
                if let Some(driver) = self.nets[input.index()].driver {
                    if !is_seq[driver.index()] {
                        indegree[gi] += 1;
                    }
                }
            }
        }

        let mut order: Vec<GateId> = Vec::with_capacity(self.gates.len());
        let mut queue: Vec<GateId> = Vec::new();
        for (gi, _) in self.gates.iter().enumerate() {
            if is_seq[gi] {
                order.push(GateId(gi as u32));
            } else if indegree[gi] == 0 {
                queue.push(GateId(gi as u32));
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(g);
            let out = self.gates[g.index()].output;
            for &(load, _) in &self.nets[out.index()].loads {
                if is_seq[load.index()] {
                    continue;
                }
                indegree[load.index()] -= 1;
                if indegree[load.index()] == 0 {
                    queue.push(load);
                }
            }
        }
        if order.len() != self.gates.len() {
            // Some combinational gate never reached in-degree 0: find one.
            let stuck = (0..self.gates.len())
                .find(|&gi| !is_seq[gi] && indegree[gi] > 0)
                .expect("a stuck gate must exist when levelization is short");
            return Err(NetlistError::CombinationalLoop {
                net: self.nets[self.gates[stuck].output.index()].name.clone(),
            });
        }
        Ok(order)
    }

    /// Logic depth: the longest chain of combinational gates between
    /// sources (PIs, FF outputs) and sinks (POs, FF inputs).
    pub fn logic_depth(&self, library: &Library) -> Result<usize, NetlistError> {
        let order = self.levelize(library)?;
        let mut depth = vec![0usize; self.gates.len()];
        let mut max = 0;
        for g in order {
            let gate = &self.gates[g.index()];
            let seq = library
                .cell(&gate.cell)
                .map(|c| c.is_sequential())
                .unwrap_or(false);
            if seq {
                continue;
            }
            let mut d = 1;
            for &input in &gate.inputs {
                if let Some(driver) = self.nets[input.index()].driver {
                    let driver_seq = library
                        .cell(&self.gates[driver.index()].cell)
                        .map(|c| c.is_sequential())
                        .unwrap_or(false);
                    if !driver_seq {
                        d = d.max(depth[driver.index()] + 1);
                    }
                }
            }
            depth[g.index()] = d;
            max = max.max(d);
        }
        Ok(max)
    }

    /// Per-cell-name instance counts, for reporting.
    pub fn cell_histogram(&self) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for gate in &self.gates {
            *h.entry(gate.cell.clone()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    /// a -> INV -> w -> INV -> y, plus a DFF from y back to a-side logic.
    fn small() -> Netlist {
        let mut nl = Netlist::new("small");
        let a = nl.net_or_insert("a");
        nl.mark_primary_input(a);
        let w = nl.net_or_insert("w");
        let y = nl.net_or_insert("y");
        nl.mark_primary_output(y);
        nl.add_gate("u1", "INVX1", vec![a], w).expect("gate u1");
        nl.add_gate("u2", "INVX1", vec![w], y).expect("gate u2");
        nl
    }

    #[test]
    fn build_and_lookup() {
        let nl = small();
        assert_eq!(nl.net_count(), 3);
        assert_eq!(nl.gate_count(), 2);
        let a = nl.net_by_name("a").expect("net a");
        assert!(nl.net(a).is_primary_input);
        assert_eq!(nl.net(a).loads.len(), 1);
        let y = nl.net_by_name("y").expect("net y");
        assert!(nl.net(y).driver.is_some());
        assert_eq!(nl.primary_inputs().count(), 1);
        assert_eq!(nl.primary_outputs().count(), 1);
    }

    #[test]
    fn net_or_insert_is_idempotent() {
        let mut nl = Netlist::new("t");
        let a = nl.net_or_insert("a");
        let b = nl.net_or_insert("a");
        assert_eq!(a, b);
        assert_eq!(nl.net_count(), 1);
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut nl = Netlist::new("t");
        let a = nl.net_or_insert("a");
        nl.mark_primary_input(a);
        let y = nl.net_or_insert("y");
        nl.add_gate("u1", "INVX1", vec![a], y)
            .expect("first driver");
        let err = nl.add_gate("u2", "INVX1", vec![a], y).unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers { net: "y".into() });
    }

    #[test]
    fn validate_accepts_good_netlist() {
        small().validate(&lib()).expect("valid netlist");
    }

    #[test]
    fn validate_rejects_undriven() {
        let mut nl = small();
        nl.net_or_insert("floating");
        let err = nl.validate(&lib()).unwrap_err();
        assert_eq!(
            err,
            NetlistError::Undriven {
                net: "floating".into()
            }
        );
    }

    #[test]
    fn validate_rejects_unknown_cell() {
        let mut nl = Netlist::new("t");
        let a = nl.net_or_insert("a");
        nl.mark_primary_input(a);
        let y = nl.net_or_insert("y");
        nl.add_gate("u1", "NOPE", vec![a], y).expect("gate added");
        let err = nl.validate(&lib()).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnknownCell {
                cell: "NOPE".into()
            }
        );
    }

    #[test]
    fn validate_rejects_pin_mismatch() {
        let mut nl = Netlist::new("t");
        let a = nl.net_or_insert("a");
        nl.mark_primary_input(a);
        let y = nl.net_or_insert("y");
        nl.add_gate("u1", "NAND2X1", vec![a], y)
            .expect("gate added");
        let err = nl.validate(&lib()).unwrap_err();
        assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
    }

    #[test]
    fn levelize_orders_fanin_first() {
        let nl = small();
        let order = nl.levelize(&lib()).expect("acyclic");
        assert_eq!(order.len(), 2);
        assert_eq!(nl.gate(order[0]).name, "u1");
        assert_eq!(nl.gate(order[1]).name, "u2");
    }

    #[test]
    fn levelize_detects_loop() {
        let mut nl = Netlist::new("loop");
        let a = nl.net_or_insert("a");
        let b = nl.net_or_insert("b");
        nl.add_gate("u1", "INVX1", vec![a], b).expect("u1");
        nl.add_gate("u2", "INVX1", vec![b], a).expect("u2");
        let err = nl.levelize(&lib()).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn ff_breaks_loop() {
        // a -> INV -> d, DFF(d, clk) -> a : sequential loop is fine.
        let mut nl = Netlist::new("seqloop");
        let a = nl.net_or_insert("a");
        let d = nl.net_or_insert("d");
        let clk = nl.net_or_insert("clk");
        nl.mark_primary_input(clk);
        nl.mark_clock(clk);
        nl.add_gate("u1", "INVX1", vec![a], d).expect("u1");
        nl.add_gate("ff", "DFFX1", vec![d, clk], a).expect("ff");
        nl.validate(&lib()).expect("sequential loop is legal");
        assert_eq!(nl.flip_flop_count(), 1);
    }

    #[test]
    fn logic_depth_counts_chain() {
        let nl = small();
        assert_eq!(nl.logic_depth(&lib()).expect("depth"), 2);
    }

    #[test]
    fn histogram_counts_cells() {
        let nl = small();
        let h = nl.cell_histogram();
        assert_eq!(h.get("INVX1"), Some(&2));
    }

    #[test]
    fn set_gate_cell_swaps_in_place() {
        let mut nl = small();
        let u1 = GateId(0);
        nl.set_gate_cell(u1, "INVX4");
        assert_eq!(nl.gate(u1).cell, "INVX4");
        nl.validate(&lib()).expect("resize keeps the netlist valid");
    }

    #[test]
    fn insert_buffer_splits_net() {
        let mut nl = small();
        let w = nl.net_by_name("w").expect("w");
        let old_driver = nl.net(w).driver;
        let (buf, new_net) = nl.insert_buffer(w, "eco_buf", "BUFX2").expect("buffer");
        // Old net: same driver, single load = the buffer's input pin 0.
        assert_eq!(nl.net(w).driver, old_driver);
        assert_eq!(nl.net(w).loads, vec![(buf, 0)]);
        // New net: driven by the buffer, carries the old loads.
        assert_eq!(nl.net(new_net).driver, Some(buf));
        assert_eq!(nl.net(new_net).loads.len(), 1);
        let (g, pin) = nl.net(new_net).loads[0];
        assert_eq!(nl.gate(g).inputs[pin], new_net);
        nl.validate(&lib()).expect("buffered netlist stays valid");
    }

    #[test]
    fn insert_buffer_rejects_loadless_net() {
        let mut nl = small();
        let y = nl.net_by_name("y").expect("y");
        assert!(nl.insert_buffer(y, "b", "BUFX2").is_err());
    }
}
