//! Seeded synthetic sequential-circuit generation.
//!
//! The paper evaluates on routed ISCAS89 layouts (s35932, s38417, s38584)
//! whose placed-and-routed form and extracted parasitics are not available.
//! [`generate`] produces structurally comparable stand-ins: sequential
//! circuits with a chosen flip-flop count, combinational gate count, logic
//! depth and a realistic cell mix, plus the clock buffer tree the paper
//! explicitly adds ("The gates are sized and there is a clock buffer tree
//! added", §6). Generation is fully deterministic from the seed, so every
//! experiment in `EXPERIMENTS.md` is reproducible.
//!
//! ```
//! use xtalk_netlist::generator::{self, GeneratorConfig};
//! use xtalk_tech::{Library, Process};
//!
//! let lib = Library::c05um(&Process::c05um());
//! let nl = generator::generate(&GeneratorConfig::small(7), &lib)?;
//! nl.validate(&lib)?;
//! assert!(nl.gate_count() > 100);
//! # Ok::<(), xtalk_netlist::NetlistError>(())
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xtalk_tech::Library;

use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist};

/// Parameters of a synthetic circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// RNG seed; the same config always yields the same netlist.
    pub seed: u64,
    /// Number of D flip-flops.
    pub flip_flops: usize,
    /// Number of combinational gates (clock buffers not included).
    pub comb_gates: usize,
    /// Target logic depth (levels of combinational gates).
    pub depth: usize,
    /// Number of primary inputs (the clock comes extra).
    pub primary_inputs: usize,
    /// Number of primary outputs explicitly drawn from the deepest levels
    /// (dangling intermediate nets are additionally promoted to outputs).
    pub primary_outputs: usize,
    /// Whether to synthesise a buffered clock tree (vs. a flat clock net).
    pub clock_tree: bool,
    /// Flip-flops per leaf clock buffer.
    pub clock_leaf_fanout: usize,
}

impl GeneratorConfig {
    /// A ~200-cell circuit for unit tests.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            name: format!("synth_small_{seed}"),
            seed,
            flip_flops: 16,
            comb_gates: 180,
            depth: 8,
            primary_inputs: 8,
            primary_outputs: 8,
            clock_tree: true,
            clock_leaf_fanout: 8,
        }
    }

    /// A ~2 000-cell circuit for integration tests and quick benches.
    pub fn medium(seed: u64) -> Self {
        GeneratorConfig {
            name: format!("synth_medium_{seed}"),
            seed,
            flip_flops: 150,
            comb_gates: 1800,
            depth: 14,
            primary_inputs: 20,
            primary_outputs: 20,
            clock_tree: true,
            clock_leaf_fanout: 12,
        }
    }

    /// Stand-in for ISCAS89 s35932 (paper Table 1: 17 900 cells).
    /// The real s35932 is wide and shallow with 1 728 flip-flops.
    pub fn s35932_like() -> Self {
        Self::iscas_like("s35932_like", 35932, 17_900, 1_728, 14, 35, 320)
    }

    /// Stand-in for ISCAS89 s38417 (paper Table 2: 23 922 cells).
    pub fn s38417_like() -> Self {
        Self::iscas_like("s38417_like", 38417, 23_922, 1_636, 24, 28, 106)
    }

    /// Stand-in for ISCAS89 s38584 (paper Table 3: 20 812 cells).
    pub fn s38584_like() -> Self {
        Self::iscas_like("s38584_like", 38584, 20_812, 1_426, 28, 12, 278)
    }

    fn iscas_like(
        name: &str,
        seed: u64,
        total_cells: usize,
        flip_flops: usize,
        depth: usize,
        pis: usize,
        pos: usize,
    ) -> Self {
        let leaf_fanout = 16;
        let clock_cells = clock_tree_size(flip_flops, leaf_fanout);
        let comb_gates = total_cells.saturating_sub(flip_flops + clock_cells);
        GeneratorConfig {
            name: name.to_string(),
            seed,
            flip_flops,
            comb_gates,
            depth,
            primary_inputs: pis,
            primary_outputs: pos,
            clock_tree: true,
            clock_leaf_fanout: leaf_fanout,
        }
    }

    /// Total cells this configuration will instantiate (gates + flip-flops +
    /// clock buffers).
    pub fn total_cells(&self) -> usize {
        let clk = if self.clock_tree {
            clock_tree_size(self.flip_flops, self.clock_leaf_fanout)
        } else {
            0
        };
        self.comb_gates + self.flip_flops + clk
    }
}

/// Number of buffers a clock tree over `ffs` sinks needs with the given leaf
/// fan-out (upper levels fan out by 8).
pub fn clock_tree_size(ffs: usize, leaf_fanout: usize) -> usize {
    if ffs == 0 {
        return 0;
    }
    let mut level = ffs.div_ceil(leaf_fanout.max(1));
    let mut total = level;
    while level > 1 {
        level = level.div_ceil(8);
        total += level;
    }
    total
}

/// Weighted cell mix for combinational gates: `(cell, inputs, weight)`.
const CELL_MIX: &[(&str, usize, u32)] = &[
    ("NAND2X1", 2, 26),
    ("NOR2X1", 2, 13),
    ("INVX1", 1, 13),
    ("INVX2", 1, 4),
    ("AND2X1", 2, 8),
    ("OR2X1", 2, 7),
    ("NAND3X1", 3, 8),
    ("NOR3X1", 3, 5),
    ("NAND4X1", 4, 3),
    ("XOR2X1", 2, 4),
    ("XNOR2X1", 2, 2),
    ("AOI21X1", 3, 4),
    ("OAI21X1", 3, 3),
];

/// Generates a synthetic sequential circuit from `config`, instantiating
/// cells from `library`.
///
/// # Errors
///
/// Structural [`NetlistError`]s (should not occur for sane configs) and
/// [`NetlistError::UnknownCell`] when `library` is missing a mix cell.
pub fn generate(config: &GeneratorConfig, library: &Library) -> Result<Netlist, NetlistError> {
    for (cell, _, _) in CELL_MIX {
        if library.cell(cell).is_none() {
            return Err(NetlistError::UnknownCell {
                cell: (*cell).to_string(),
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nl = Netlist::new(config.name.clone());

    // Clock and primary inputs.
    let clk = nl.net_or_insert("CLK");
    nl.mark_primary_input(clk);
    nl.mark_clock(clk);
    let mut level0: Vec<NetId> = Vec::new();
    for i in 0..config.primary_inputs {
        let id = nl.net_or_insert(&format!("pi{i}"));
        nl.mark_primary_input(id);
        level0.push(id);
    }

    // Flip-flop output nets are sources of the combinational logic; the
    // gates themselves are added at the end, once D and CK nets exist.
    let mut ff_q: Vec<NetId> = Vec::new();
    for i in 0..config.flip_flops {
        let q = nl.net_or_insert(&format!("q{i}"));
        ff_q.push(q);
        level0.push(q);
    }

    // Combinational levels. Each gate's first input comes from the previous
    // level (realising the target depth); remaining inputs come from any
    // earlier level, preferring not-yet-used sources so nothing dangles.
    let depth = config.depth.max(1);
    let mut levels: Vec<Vec<NetId>> = vec![level0];
    let mut unused: Vec<NetId> = levels[0].clone();
    // Normalised position of each unused net (parallel to `unused`).
    let mut unused_u: Vec<f64> = (0..unused.len())
        .map(|i| (i as f64 + 0.5) / unused.len().max(1) as f64)
        .collect();
    let total_weight: u32 = CELL_MIX.iter().map(|&(_, _, w)| w).sum();
    let mut gate_no = 0usize;
    for level in 1..=depth {
        let remaining_levels = depth - level + 1;
        let remaining_gates = config.comb_gates - gate_no;
        let count = (remaining_gates / remaining_levels)
            .max(1)
            .min(remaining_gates);
        if count == 0 {
            break;
        }
        let mut this_level = Vec::with_capacity(count);
        for k in 0..count {
            // Normalised position of the gate within its level: real
            // circuits obey Rent-style wiring locality, so fan-ins are
            // drawn from *nearby positions* of earlier levels rather than
            // uniformly (which would make every net span the whole die).
            let u = (k as f64 + 0.5) / count as f64;
            let (cell, arity) = pick_cell(&mut rng, total_weight);
            let mut inputs = Vec::with_capacity(arity);
            // Depth-realising input from the immediately preceding level,
            // near the same normalised position.
            let prev = &levels[level - 1];
            inputs.push(pick_near_capped(&nl, prev, u, 0.012, 10, &mut rng));
            for _ in 1..arity {
                let pick = if !unused.is_empty() && rng.gen_bool(0.6) {
                    // Consume an unused net with a similar position so no
                    // output dangles; sample a few candidates and take the
                    // positionally closest.
                    let mut best_k = rng.gen_range(0..unused.len());
                    let mut best_d = f64::INFINITY;
                    for _ in 0..12 {
                        let cand = rng.gen_range(0..unused.len());
                        let d = (unused_u[cand] - u).abs();
                        if d < best_d {
                            best_d = d;
                            best_k = cand;
                        }
                    }
                    unused_u.swap_remove(best_k);
                    unused.swap_remove(best_k)
                } else {
                    // Nearby position in one of the last two levels.
                    let lo = level.saturating_sub(2);
                    let l = rng.gen_range(lo..level);
                    pick_near_capped(&nl, &levels[l], u, 0.025, 10, &mut rng)
                };
                if inputs.contains(&pick) {
                    // Duplicate inputs are legal but pointless; retry once
                    // from the previous level, else accept.
                    let alt = pick_near_capped(&nl, prev, u, 0.05, 10, &mut rng);
                    inputs.push(if inputs.contains(&alt) { pick } else { alt });
                } else {
                    inputs.push(pick);
                }
            }
            let out = nl.net_or_insert(&format!("n{gate_no}"));
            nl.add_gate(format!("g{gate_no}"), cell, inputs, out)?;
            this_level.push(out);
            gate_no += 1;
        }
        // Outputs only become eligible inputs for *later* levels, so the
        // realised depth matches the target.
        unused.extend(this_level.iter().copied());
        unused_u.extend(
            (0..this_level.len()).map(|i| (i as f64 + 0.5) / this_level.len().max(1) as f64),
        );
        levels.push(this_level);
    }

    // Mark consumed sources as used.
    let used: std::collections::HashSet<NetId> = nl
        .gates()
        .iter()
        .flat_map(|g| g.inputs.iter().copied())
        .collect();

    // Flip-flop D pins: drawn from the deepest levels, preferring unused
    // nets so every cone terminates somewhere.
    let deep_start = (levels.len().saturating_sub(3)).max(1);
    let deep: Vec<NetId> = levels[deep_start..].iter().flatten().copied().collect();
    let mut d_nets = Vec::with_capacity(config.flip_flops);
    let mut unused_outputs: Vec<NetId> = unused
        .iter()
        .copied()
        .filter(|id| !used.contains(id) && nl.net(*id).driver.is_some())
        .collect();
    for i in 0..config.flip_flops {
        // Each flip-flop closes its cone near its own position, so the
        // feedback wire does not cross the die.
        let u = (i as f64 + 0.5) / config.flip_flops as f64;
        let d = if let Some(d) = unused_outputs.pop() {
            d
        } else if !deep.is_empty() {
            pick_near_capped(&nl, &deep, u, 0.02, 10, &mut rng)
        } else {
            levels[0][rng.gen_range(0..levels[0].len())]
        };
        d_nets.push(d);
    }

    // Clock distribution.
    let ck_nets = if config.clock_tree && config.flip_flops > 0 {
        build_clock_tree(&mut nl, clk, config.flip_flops, config.clock_leaf_fanout)?
    } else {
        vec![clk; config.flip_flops]
    };

    for (i, (&q, (&d, &ck))) in ff_q
        .iter()
        .zip(d_nets.iter().zip(ck_nets.iter()))
        .enumerate()
    {
        nl.add_gate(format!("ff{i}"), "DFFX1", vec![d, ck], q)?;
    }

    // Primary outputs: requested count from the deepest level, plus any
    // still-dangling driven nets (a net with no loads and no PO marker would
    // be dead logic).
    let last = levels.last().cloned().unwrap_or_default();
    for (k, &net) in last.iter().take(config.primary_outputs).enumerate() {
        let _ = k;
        nl.mark_primary_output(net);
    }
    let dangling: Vec<NetId> = (0..nl.net_count() as u32)
        .map(NetId)
        .filter(|&id| {
            let n = nl.net(id);
            n.loads.is_empty() && !n.is_primary_output && n.driver.is_some()
        })
        .collect();
    for id in dangling {
        nl.mark_primary_output(id);
    }

    Ok(nl)
}

/// Picks an element near normalised position `u` with uniform spread
/// `+-spread`; positions falling off either end are reflected back so edge
/// elements do not accumulate disproportionate fan-out.
fn pick_near(items: &[NetId], u: f64, spread: f64, rng: &mut StdRng) -> NetId {
    let n = items.len();
    debug_assert!(n > 0);
    let jitter = (rng.gen::<f64>() - 0.5) * 2.0 * spread;
    let mut x = u + jitter;
    if x < 0.0 {
        x = -x;
    }
    if x > 1.0 {
        x = 2.0 - x;
    }
    let idx = ((x.clamp(0.0, 1.0)) * n as f64).floor().min((n - 1) as f64) as usize;
    items[idx]
}

/// Like [`pick_near`] but re-draws (up to three times) when the candidate
/// net already has `max_fanout` loads — a stand-in for the fan-out
/// buffering a synthesis flow would perform.
fn pick_near_capped(
    nl: &Netlist,
    items: &[NetId],
    u: f64,
    spread: f64,
    max_fanout: usize,
    rng: &mut StdRng,
) -> NetId {
    let mut pick = pick_near(items, u, spread, rng);
    for widen in 1..4 {
        if nl.net(pick).loads.len() < max_fanout {
            break;
        }
        pick = pick_near(items, u, spread * (1.0 + widen as f64), rng);
    }
    pick
}

fn pick_cell(rng: &mut StdRng, total_weight: u32) -> (String, usize) {
    let mut roll = rng.gen_range(0..total_weight);
    for &(cell, arity, w) in CELL_MIX {
        if roll < w {
            return (cell.to_string(), arity);
        }
        roll -= w;
    }
    unreachable!("weights cover the roll range")
}

/// Builds a buffered clock tree from `clk` to `ffs` sinks; returns the leaf
/// net for each flip-flop.
fn build_clock_tree(
    nl: &mut Netlist,
    clk: NetId,
    ffs: usize,
    leaf_fanout: usize,
) -> Result<Vec<NetId>, NetlistError> {
    let leaf_fanout = leaf_fanout.max(1);
    let n_leaves = ffs.div_ceil(leaf_fanout);
    // Build the buffer levels top-down: root is driven by clk.
    let mut level_sizes = vec![n_leaves];
    while *level_sizes.last().expect("nonempty") > 1 {
        let next = level_sizes.last().expect("nonempty").div_ceil(8);
        level_sizes.push(next);
    }
    level_sizes.reverse(); // [1, ..., n_leaves]

    let mut buf_no = 0usize;
    let mut upper: Vec<NetId> = vec![clk];
    let mut nets_of_level: Vec<NetId> = Vec::new();
    for (li, &size) in level_sizes.iter().enumerate() {
        nets_of_level = Vec::with_capacity(size);
        let cell = if li + 1 == level_sizes.len() {
            "CLKBUFX4"
        } else {
            "CLKBUFX8"
        };
        for b in 0..size {
            let input = upper[b * upper.len() / size.max(1)];
            let out = nl.net_or_insert(&format!("ck_{li}_{b}"));
            nl.add_gate(format!("ckbuf{buf_no}"), cell, vec![input], out)?;
            nets_of_level.push(out);
            buf_no += 1;
        }
        upper = nets_of_level.clone();
    }
    let leaves = nets_of_level;
    Ok((0..ffs).map(|i| leaves[i / leaf_fanout]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn small_circuit_validates() {
        let nl = generate(&GeneratorConfig::small(1), &lib()).expect("generate");
        nl.validate(&lib()).expect("valid");
        assert_eq!(nl.flip_flop_count(), 16);
        assert!(nl.gate_count() >= 180 + 16);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GeneratorConfig::small(42), &lib()).expect("a");
        let b = generate(&GeneratorConfig::small(42), &lib()).expect("b");
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.net_count(), b.net_count());
        for (ga, gb) in a.gates().iter().zip(b.gates()) {
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::small(1), &lib()).expect("a");
        let b = generate(&GeneratorConfig::small(2), &lib()).expect("b");
        let same = a
            .gates()
            .iter()
            .zip(b.gates())
            .all(|(x, y)| x.cell == y.cell);
        assert!(!same, "different seeds should shuffle the cell mix");
    }

    #[test]
    fn depth_is_close_to_target() {
        let cfg = GeneratorConfig::medium(3);
        let nl = generate(&cfg, &lib()).expect("generate");
        let depth = nl.logic_depth(&lib()).expect("depth");
        // Composite cells may add a level or two via decomposition later;
        // at netlist granularity depth should be within one of the target.
        assert!(
            depth >= cfg.depth - 1 && depth <= cfg.depth + 1,
            "depth {depth} vs target {}",
            cfg.depth
        );
    }

    #[test]
    fn no_dangling_nets() {
        let nl = generate(&GeneratorConfig::small(5), &lib()).expect("generate");
        for net in nl.nets() {
            let dangling = net.driver.is_some() && net.loads.is_empty() && !net.is_primary_output;
            assert!(!dangling, "net {} dangles", net.name);
        }
    }

    #[test]
    fn clock_tree_reaches_all_ffs() {
        let nl = generate(&GeneratorConfig::small(9), &lib()).expect("generate");
        let library = lib();
        for gate in nl.gates() {
            if gate.cell == "DFFX1" {
                let ck = gate.inputs[1];
                let driver = nl.net(ck).driver.expect("ck driven by buffer");
                let cell = &nl.gate(driver).cell;
                assert!(cell.starts_with("CLKBUF"), "CK driven by {cell}");
            }
        }
        nl.validate(&library).expect("valid");
    }

    #[test]
    fn flat_clock_when_tree_disabled() {
        let mut cfg = GeneratorConfig::small(4);
        cfg.clock_tree = false;
        let nl = generate(&cfg, &lib()).expect("generate");
        let clk = nl.net_by_name("CLK").expect("clk");
        for gate in nl.gates() {
            if gate.cell == "DFFX1" {
                assert_eq!(gate.inputs[1], clk);
            }
        }
    }

    #[test]
    fn clock_tree_size_matches_formula() {
        assert_eq!(clock_tree_size(0, 16), 0);
        assert_eq!(clock_tree_size(1, 16), 1);
        assert_eq!(clock_tree_size(16, 16), 1);
        assert_eq!(clock_tree_size(17, 16), 2 + 1);
        // 1728 ffs / 16 = 108 leaves, 108/8 = 14, 14/8 = 2, 2/8 = 1.
        assert_eq!(clock_tree_size(1728, 16), 108 + 14 + 2 + 1);
    }

    #[test]
    fn iscas_presets_hit_cell_counts() {
        for (cfg, want) in [
            (GeneratorConfig::s35932_like(), 17_900),
            (GeneratorConfig::s38417_like(), 23_922),
            (GeneratorConfig::s38584_like(), 20_812),
        ] {
            assert_eq!(cfg.total_cells(), want, "{}", cfg.name);
        }
    }

    #[test]
    #[ignore = "slow: builds a full 17.9k-cell circuit"]
    fn s35932_like_builds_and_validates() {
        let cfg = GeneratorConfig::s35932_like();
        let nl = generate(&cfg, &lib()).expect("generate");
        nl.validate(&lib()).expect("valid");
        let total = nl.gate_count();
        assert!(
            (total as i64 - cfg.total_cells() as i64).unsigned_abs() <= 8,
            "total {total} vs {}",
            cfg.total_cells()
        );
    }
}
