//! ISCAS89 `.bench` reader and writer.
//!
//! The `.bench` format is the distribution format of the ISCAS85/89
//! benchmark suites the paper evaluates on:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G11 = NAND(G0, G5)
//! G14 = NOT(G0)
//! ```
//!
//! The reader maps each line onto library cells, decomposing gates wider
//! than the library supports into balanced trees (e.g. `AND(a,b,c,d,e)`
//! becomes a tree of `AND2`/`AND3` cells). `DFF` lines get their clock pin
//! connected to a global `CLK` net which is created as a primary input and
//! marked as the clock.
//!
//! ```
//! use xtalk_netlist::bench;
//! use xtalk_tech::{Library, Process};
//!
//! let lib = Library::c05um(&Process::c05um());
//! let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", &lib)?;
//! assert_eq!(nl.gate_count(), 1);
//! let text = bench::write(&nl, &lib)?;
//! assert!(text.contains("y = NOT(a)"));
//! # Ok::<(), xtalk_netlist::NetlistError>(())
//! ```

use std::fmt::Write as _;

use xtalk_tech::cell::Function;
use xtalk_tech::Library;

use crate::error::NetlistError;
use crate::netlist::{NetId, Netlist};

/// Name of the implicit clock net connected to `DFF` cells.
pub const CLOCK_NET: &str = "CLK";

/// A parse error with no column information.
fn perr(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        column: None,
        message: message.into(),
    }
}

/// A parse error pointing at the first occurrence of `token` in `raw`.
fn perr_at(line: usize, raw: &str, token: &str, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        column: raw.find(token).map(|i| raw[..i].chars().count() + 1),
        message: message.into(),
    }
}

/// Parses `.bench` text into a [`Netlist`], mapping gates onto `library`.
///
/// # Errors
///
/// [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnsupportedGate`] for unknown gate keywords, and any
/// structural error (e.g. multiple drivers) encountered while building.
pub fn parse(text: &str, library: &Library) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new("bench");
    let mut clock: Option<NetId> = None;
    let mut aux = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            // A leading "# name" comment names the design.
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if nl.name == "bench" && !rest.is_empty() && !rest.contains(' ') {
                    nl.name = rest.to_string();
                }
            }
            continue;
        }
        if let Some(name) = parse_io(line, "INPUT") {
            let id = nl.net_or_insert(name.map_err(|m| perr(lineno, m))?);
            nl.mark_primary_input(id);
            continue;
        }
        if let Some(name) = parse_io(line, "OUTPUT") {
            let id = nl.net_or_insert(name.map_err(|m| perr(lineno, m))?);
            nl.mark_primary_output(id);
            continue;
        }
        // name = FUNC(a, b, ...)
        let (lhs, rhs) = line
            .split_once('=')
            .ok_or_else(|| perr(lineno, "expected `name = FUNC(...)`"))?;
        let out_name = lhs.trim();
        if out_name.is_empty()
            || !out_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.[]".contains(c))
        {
            return Err(perr_at(
                lineno,
                raw,
                out_name,
                format!("`{out_name}` is not a valid net name"),
            ));
        }
        let rhs = rhs.trim();
        let open = rhs
            .find('(')
            .ok_or_else(|| perr_at(lineno, raw, rhs, "missing `(`"))?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::Parse {
                line: lineno,
                column: Some(raw.trim_end().chars().count().max(1)),
                message: "missing `)`".to_string(),
            });
        }
        let func_name = rhs[..open].trim().to_ascii_uppercase();
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if args.is_empty() {
            return Err(perr_at(lineno, raw, rhs, "gate with no inputs"));
        }
        let function = match func_name.as_str() {
            "NOT" | "INV" => Function::Inv,
            "BUF" | "BUFF" => Function::Buf,
            "AND" => Function::And,
            "NAND" => Function::Nand,
            "OR" => Function::Or,
            "NOR" => Function::Nor,
            "XOR" => Function::Xor,
            "XNOR" => Function::Xnor,
            "MUX" => Function::Mux2,
            "DFF" => Function::Dff,
            other => {
                return Err(NetlistError::UnsupportedGate {
                    line: lineno,
                    gate: other.to_string(),
                })
            }
        };

        let output = nl.net_or_insert(out_name);
        let mut input_ids: Vec<NetId> = args.iter().map(|a| nl.net_or_insert(a)).collect();

        if function == Function::Dff {
            let ck = *clock.get_or_insert_with(|| nl.net_or_insert(CLOCK_NET));
            nl.mark_primary_input(ck);
            nl.mark_clock(ck);
            input_ids.push(ck);
            let name = format!("ff_{out_name}");
            nl.add_gate(name, "DFFX1", input_ids, output)?;
            continue;
        }

        emit_function(
            &mut nl, library, function, input_ids, output, out_name, &mut aux, lineno,
        )?;
    }
    Ok(nl)
}

fn parse_io<'a>(line: &'a str, keyword: &str) -> Option<Result<&'a str, String>> {
    let rest = line.strip_prefix(keyword)?;
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .map(str::trim);
    Some(match inner {
        Some(name) if !name.is_empty() => Ok(name),
        _ => Err(format!("malformed {keyword} line")),
    })
}

/// Recursively emits gates computing `function(inputs) -> output`, reducing
/// wide gates with the library's narrower cells.
#[allow(clippy::too_many_arguments)]
fn emit_function(
    nl: &mut Netlist,
    library: &Library,
    function: Function,
    mut inputs: Vec<NetId>,
    output: NetId,
    out_name: &str,
    aux: &mut usize,
    lineno: usize,
) -> Result<(), NetlistError> {
    use Function::*;

    // Single-input AND/OR/etc. degenerate to a buffer (NAND/NOR to NOT).
    if inputs.len() == 1 {
        let (cell_fn, n) = match function {
            And | Or | Buf => (Buf, 1),
            Nand | Nor | Inv => (Inv, 1),
            Xor => (Buf, 1),
            Xnor => (Inv, 1),
            other => (other, 1),
        };
        let cell = library
            .cell_for_function(cell_fn, n)
            .ok_or(NetlistError::UnsupportedGate {
                line: lineno,
                gate: format!("{cell_fn:?}/1"),
            })?;
        let name = format!("g_{out_name}");
        nl.add_gate(name, cell.name.clone(), inputs, output)?;
        return Ok(());
    }

    // Reduce over-wide gates: pairwise-combine inputs with the monotone
    // base function until the remaining fan-in fits a library cell.
    let max_width = |f: Function| -> usize {
        (2..=8)
            .rev()
            .find(|&n| library.cell_for_function(f, n).is_some())
            .unwrap_or(0)
    };
    let (reduce_fn, final_fn) = match function {
        And | Nand => (And, function),
        Or | Nor => (Or, function),
        Xor | Xnor => (Xor, function),
        other => (other, other),
    };
    let cap = max_width(final_fn).max(2);
    while inputs.len() > cap {
        // Combine the first two inputs with a 2-input reducer.
        let cell =
            library
                .cell_for_function(reduce_fn, 2)
                .ok_or(NetlistError::UnsupportedGate {
                    line: lineno,
                    gate: format!("{reduce_fn:?}/2"),
                })?;
        let w = nl.net_or_insert(&format!("{out_name}_w{aux}"));
        let name = format!("g_{out_name}_r{aux}");
        *aux += 1;
        let a = inputs.remove(0);
        let b = inputs.remove(0);
        nl.add_gate(name, cell.name.clone(), vec![a, b], w)?;
        inputs.push(w);
        // Rotate so reduction stays balanced.
        inputs.rotate_right(1);
    }
    let cell =
        library
            .cell_for_function(final_fn, inputs.len())
            .ok_or(NetlistError::UnsupportedGate {
                line: lineno,
                gate: format!("{final_fn:?}/{}", inputs.len()),
            })?;
    let name = format!("g_{out_name}");
    nl.add_gate(name, cell.name.clone(), inputs, output)?;
    Ok(())
}

/// Writes a [`Netlist`] as `.bench` text.
///
/// Cells are written through their boolean [`Function`]; cells without a
/// `.bench` keyword (AOI21, OAI21, MUX2) are decomposed into equivalent
/// AND/OR/NOT lines on auxiliary nets, so the output is always valid
/// `.bench` and logically equivalent to the input.
///
/// # Errors
///
/// [`NetlistError::UnknownCell`] if a gate references a cell absent from
/// `library`.
pub fn write(netlist: &Netlist, library: &Library) -> Result<String, NetlistError> {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name);
    for pi in netlist.primary_inputs() {
        let net = netlist.net(pi);
        if net.is_clock {
            continue; // the clock pin is implicit in .bench DFFs
        }
        let _ = writeln!(out, "INPUT({})", net.name);
    }
    for po in netlist.primary_outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.net(po).name);
    }
    let mut aux = 0usize;
    for gate in netlist.gates() {
        let cell = library
            .cell(&gate.cell)
            .ok_or_else(|| NetlistError::UnknownCell {
                cell: gate.cell.clone(),
            })?;
        let name = |id: NetId| netlist.net(id).name.clone();
        let out_name = name(gate.output);
        let ins: Vec<String> = gate.inputs.iter().map(|&i| name(i)).collect();
        match cell.function {
            Function::Inv => {
                let _ = writeln!(out, "{out_name} = NOT({})", ins[0]);
            }
            Function::Buf => {
                let _ = writeln!(out, "{out_name} = BUFF({})", ins[0]);
            }
            Function::And => {
                let _ = writeln!(out, "{out_name} = AND({})", ins.join(", "));
            }
            Function::Or => {
                let _ = writeln!(out, "{out_name} = OR({})", ins.join(", "));
            }
            Function::Nand => {
                let _ = writeln!(out, "{out_name} = NAND({})", ins.join(", "));
            }
            Function::Nor => {
                let _ = writeln!(out, "{out_name} = NOR({})", ins.join(", "));
            }
            Function::Xor => {
                let _ = writeln!(out, "{out_name} = XOR({})", ins.join(", "));
            }
            Function::Xnor => {
                let _ = writeln!(out, "{out_name} = XNOR({})", ins.join(", "));
            }
            Function::Dff => {
                // Drop the clock pin: .bench DFFs have an implicit clock.
                let _ = writeln!(out, "{out_name} = DFF({})", ins[0]);
            }
            Function::Aoi21 => {
                let t = format!("{out_name}_bx{aux}");
                aux += 1;
                let _ = writeln!(out, "{t} = AND({}, {})", ins[0], ins[1]);
                let _ = writeln!(out, "{out_name} = NOR({t}, {})", ins[2]);
            }
            Function::Oai21 => {
                let t = format!("{out_name}_bx{aux}");
                aux += 1;
                let _ = writeln!(out, "{t} = OR({}, {})", ins[0], ins[1]);
                let _ = writeln!(out, "{out_name} = NAND({t}, {})", ins[2]);
            }
            Function::Mux2 => {
                let ns = format!("{out_name}_bx{aux}");
                let t0 = format!("{out_name}_bx{}", aux + 1);
                let t1 = format!("{out_name}_bx{}", aux + 2);
                aux += 3;
                let _ = writeln!(out, "{ns} = NOT({})", ins[2]);
                let _ = writeln!(out, "{t0} = AND({}, {ns})", ins[0]);
                let _ = writeln!(out, "{t1} = AND({}, {})", ins[1], ins[2]);
                let _ = writeln!(out, "{out_name} = OR({t0}, {t1})");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn parses_s27() {
        let nl = parse(data::S27_BENCH, &lib()).expect("s27 parses");
        assert_eq!(nl.name, "s27");
        assert_eq!(nl.flip_flop_count(), 3);
        // 4 PIs + implicit CLK.
        assert_eq!(nl.primary_inputs().count(), 5);
        assert_eq!(nl.primary_outputs().count(), 1);
        nl.validate(&lib()).expect("s27 is structurally valid");
    }

    #[test]
    fn parses_c17() {
        let nl = parse(data::C17_BENCH, &lib()).expect("c17 parses");
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(nl.flip_flop_count(), 0);
        nl.validate(&lib()).expect("c17 valid");
    }

    #[test]
    fn wide_and_gets_decomposed() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
                    y = AND(a, b, c, d, e)\n";
        let nl = parse(text, &lib()).expect("wide AND parses");
        nl.validate(&lib()).expect("valid");
        assert!(nl.gate_count() >= 2, "5-input AND must be decomposed");
        for g in nl.gates() {
            let c = lib().cell(&g.cell).map(|c| c.inputs.len()).unwrap_or(0);
            assert!(c <= 4);
        }
    }

    #[test]
    fn wide_nand_keeps_inversion() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n\
                    OUTPUT(y)\ny = NAND(a, b, c, d, e, f)\n";
        let nl = parse(text, &lib()).expect("wide NAND parses");
        nl.validate(&lib()).expect("valid");
        // The final gate driving y must be inverting.
        let y = nl.net_by_name("y").expect("net y");
        let driver = nl.net(y).driver.expect("driver");
        let cell = nl.gate(driver).cell.clone();
        assert!(cell.starts_with("NAND"), "got {cell}");
    }

    #[test]
    fn single_input_and_degenerates_to_buffer() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n";
        let nl = parse(text, &lib()).expect("parses");
        assert_eq!(nl.gate_count(), 1);
        assert!(nl.gates()[0].cell.starts_with("BUF"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse("INPUT(a)\ny := NOT(a)\n", &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
        let err = parse("INPUT()\n", &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
        let err = parse("y = NOT(a\n", &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        // Mid-line EOF: the closing `)` never arrives.
        let err = parse("INPUT(a)\ny = NAND(a, b", &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
        // EOF right after the `=`.
        let err = parse("INPUT(a)\ny =", &lib()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn parse_errors_carry_column_context() {
        let err = parse("INPUT(a)\n  y! = NOT(a)\n", &lib()).unwrap_err();
        match err {
            NetlistError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, Some(3), "column points at the bad net name");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse("INPUT(a)\ny = FROB(a)\n", &lib()).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnsupportedGate {
                line: 2,
                gate: "FROB".to_string()
            }
        );
    }

    #[test]
    fn roundtrip_s27_structure() {
        let library = lib();
        let nl = parse(data::S27_BENCH, &library).expect("parse");
        let text = write(&nl, &library).expect("write");
        let nl2 = parse(&text, &library).expect("reparse");
        assert_eq!(nl.gate_count(), nl2.gate_count());
        assert_eq!(nl.net_count(), nl2.net_count());
        assert_eq!(nl.flip_flop_count(), nl2.flip_flop_count());
        assert_eq!(nl.primary_inputs().count(), nl2.primary_inputs().count());
        // Cell histograms must agree exactly.
        assert_eq!(nl.cell_histogram(), nl2.cell_histogram());
    }

    #[test]
    fn clock_is_implicit_and_marked() {
        let nl = parse(data::S27_BENCH, &lib()).expect("parse");
        let clk = nl.net_by_name(CLOCK_NET).expect("clock net exists");
        assert!(nl.net(clk).is_clock);
        assert!(nl.net(clk).is_primary_input);
        // All DFF clock pins are on CLK.
        for gate in nl.gates() {
            if gate.cell.starts_with("DFF") {
                assert_eq!(*gate.inputs.last().expect("ck pin"), clk);
            }
        }
    }

    #[test]
    fn design_name_from_comment() {
        let nl = parse("# mydesign\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", &lib()).expect("parse");
        assert_eq!(nl.name, "mydesign");
    }
}
