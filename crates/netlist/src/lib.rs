//! Gate-level netlists and EDA interchange formats.
//!
//! This crate provides the circuit representation consumed by the layout,
//! simulation and timing crates of the `xtalk` analyzer:
//!
//! - [`netlist`]: the [`Netlist`] structure — named nets, library-cell
//!   gate instances, primary I/O, validation and levelization.
//! - [`mod@bench`]: a reader/writer for the ISCAS89 `.bench` format (the format
//!   of the paper's benchmark circuits), including decomposition of wide
//!   gates onto the cell library.
//! - [`verilog`]: a reader/writer for a structural Verilog subset.
//! - [`generator`]: a seeded synthetic sequential-circuit generator used to
//!   stand in for the paper's routed s35932 / s38417 / s38584 layouts (see
//!   `DESIGN.md` §4 for the substitution rationale), plus the clock buffer
//!   tree the paper adds.
//! - [`data`]: genuine small ISCAS netlists (`s27`, `c17`) embedded as text.
//!
//! # Example
//!
//! ```
//! use xtalk_netlist::bench;
//! use xtalk_tech::{Library, Process};
//!
//! let lib = Library::c05um(&Process::c05um());
//! let netlist = bench::parse(xtalk_netlist::data::S27_BENCH, &lib)?;
//! assert_eq!(netlist.name, "s27");
//! assert_eq!(netlist.flip_flop_count(), 3);
//! # Ok::<(), xtalk_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod data;
pub mod error;
pub mod generator;
pub mod netlist;
pub mod verilog;

pub use error::NetlistError;
pub use generator::GeneratorConfig;
pub use netlist::{Gate, GateId, Net, NetId, Netlist};
