//! SDF (Standard Delay Format) writer.
//!
//! Exports the per-instance cell delays and per-net interconnect delays of
//! a completed analysis as SDF 3.0 — the format gate-level simulators use
//! for back-annotation. Cell `IOPATH` delays come from the analysis's
//! worst-case waveforms (so an `xtalk` run in, say, iterative mode yields
//! an SDF that *includes* the crosstalk-aware delay bounds); interconnect
//! delays are the Elmore values of the extracted wires.

use std::fmt::Write as _;

use crate::engine::{Sta, StaError};
use crate::kernel::NodeState;
use crate::mode::AnalysisMode;

/// Writes the design's delays under `mode` as SDF 3.0 text.
///
/// # Errors
///
/// Propagates [`StaError`] from the underlying analysis.
pub fn write_sdf(sta: &Sta<'_>, mode: AnalysisMode) -> Result<String, StaError> {
    let mut pass_stats = Vec::new();
    let states = sta.compute_states(mode, &mut pass_stats)?;
    Ok(render(sta, &states))
}

fn render(sta: &Sta<'_>, states: &[NodeState]) -> String {
    let netlist = sta.netlist();
    let library = sta.library();
    let graph = sta.graph();
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", netlist.name);
    let _ = writeln!(out, "  (PROGRAM \"xtalk\")");
    let _ = writeln!(out, "  (TIMESCALE 1ns)");

    let arrival = |net: xtalk_netlist::NetId, rising: bool| -> Option<f64> {
        states[graph.net_node[net.index()].index()]
            .get(rising)
            .map(|i| i.crossing)
    };

    for gate in netlist.gates() {
        let Some(cell) = library.cell(&gate.cell) else {
            continue;
        };
        if cell.is_sequential() {
            continue; // clk-to-Q covered by the launch model, not IOPATHs
        }
        let mut paths = String::new();
        for (pin, &in_net) in gate.inputs.iter().enumerate() {
            // Arc polarity under the canonical sensitization.
            let sides = cell.sensitizing_side_values(pin, sta.process().vdd);
            let inverting = sides
                .as_ref()
                .and_then(|sv| cell.arc_inverting(pin, sv, sta.process().vdd))
                .unwrap_or(cell.function.is_inverting());
            let arc = |out_rising: bool| -> Option<f64> {
                let in_rising = if inverting { !out_rising } else { out_rising };
                let t_in = arrival(in_net, in_rising)?;
                let t_out = arrival(gate.output, out_rising)?;
                let d = t_out - t_in;
                (d.is_finite() && d >= 0.0).then_some(d)
            };
            let (rise, fall) = (arc(true), arc(false));
            if rise.is_none() && fall.is_none() {
                continue;
            }
            let fmt = |d: Option<f64>| match d {
                Some(d) => {
                    let ns = d * 1e9;
                    format!("({ns:.4}:{ns:.4}:{ns:.4})")
                }
                None => "()".to_string(),
            };
            let _ = writeln!(
                paths,
                "        (IOPATH {} {} {} {})",
                cell.inputs[pin],
                cell.output,
                fmt(rise),
                fmt(fall)
            );
        }
        if paths.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  (CELL");
        let _ = writeln!(out, "    (CELLTYPE \"{}\")", gate.cell);
        let _ = writeln!(out, "    (INSTANCE {})", gate.name);
        let _ = writeln!(out, "    (DELAY (ABSOLUTE");
        let _ = write!(out, "{paths}");
        let _ = writeln!(out, "    ))");
        let _ = writeln!(out, "  )");
    }

    // Interconnect delays: driver output to each sink pin (Elmore).
    let _ = writeln!(out, "  (CELL");
    let _ = writeln!(out, "    (CELLTYPE \"{}\")", netlist.name);
    let _ = writeln!(out, "    (INSTANCE)");
    let _ = writeln!(out, "    (DELAY (ABSOLUTE");
    for (ni, net) in netlist.nets().iter().enumerate() {
        let Some(driver) = net.driver else { continue };
        let np = &sta.parasitics().nets[ni];
        for (k, &(load, pin)) in net.loads.iter().enumerate() {
            let pin_c = library
                .cell(&netlist.gate(load).cell)
                .and_then(|c| c.input_cap.get(pin).copied())
                .unwrap_or(0.0);
            let d = np.elmore(k, pin_c) * 1e9;
            if d <= 0.0 {
                continue;
            }
            let sink_cell = library.cell(&netlist.gate(load).cell);
            let sink_pin = sink_cell
                .map(|c| c.inputs[pin].clone())
                .unwrap_or_else(|| format!("p{pin}"));
            let driver_cell = library.cell(&netlist.gate(driver).cell);
            let driver_pin = driver_cell
                .map(|c| c.output.clone())
                .unwrap_or_else(|| "Y".to_string());
            let _ = writeln!(
                out,
                "      (INTERCONNECT {}/{} {}/{} ({d:.4}:{d:.4}:{d:.4}))",
                netlist.gate(driver).name,
                driver_pin,
                netlist.gate(load).name,
                sink_pin
            );
        }
    }
    let _ = writeln!(out, "    ))");
    let _ = writeln!(out, "  )");
    let _ = writeln!(out, ")");
    out
}

/// One parsed IOPATH: `(instance, input pin, output pin, rise ns, fall ns)`
/// (a missing delay is `None`).
pub type IoPath = (String, String, String, Option<f64>, Option<f64>);

/// Parsed contents of an `xtalk`-style SDF file.
#[derive(Debug, Clone, Default)]
pub struct SdfDelays {
    /// Every IOPATH entry, in file order.
    pub iopaths: Vec<IoPath>,
    /// `(from port, to port, delay ns)` per INTERCONNECT.
    pub interconnects: Vec<(String, String, f64)>,
}

/// Errors parsing SDF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSdfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseSdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SDF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSdfError {}

/// Parses the subset of SDF emitted by [`write_sdf`]: `IOPATH` and
/// `INTERCONNECT` entries with `(min:typ:max)` triples (the typ value is
/// kept).
///
/// # Errors
///
/// [`ParseSdfError`] on malformed delay triples.
pub fn parse_sdf(text: &str) -> Result<SdfDelays, ParseSdfError> {
    let mut out = SdfDelays::default();
    let mut instance = String::new();
    let triple = |tok: &str, line: usize| -> Result<Option<f64>, ParseSdfError> {
        let inner = tok.trim().trim_start_matches('(').trim_end_matches(')');
        if inner.is_empty() {
            return Ok(None);
        }
        let mut parts = inner.split(':');
        let _min = parts.next();
        let typ = parts.next().ok_or_else(|| ParseSdfError {
            line,
            message: format!("bad delay triple `{tok}`"),
        })?;
        typ.trim()
            .parse::<f64>()
            .map(Some)
            .map_err(|_| ParseSdfError {
                line,
                message: format!("bad delay value `{typ}`"),
            })
    };
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("(INSTANCE") {
            instance = rest.trim().trim_end_matches(')').trim().to_string();
        } else if let Some(rest) = line.strip_prefix("(IOPATH ") {
            let rest = rest.trim_end_matches(')');
            let mut it = rest.split_whitespace();
            let (Some(a), Some(y)) = (it.next(), it.next()) else {
                return Err(ParseSdfError {
                    line: lineno,
                    message: "IOPATH needs two ports".to_string(),
                });
            };
            let rise = triple(it.next().unwrap_or("()"), lineno)?;
            let fall = triple(it.next().unwrap_or("()"), lineno)?;
            out.iopaths
                .push((instance.clone(), a.to_string(), y.to_string(), rise, fall));
        } else if let Some(rest) = line.strip_prefix("(INTERCONNECT ") {
            let rest = rest.trim_end_matches(')');
            let mut it = rest.split_whitespace();
            let (Some(from), Some(to), Some(d)) = (it.next(), it.next(), it.next()) else {
                return Err(ParseSdfError {
                    line: lineno,
                    message: "INTERCONNECT needs two ports and a delay".to_string(),
                });
            };
            let d = triple(d, lineno)?.ok_or_else(|| ParseSdfError {
                line: lineno,
                message: "INTERCONNECT needs a delay".to_string(),
            })?;
            out.interconnects
                .push((from.to_string(), to.to_string(), d));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::{extract, place, route};
    use xtalk_netlist::{bench, data, generator, generator::GeneratorConfig};
    use xtalk_tech::{Library, Process};

    fn sdf_for(text: Option<&str>) -> (String, xtalk_netlist::Netlist) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = match text {
            Some(t) => bench::parse(t, &library).expect("parse"),
            None => generator::generate(&GeneratorConfig::small(91), &library).expect("generate"),
        };
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
        let text = write_sdf(&sta, AnalysisMode::OneStep).expect("sdf");
        (text, netlist)
    }

    #[test]
    fn sdf_structure_well_formed() {
        let (sdf, nl) = sdf_for(Some(data::C17_BENCH));
        assert!(sdf.starts_with("(DELAYFILE"));
        assert!(sdf.contains("(SDFVERSION \"3.0\")"));
        assert!(sdf.contains("(DESIGN \"c17\")"));
        assert_eq!(sdf.matches('(').count(), sdf.matches(')').count());
        // One IOPATH per NAND input.
        assert_eq!(sdf.matches("(IOPATH").count(), 2 * nl.gate_count());
        assert!(sdf.contains("(INTERCONNECT"));
    }

    #[test]
    fn sdf_delays_positive_and_bounded() {
        let (sdf, _) = sdf_for(None);
        for line in sdf.lines().filter(|l| l.contains("(IOPATH")) {
            // Extract the first numeric triple.
            let nums: Vec<f64> = line
                .split(|c: char| "():".contains(c))
                .filter_map(|t| t.trim().parse::<f64>().ok())
                .collect();
            assert!(!nums.is_empty(), "no delays in {line}");
            for d in nums {
                assert!(
                    (0.0..50.0).contains(&d),
                    "implausible delay {d} ns in {line}"
                );
            }
        }
    }

    #[test]
    fn sdf_roundtrip_parses_every_entry() {
        let (sdf, _) = sdf_for(None);
        let parsed = parse_sdf(&sdf).expect("parse");
        assert_eq!(parsed.iopaths.len(), sdf.matches("(IOPATH").count());
        assert_eq!(
            parsed.interconnects.len(),
            sdf.matches("(INTERCONNECT").count()
        );
        for (inst, a, y, rise, fall) in &parsed.iopaths {
            assert!(!inst.is_empty());
            assert!(!a.is_empty() && !y.is_empty());
            assert!(rise.is_some() || fall.is_some());
            for d in [rise, fall].into_iter().flatten() {
                assert!(*d >= 0.0 && *d < 50.0);
            }
        }
        for (_, _, d) in &parsed.interconnects {
            // Sub-femtosecond Elmore values round to 0.0000 in the writer.
            assert!(*d >= 0.0);
        }
    }

    #[test]
    fn parse_sdf_rejects_garbage_triples() {
        let text = "(IOPATH A Y (x:y:z) ())";
        assert!(parse_sdf(text).is_err());
    }

    #[test]
    fn crosstalk_mode_sdf_slower_than_best_case() {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = generator::generate(&GeneratorConfig::small(92), &library).expect("generate");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        let sta = Sta::new(&netlist, &library, &process, &parasitics).expect("sta");
        let best = write_sdf(&sta, AnalysisMode::BestCase).expect("best");
        let worst = write_sdf(&sta, AnalysisMode::WorstCase).expect("worst");
        let sum = |sdf: &str| -> f64 {
            sdf.lines()
                .filter(|l| l.contains("(IOPATH"))
                .flat_map(|l| {
                    l.split(|c: char| "():".contains(c))
                        .filter_map(|t| t.trim().parse::<f64>().ok())
                        .collect::<Vec<_>>()
                })
                .sum()
        };
        assert!(
            sum(&worst) > sum(&best),
            "worst-case SDF must carry more delay"
        );
    }
}
