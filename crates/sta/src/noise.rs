//! Functional crosstalk noise (glitch) analysis.
//!
//! The paper's introduction points at the *functional* impact of coupling —
//! "e.g. the generation of glitches" (refs. \[1\], \[2\]) — before focusing on
//! the delay impact. This module provides the complementary static glitch
//! check: for every net it bounds the peak voltage excursion injected by
//! its aggressors while the victim is quiet, using the same capacitive
//! divider as the delay model:
//!
//! ```text
//! V_peak <= Vdd * sum(Cc_active) / C_total
//! ```
//!
//! Two pessimism levels are offered, mirroring the paper's §5 idea:
//!
//! - **static**: every aggressor may fire while the victim is quiet
//!   (analogous to "worst case");
//! - **window-aware**: an aggressor only counts if its last possible
//!   transition (either direction) happens *after* the victim's own
//!   quiescent time — before that, the victim is still being driven
//!   through a transition and the excursion is a delay problem, not a
//!   glitch problem. Quiet times come from a completed [`ModeReport`]
//!   (analogous to the one-step/iterative refinement).
//!
//! The divider bound is conservative: it ignores the victim driver's
//! restoring current during the glitch, exactly like the delay model
//! ignores it during the snap.

use xtalk_layout::Parasitics;
use xtalk_netlist::{NetId, Netlist};
use xtalk_tech::{Library, Process};

use crate::report::ModeReport;

/// Glitch exposure of one victim net.
#[derive(Debug, Clone)]
pub struct GlitchRecord {
    /// The victim net.
    pub net: NetId,
    /// Peak glitch bound, volts.
    pub v_peak: f64,
    /// Aggressors contributing (net, divider contribution in volts),
    /// strongest first.
    pub contributors: Vec<(NetId, f64)>,
    /// Total capacitance on the victim (ground + coupling + pins), farads.
    pub c_total: f64,
}

/// Result of a glitch analysis.
#[derive(Debug, Clone)]
pub struct GlitchReport {
    /// Victims whose peak glitch exceeds the threshold, worst first.
    pub victims: Vec<GlitchRecord>,
    /// The threshold used, volts.
    pub threshold: f64,
    /// Nets analysed.
    pub nets_checked: usize,
}

impl GlitchReport {
    /// Formats the report as a text table (top `n` rows).
    pub fn to_table(&self, netlist: &Netlist, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>12} {:>12}   worst aggressor",
            "Victim", "Vpeak [V]", "Ctotal [fF]", "aggressors"
        );
        for r in self.victims.iter().take(n) {
            let worst = r
                .contributors
                .first()
                .map(|&(net, v)| format!("{} ({:.2} V)", netlist.net(net).name, v))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:<20} {:>10.3} {:>12.1} {:>12}   {}",
                netlist.net(r.net).name,
                r.v_peak,
                r.c_total * 1e15,
                r.contributors.len(),
                worst
            );
        }
        let _ = writeln!(
            out,
            "{} victims above {:.2} V out of {} nets",
            self.victims.len(),
            self.threshold,
            self.nets_checked
        );
        out
    }
}

/// Bounds the peak coupled glitch on every net.
///
/// `windows` — when given, aggressors provably quiet before the victim's
/// own quiescent time are excluded (window-aware mode); pass `None` for the
/// fully static bound. `threshold` filters the report (a common sign-off
/// value is `0.3 * vdd`, roughly the static noise margin of a CMOS gate).
pub fn glitch_report(
    netlist: &Netlist,
    library: &Library,
    process: &Process,
    parasitics: &Parasitics,
    windows: Option<&ModeReport>,
    threshold: f64,
) -> GlitchReport {
    let vdd = process.vdd;
    // Pin capacitance per net (loads the victim, attenuating the divider).
    let mut pin_cap = vec![0.0f64; netlist.net_count()];
    for gate in netlist.gates() {
        if let Some(cell) = library.cell(&gate.cell) {
            for (pin, &net) in gate.inputs.iter().enumerate() {
                pin_cap[net.index()] += cell.input_cap.get(pin).copied().unwrap_or(0.0);
            }
        }
    }

    // Victim quiet time: the later of its two directions' quiescent times
    // (after that the net holds a stable value for the rest of the cycle).
    let victim_settled = |net: usize| -> Option<f64> {
        let report = windows?;
        let (fall, rise) = report.net_quiet.get(net).copied()?;
        match (fall, rise) {
            (Some(f), Some(r)) => Some(f.max(r)),
            (Some(f), None) => Some(f),
            (None, Some(r)) => Some(r),
            (None, None) => Some(0.0), // never driven through a transition
        }
    };
    // Aggressor's last possible activity in either direction.
    let aggressor_last = |net: usize| -> Option<f64> {
        let report = windows?;
        let (fall, rise) = report.net_quiet.get(net).copied()?;
        match (fall, rise) {
            (Some(f), Some(r)) => Some(f.max(r)),
            (Some(f), None) => Some(f),
            (None, Some(r)) => Some(r),
            (None, None) => None, // aggressor never switches at all
        }
    };

    let mut victims = Vec::new();
    let mut checked = 0usize;
    for (ni, np) in parasitics.nets.iter().enumerate() {
        if np.couplings.is_empty() {
            continue;
        }
        checked += 1;
        let c_total = np.cwire + pin_cap[ni] + np.total_coupling();
        if c_total <= 0.0 {
            continue;
        }
        let settled = victim_settled(ni);
        let mut contributors: Vec<(NetId, f64)> = np
            .couplings
            .iter()
            .filter(|cc| {
                match (windows.is_some(), settled, aggressor_last(cc.other.index())) {
                    (false, _, _) => true,
                    // Window-aware: aggressor must still be able to switch
                    // after the victim has settled.
                    (true, Some(t_victim), Some(t_agg)) => t_agg > t_victim,
                    (true, Some(_), None) => false, // aggressor never switches
                    (true, None, _) => true,        // no window info: worst case
                }
            })
            .map(|cc| (cc.other, vdd * cc.c / c_total))
            .collect();
        contributors.sort_by(|a, b| b.1.total_cmp(&a.1));
        let v_peak: f64 = contributors.iter().map(|&(_, v)| v).sum();
        if v_peak >= threshold {
            victims.push(GlitchRecord {
                net: NetId(ni as u32),
                v_peak,
                contributors,
                c_total,
            });
        }
    }
    victims.sort_by(|a, b| b.v_peak.total_cmp(&a.v_peak));
    GlitchReport {
        victims,
        threshold,
        nets_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisMode, Sta};
    use xtalk_netlist::generator::{self, GeneratorConfig};
    use xtalk_tech::{Library, Process};

    struct Fix {
        process: Process,
        library: Library,
        netlist: Netlist,
        parasitics: Parasitics,
    }

    fn fix(seed: u64) -> Fix {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = generator::generate(&GeneratorConfig::small(seed), &library).expect("gen");
        let placement = xtalk_layout::place::place(&netlist, &library, &process);
        let routes = xtalk_layout::route::route(&netlist, &placement, &process);
        let parasitics = xtalk_layout::extract::extract(&netlist, &routes, &process);
        Fix {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    #[test]
    fn static_report_finds_coupled_victims() {
        let f = fix(61);
        let r = glitch_report(&f.netlist, &f.library, &f.process, &f.parasitics, None, 0.0);
        assert!(r.nets_checked > 0);
        assert!(!r.victims.is_empty(), "every coupled net has some exposure");
        // Sorted worst-first, physical bounds respected.
        for w in r.victims.windows(2) {
            assert!(w[0].v_peak >= w[1].v_peak);
        }
        for v in &r.victims {
            assert!(v.v_peak > 0.0 && v.v_peak < f.process.vdd);
            let sum: f64 = v.contributors.iter().map(|&(_, x)| x).sum();
            assert!((sum - v.v_peak).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_filters() {
        let f = fix(62);
        let all = glitch_report(&f.netlist, &f.library, &f.process, &f.parasitics, None, 0.0);
        let some = glitch_report(
            &f.netlist,
            &f.library,
            &f.process,
            &f.parasitics,
            None,
            0.3 * f.process.vdd,
        );
        assert!(some.victims.len() <= all.victims.len());
        for v in &some.victims {
            assert!(v.v_peak >= 0.3 * f.process.vdd);
        }
    }

    #[test]
    fn window_aware_is_no_worse_than_static() {
        let f = fix(63);
        let sta = Sta::new(&f.netlist, &f.library, &f.process, &f.parasitics).expect("sta");
        let report = sta.analyze(AnalysisMode::OneStep).expect("analysis");
        let statics = glitch_report(&f.netlist, &f.library, &f.process, &f.parasitics, None, 0.0);
        let windowed = glitch_report(
            &f.netlist,
            &f.library,
            &f.process,
            &f.parasitics,
            Some(&report),
            0.0,
        );
        // Per net, the windowed bound never exceeds the static one.
        for w in &windowed.victims {
            let s = statics
                .victims
                .iter()
                .find(|v| v.net == w.net)
                .expect("static covers every windowed victim");
            assert!(w.v_peak <= s.v_peak + 1e-12);
        }
    }

    #[test]
    fn table_renders() {
        let f = fix(64);
        let r = glitch_report(&f.netlist, &f.library, &f.process, &f.parasitics, None, 0.0);
        let t = r.to_table(&f.netlist, 5);
        assert!(t.contains("Victim"));
        assert!(t.contains("victims above"));
    }
}
