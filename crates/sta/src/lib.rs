//! Crosstalk-aware static timing analysis.
//!
//! The primary contribution of the reproduced paper (Ringe, Lindenkreuz &
//! Barke, DATE 2000): a waveform-based, transistor-level static timing
//! analyzer for synchronous circuits that accounts for the delay impact of
//! capacitive coupling between adjacent wires.
//!
//! The analyzer offers the paper's five analyses ([`AnalysisMode`]):
//!
//! | Mode | Coupling caps | Paper §6 row |
//! |------|---------------|--------------|
//! | [`AnalysisMode::BestCase`] | grounded, face value | "Best case" |
//! | [`AnalysisMode::StaticDoubled`] | grounded, doubled | "Static doubled" |
//! | [`AnalysisMode::WorstCase`] | all active (three-phase model) | "Worst case" |
//! | [`AnalysisMode::OneStep`] | active only if the aggressor can still be busy (§5.1) | "One step" |
//! | [`AnalysisMode::Iterative`] | one-step refined to a fixpoint (§5.2), optionally with the Esperance speed-up | "Iterative" |
//!
//! # Example
//!
//! ```
//! use xtalk_layout::{extract, place, route};
//! use xtalk_netlist::{bench, data};
//! use xtalk_sta::{AnalysisMode, Sta};
//! use xtalk_tech::{Library, Process};
//!
//! let process = Process::c05um();
//! let lib = Library::c05um(&process);
//! let netlist = bench::parse(data::S27_BENCH, &lib)?;
//! let placement = place::place(&netlist, &lib, &process);
//! let routes = route::route(&netlist, &placement, &process);
//! let parasitics = extract::extract(&netlist, &routes, &process);
//!
//! let sta = Sta::new(&netlist, &lib, &process, &parasitics)?;
//! let best = sta.analyze(AnalysisMode::BestCase)?;
//! let worst = sta.analyze(AnalysisMode::WorstCase)?;
//! assert!(best.longest_delay <= worst.longest_delay);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the persistent worker pool contains the
// crate's single audited `#[allow(unsafe_code)]` (a lifetime erasure with a
// run-to-completion proof — see `exec::pool`); everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod exec;
#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;
pub mod graph;
pub mod incremental;
pub mod kernel;
pub mod mode;
pub mod noise;
pub mod policy;
pub mod report;
pub mod sdf;
pub mod serve;

pub use diag::{worst_severity, Diagnostic, FaultClass, Severity};
pub use engine::{Sta, StaError};
pub use exec::{CacheAdmission, CacheStats, ConfigError, ExecConfig};
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{Fault, FaultPlan};
pub use incremental::{AnalyzeStats, Checkpoint, Edit, EditError, EditOutcome, IncrementalSta};
pub use mode::AnalysisMode;
pub use noise::{glitch_report, GlitchRecord, GlitchReport};
pub use report::{ModeReport, PassStat, PathStep};
pub use sdf::{parse_sdf, write_sdf};
