//! Dependency-counter wavefront scheduling with work-stealing deques.
//!
//! The level-barrier schedule the engine used before ran every dependency
//! level behind a full join: one slow Newton solve stalled the entire next
//! level. The wavefront scheduler replaces the barrier with per-stage
//! atomic dependency counters — a stage becomes runnable the instant its
//! last prerequisite finishes — and per-worker deques with stealing, so an
//! idle worker takes work from a loaded one instead of waiting.
//!
//! Determinism does not depend on execution order: every timing node has
//! exactly one producer stage, each task commits only its own output (the
//! degenerate — and therefore free — case of stage-index-ordered commits),
//! and merges *within* a stage are applied in the fixed arc order. See the
//! scheduler notes in `DESIGN.md`.
//!
//! The dependency edges are the timing arcs plus, for the one-step coupling
//! policy only, victim → aggressor-producer edges for aggressors at a
//! strictly lower dependency level: those are exactly the aggressor states
//! the serial schedule guarantees to be final when the victim is evaluated
//! (the engine's static calculated-level rule, [`TimingGraph`]'s
//! `node_calc_level`). Aggressors at the same or a higher level are never
//! read — the policy pessimistically treats them as active — so they need
//! no edge, and the graph of arcs plus lower-level edges stays acyclic.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::graph::{Csr, StageId, TimingGraph};

use super::pool::WorkerPool;

/// The static dependency structure of one pass.
pub(crate) struct DepGraph {
    /// Initial unresolved-prerequisite count per stage.
    base: Vec<u32>,
    /// Stages unblocked by each stage's completion (deduplicated), in the
    /// same CSR layout as the timing graph's adjacency.
    succs: Csr<u32>,
}

impl DepGraph {
    /// Builds the dependency graph of one pass. `aggressor_aware` adds the
    /// one-step policy's extra edges (see the module docs).
    pub(crate) fn build(graph: &TimingGraph, aggressor_aware: bool) -> DepGraph {
        let n = graph.stages.len();
        let mut base = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        // `stamp[p] == s` marks producer `p` already recorded for stage `s`,
        // deduplicating without a per-stage set.
        let mut stamp: Vec<u32> = vec![u32::MAX; n];
        for (si, stage) in graph.stages.iter().enumerate() {
            let mut add = |p: usize, stamp: &mut Vec<u32>| {
                if stamp[p] != si as u32 {
                    stamp[p] = si as u32;
                    base[si] += 1;
                    succs[p].push(si as u32);
                }
            };
            for input in &stage.inputs {
                if let Some(p) = graph.producer_of(input.node) {
                    add(p.index(), &mut stamp);
                }
            }
            if aggressor_aware {
                let level = graph.stage_level[si];
                for &(other, _) in graph.couplings_of(StageId(si as u32)) {
                    let node = graph.net_node[other.index()];
                    if let Some(p) = graph.producer_of(node) {
                        if graph.stage_level[p.index()] < level {
                            add(p.index(), &mut stamp);
                        }
                    }
                }
            }
        }
        DepGraph {
            base,
            succs: Csr::from_rows(succs),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.base.len()
    }
}

/// Per-worker work-stealing deques: owners push/pop LIFO for locality,
/// thieves steal FIFO from the opposite end.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<u32>>>,
}

fn lock(q: &Mutex<VecDeque<u32>>) -> MutexGuard<'_, VecDeque<u32>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

impl StealQueues {
    fn new(workers: usize) -> Self {
        StealQueues {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    fn push(&self, worker: usize, item: u32) {
        lock(&self.queues[worker]).push_back(item);
    }

    /// Pops from the worker's own deque, stealing from the others when it
    /// is empty.
    fn pop(&self, worker: usize) -> Option<u32> {
        if let Some(item) = lock(&self.queues[worker]).pop_back() {
            return Some(item);
        }
        let n = self.queues.len();
        for offset in 1..n {
            if let Some(item) = lock(&self.queues[(worker + offset) % n]).pop_front() {
                return Some(item);
            }
        }
        None
    }
}

/// The first panic payload captured across workers, re-raised after drain.
type PanicSlot = Mutex<Option<Box<dyn std::any::Any + Send>>>;

fn record_panic(slot: &PanicSlot, payload: Box<dyn std::any::Any + Send>) {
    let mut first = slot.lock().unwrap_or_else(PoisonError::into_inner);
    if first.is_none() {
        *first = Some(payload);
    }
}

/// Runs `task(stage)` exactly once for every stage of `deps`, respecting
/// the dependency edges, across all workers of `pool`.
///
/// A panicking task is contained at the stage boundary: its successors are
/// still released and the drain counter still decremented — otherwise every
/// other worker would spin forever in the yield loop waiting for a
/// completion that never comes. The first panic payload is re-raised on the
/// calling thread once the wavefront has drained. (The engine converts
/// stage panics into diagnostics *inside* the task, so this backstop only
/// fires for bugs in the commit path itself.)
pub(crate) fn execute(pool: &WorkerPool, deps: &DepGraph, task: &(dyn Fn(usize) + Sync)) {
    let n = deps.len();
    if n == 0 {
        return;
    }
    let workers = pool.threads();
    let queues = StealQueues::new(workers);
    let pending: Vec<AtomicU32> = deps.base.iter().map(|&c| AtomicU32::new(c)).collect();
    let mut seeded = 0usize;
    for si in 0..n {
        if deps.base[si] == 0 {
            queues.push(seeded % workers, si as u32);
            seeded += 1;
        }
    }
    let remaining = AtomicUsize::new(n);
    let first_panic: PanicSlot = Mutex::new(None);
    pool.run(&|worker| loop {
        if let Some(si) = queues.pop(worker) {
            let si = si as usize;
            let outcome = catch_unwind(AssertUnwindSafe(|| task(si)));
            for &succ in deps.succs.row(si) {
                if pending[succ as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    queues.push(worker, succ);
                }
            }
            if let Err(payload) = outcome {
                record_panic(&first_panic, payload);
            }
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                return;
            }
        } else if remaining.load(Ordering::Acquire) == 0 {
            return;
        } else {
            // Another worker holds the frontier; let it run.
            std::thread::yield_now();
        }
    });
    debug_assert_eq!(remaining.load(Ordering::SeqCst), 0, "wavefront drained");
    if let Some(payload) = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
}

/// Runs `task(index)` for every `index < count` across all workers of
/// `pool` — the dependency-free fan-out used for batch stage sets whose
/// readiness the caller already guarantees (a dirty level of the
/// incremental sweep).
pub(crate) fn execute_flat(pool: &WorkerPool, count: usize, task: &(dyn Fn(usize) + Sync)) {
    let next = AtomicUsize::new(0);
    let first_panic: PanicSlot = Mutex::new(None);
    pool.run(&|_worker| loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= count {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(index))) {
            record_panic(&first_panic, payload);
        }
    });
    if let Some(payload) = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A synthetic diamond-chain dependency graph exercises ordering.
    fn chain_deps(n: usize) -> DepGraph {
        // Stage i depends on i-1; succs mirror that.
        let mut base = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            base[i] = 1;
            succs[i - 1].push(i as u32);
        }
        DepGraph {
            base,
            succs: Csr::from_rows(succs),
        }
    }

    #[test]
    fn wavefront_respects_dependencies() {
        let pool = WorkerPool::new(4);
        let n = 500;
        let deps = chain_deps(n);
        let order = Mutex::new(Vec::new());
        execute(&pool, &deps, &|si| {
            order.lock().expect("order").push(si);
        });
        let order = order.into_inner().expect("order");
        assert_eq!(order.len(), n);
        // A pure chain admits exactly one legal order.
        for (i, &si) in order.iter().enumerate() {
            assert_eq!(si, i);
        }
    }

    #[test]
    fn flat_execution_covers_every_index_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        execute_flat(&pool, hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn panicking_task_does_not_deadlock_the_wavefront() {
        // Before containment, a panic inside a task left its successors'
        // counters undecremented: the chain behind the panicking stage
        // never became runnable and every worker spun forever. Now the
        // wavefront drains completely and the panic surfaces afterwards.
        let pool = WorkerPool::new(3);
        let n = 200;
        let deps = chain_deps(n);
        let ran: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(&pool, &deps, &|si| {
                ran[si].fetch_add(1, Ordering::SeqCst);
                if si == 17 {
                    panic!("injected stage panic");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate after the drain");
        assert!(
            ran.iter().all(|h| h.load(Ordering::SeqCst) == 1),
            "every stage (including those behind the panicking one) ran once"
        );
        // The pool survives for the next pass.
        let hits = AtomicUsize::new(0);
        execute_flat(&pool, 50, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_flat_task_still_covers_all_indices() {
        let pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute_flat(&pool, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
                if i == 3 {
                    panic!("injected flat panic");
                }
            });
        }));
        assert!(caught.is_err());
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let pool = WorkerPool::new(2);
        let deps = chain_deps(0);
        execute(&pool, &deps, &|_| panic!("no stages to run"));
        execute_flat(&pool, 0, &|_| panic!("no work"));
    }
}
