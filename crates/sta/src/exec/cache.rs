//! The cross-pass stage-solve cache.
//!
//! A transistor-level stage solve is a pure function of the cell stage
//! definition, the switching slot, the input waveform, the sensitizing side
//! values and the driven load (grounded cap + coupling caps with their
//! treatment). The cache memoizes solves under a key built from exactly
//! those inputs, so any two solver invocations with bit-identical inputs —
//! across refinement passes, across [`crate::AnalysisMode`]s, across ECO
//! graph rebuilds — share one Newton integration.
//!
//! Keys are **exact-match**: waveform points and capacitances enter as
//! canonical IEEE-754 bit patterns ([`xtalk_wave::canon_bits`]; the only
//! normalization is `-0.0 == +0.0`). A hit therefore returns the identical
//! `Waveform` the solver would have produced, and the cache can never
//! change a reported arrival. Side values are *not* part of the key: they
//! are a pure function of `(cell, stage, slot, output direction, earliest)`
//! and the process, all of which the key carries.
//!
//! The table is sharded by a stable FNV hash of the key so concurrent
//! wavefront workers rarely contend on one mutex. Each shard holds at most
//! `capacity / SHARDS` entries; an insert into a full shard clears it
//! (counted as evictions) — simple, and harmless because the cache is only
//! an accelerator.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use xtalk_wave::signature::{canon_bits, StableHasher};
use xtalk_wave::stage::{CouplingMode, Load};
use xtalk_wave::Waveform;

/// Shard count; a power of two keeps the index a mask.
const SHARDS: usize = 16;

/// Which stage solves the cache stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheAdmission {
    /// Every solve is stored (the PR2 behaviour). Maximizes warm-run hit
    /// rates but pays key-construction + insert overhead on every cold
    /// miss — measurably slower than no cache at s38417 scale, where the
    /// hits land on cheap shallow stages (DESIGN D7).
    All,
    /// Cost-aware admission (the default): a solve is stored only once its
    /// signature has proven expensive — Newton-iteration cost at or above
    /// twice the running mean (after a 100-solve warm-up that admits
    /// everything to seed the estimate). The bulk of cold-run solves never
    /// pay the key construction, checksum and insert (on a cold single-shot
    /// run the keyed table gets no lookups at all — the per-stage memo
    /// answers intra-run reuse first — so every insert is speculative),
    /// while the expensive deep solves whose re-solve cost dwarfs the
    /// bookkeeping stay cached for ECO rebuilds and warm re-analysis.
    #[default]
    Cost,
}

/// Hit/miss/evict counters of the stage-solve cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a Newton integration.
    pub misses: u64,
    /// Entries discarded by capacity eviction.
    pub evictions: u64,
    /// Entries evicted because they failed the integrity check on lookup
    /// (stored checksum no longer matched the stored waveform).
    pub integrity_evictions: u64,
    /// Solves admitted for storage by the admission policy.
    pub admitted: u64,
    /// Solves the cost-aware policy declined to store.
    pub skipped: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is idle).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Exact-match identity of one stage solve.
///
/// Fields are `pub(crate)` so the on-disk solve store (`crate::serve`)
/// can serialize and rebuild keys without widening the public API.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SolveKey {
    /// Library cell name: the stable identity of the stage definition
    /// (stage index within the cell below). Survives ECO graph rebuilds.
    pub(crate) cell: String,
    /// Stage index within the cell.
    pub(crate) stage: u32,
    /// Switching input slot.
    pub(crate) slot: u32,
    /// Bit 0: output rising; bit 1: earliest (min-delay side values).
    pub(crate) flags: u8,
    /// Canonical bit pairs of the input waveform's points.
    pub(crate) wave: Vec<(u64, u64)>,
    /// Canonical bits of the grounded load capacitance.
    pub(crate) cground: u64,
    /// Canonical bits + treatment of each coupling cap, in load order
    /// (order matters: the solver breaks snap-time ties by position).
    pub(crate) couplings: Vec<(u64, u8)>,
}

pub(crate) fn mode_byte(mode: CouplingMode) -> u8 {
    match mode {
        CouplingMode::Grounded => 0,
        CouplingMode::Doubled => 1,
        CouplingMode::Active => 2,
        CouplingMode::Assisting => 3,
    }
}

impl SolveKey {
    /// Builds the exact-match key, or `None` when a load value is not
    /// finite. NaN capacitances have no canonical encoding (distinct
    /// payloads hash apart), so such keys would never hit and silently
    /// bloat the shard — and the solve they memoize is garbage anyway.
    /// Callers surface a diagnostic instead of inserting.
    pub(crate) fn new(
        cell: &str,
        stage: usize,
        slot: usize,
        out_rising: bool,
        earliest: bool,
        in_wave: &Waveform,
        load: &Load,
    ) -> Option<Self> {
        if !load.cground.is_finite() || load.couplings.iter().any(|c| !c.c.is_finite()) {
            return None;
        }
        Some(SolveKey {
            cell: cell.to_string(),
            stage: stage as u32,
            slot: slot as u32,
            flags: u8::from(out_rising) | (u8::from(earliest) << 1),
            wave: in_wave.canon_points(),
            cground: canon_bits(load.cground),
            couplings: load
                .couplings
                .iter()
                .map(|c| (canon_bits(c.c), mode_byte(c.mode)))
                .collect(),
        })
    }

    /// Rebuilds a key from its serialized parts (the on-disk solve store's
    /// deserialization path). The parts are trusted to be canonical — they
    /// were produced by [`SolveKey::new`] before being written, and the
    /// store's checksum guards the bytes in between.
    pub(crate) fn from_parts(
        cell: String,
        stage: u32,
        slot: u32,
        flags: u8,
        wave: Vec<(u64, u64)>,
        cground: u64,
        couplings: Vec<(u64, u8)>,
    ) -> Self {
        SolveKey {
            cell,
            stage,
            slot,
            flags,
            wave,
            cground,
            couplings,
        }
    }

    /// The admission signature of this key — bit-identical to what
    /// [`admission_sig`] produces for the original solver inputs, so a key
    /// replayed from the on-disk store can re-earn its admission-set entry
    /// (under cost-aware admission, lookups only happen for admitted
    /// signatures).
    pub(crate) fn admission_sig(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_bytes(self.cell.as_bytes());
        h.write_u64(u64::from(self.stage) << 32 | u64::from(self.slot));
        h.write_u64(u64::from(self.flags));
        for &(t, v) in &self.wave {
            h.write_u64(t);
            h.write_u64(v);
        }
        h.write_u64(self.cground);
        for &(c, mode) in &self.couplings {
            h.write_u64(c);
            h.write_u64(u64::from(mode));
        }
        h.finish()
    }

    /// Stable shard hash (FNV-1a; independent of the std `HashMap` seed).
    fn shard(&self) -> usize {
        let mut h = StableHasher::new();
        h.write_bytes(self.cell.as_bytes());
        h.write_u64(u64::from(self.stage) << 32 | u64::from(self.slot));
        h.write_u64(u64::from(self.flags));
        for &(t, v) in &self.wave {
            h.write_u64(t);
            h.write_u64(v);
        }
        h.write_u64(self.cground);
        (h.finish() as usize) & (SHARDS - 1)
    }
}

/// Streaming FNV-1a signature of a solve's identity, hashed directly over
/// the borrowed inputs — no allocation, unlike [`SolveKey::new`] which
/// clones the cell name and waveform points. The cost-aware admission
/// gatekeeper runs on *every* solve, so it must be this cheap; the exact
/// [`SolveKey`] is only built for solves that pass the gate.
///
/// `None` mirrors [`SolveKey::new`]: a non-finite load has no canonical
/// encoding and is never cached. A 64-bit collision merely lets an
/// unproven solve through the gate early — the exact-match key still
/// guards the actual table, so results are unaffected.
pub(crate) fn admission_sig(
    cell: &str,
    stage: usize,
    slot: usize,
    out_rising: bool,
    earliest: bool,
    in_wave: &Waveform,
    load: &Load,
) -> Option<u64> {
    if !load.cground.is_finite() || load.couplings.iter().any(|c| !c.c.is_finite()) {
        return None;
    }
    let mut h = StableHasher::new();
    h.write_bytes(cell.as_bytes());
    h.write_u64((stage as u64) << 32 | slot as u64);
    h.write_u64(u64::from(u8::from(out_rising) | (u8::from(earliest) << 1)));
    for &(t, v) in in_wave.points() {
        h.write_u64(canon_bits(t));
        h.write_u64(canon_bits(v));
    }
    h.write_u64(canon_bits(load.cground));
    for c in &load.couplings {
        h.write_u64(canon_bits(c.c));
        h.write_u64(u64::from(mode_byte(c.mode)));
    }
    Some(h.finish())
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Lookup {
    /// An entry was found and passed its integrity check.
    Hit(Waveform),
    /// No entry for the key.
    Miss,
    /// An entry was found but its stored checksum no longer matched its
    /// waveform; it was evicted rather than served. The caller must
    /// re-solve (exact result, zero accuracy impact) and may report the
    /// corruption.
    Corrupt,
}

/// The sharded concurrent memo table. Each entry carries the FNV signature
/// of its waveform taken at insert time; a lookup re-derives the signature
/// and evicts on mismatch, so a torn or corrupted entry is never served.
pub(crate) struct SolveCache {
    shards: Vec<Mutex<HashMap<SolveKey, (u64, Waveform)>>>,
    /// Entry cap per shard; 0 disables the cache entirely.
    shard_capacity: usize,
    admission: CacheAdmission,
    /// Signatures proven worth caching (cost-aware mode only), sharded by
    /// the low signature bits to keep worker contention negligible.
    admitted: Vec<Mutex<HashSet<u64>>>,
    /// Running Newton-iteration cost statistics driving the adaptive
    /// admission threshold.
    cost_sum: AtomicU64,
    cost_count: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    integrity_evictions: AtomicU64,
    admitted_count: AtomicU64,
    skipped: AtomicU64,
    /// Write-behind journal for the on-disk solve store: when enabled,
    /// every [`SolveCache::put`] also appends a clone here, and the serve
    /// daemon drains the journal to the store after each request. The
    /// atomic flag keeps the disabled (batch CLI) hot path lock-free.
    journal_on: std::sync::atomic::AtomicBool,
    journal: Mutex<Vec<(SolveKey, Waveform)>>,
}

/// Solves admitted unconditionally while the running cost mean warms up.
const ADMISSION_WARMUP: u64 = 100;

impl SolveCache {
    /// Builds the cache. `enabled = false` or `capacity = 0` yields a
    /// disabled cache: every lookup misses without touching a shard.
    pub(crate) fn new(enabled: bool, capacity: usize, admission: CacheAdmission) -> Self {
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: if enabled {
                capacity.div_ceil(SHARDS)
            } else {
                0
            },
            admission,
            admitted: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
            cost_sum: AtomicU64::new(0),
            cost_count: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            integrity_evictions: AtomicU64::new(0),
            admitted_count: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            journal_on: std::sync::atomic::AtomicBool::new(false),
            journal: Mutex::new(Vec::new()),
        }
    }

    /// Turns on the write-behind journal: every subsequent insert is also
    /// recorded for [`SolveCache::drain_journal`]. Idempotent.
    pub(crate) fn enable_journal(&self) {
        self.journal_on.store(true, Ordering::Release);
    }

    /// Takes every journaled insert since the last drain, in insert order.
    pub(crate) fn drain_journal(&self) -> Vec<(SolveKey, Waveform)> {
        std::mem::take(&mut *lock(&self.journal))
    }

    /// Seeds an entry replayed from the on-disk store: marks its signature
    /// admitted (so cost-aware lookups actually probe it) and inserts it
    /// without touching the journal or the admission counters. The entry
    /// is exact-match-keyed and checksummed like any live insert, so a
    /// corrupt or stale preload can never change a reported arrival.
    pub(crate) fn preload(&self, key: SolveKey, wave: Waveform) {
        if !self.enabled() {
            return;
        }
        let sig = key.admission_sig();
        if self.admission == CacheAdmission::Cost {
            lock(&self.admitted[(sig as usize) & (SHARDS - 1)]).insert(sig);
        }
        let mut shard = lock(&self.shards[key.shard()]);
        if shard.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        let checksum = wave.signature();
        shard.insert(key, (checksum, wave));
    }

    pub(crate) fn enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    /// Whether a lookup for this signature could possibly hit — i.e.
    /// whether building the exact [`SolveKey`] is worth it. Under
    /// [`CacheAdmission::All`] every solve is stored so every lookup is
    /// worth it; under cost-aware admission only signatures that earned
    /// admission can have entries.
    pub(crate) fn wants(&self, sig: u64) -> bool {
        match self.admission {
            CacheAdmission::All => true,
            CacheAdmission::Cost => {
                lock(&self.admitted[(sig as usize) & (SHARDS - 1)]).contains(&sig)
            }
        }
    }

    /// Records the cost of a fresh solve and decides whether to store it.
    /// `cost` is the solve's Newton-iteration count (its dominant work
    /// term). Under cost-aware admission a solve is stored when its cost
    /// reaches twice the running mean — only the expensive tail earns an
    /// entry, because the typical solve's hit saves less than the key
    /// construction, checksum and insert/evict churn it costs (DESIGN D7,
    /// D10). Admission decisions depend only on *which* solves ran, not on
    /// thread timing of results, but the running mean can drift with
    /// arrival order under the wavefront scheduler — that is fine:
    /// admission affects cache contents and counters, never results (the
    /// table is exact-match).
    pub(crate) fn admit_cost(&self, sig: u64, cost: u64) -> bool {
        let sum = self.cost_sum.fetch_add(cost, Ordering::Relaxed);
        let count = self.cost_count.fetch_add(1, Ordering::Relaxed);
        let admit = match self.admission {
            CacheAdmission::All => true,
            CacheAdmission::Cost => {
                count < ADMISSION_WARMUP || cost.saturating_mul(count) >= sum.saturating_mul(2)
            }
        };
        if admit {
            if self.admission == CacheAdmission::Cost {
                lock(&self.admitted[(sig as usize) & (SHARDS - 1)]).insert(sig);
            }
            self.admitted_count.fetch_add(1, Ordering::Relaxed);
        } else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        }
        admit
    }

    /// Fault injection: marks a signature admitted regardless of cost, so a
    /// poisoned entry stored via [`SolveCache::put_poisoned`] is actually
    /// looked up (and caught) on the next solve.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn force_admit(&self, sig: u64) {
        lock(&self.admitted[(sig as usize) & (SHARDS - 1)]).insert(sig);
    }

    /// Looks the key up, counting a hit or miss. An entry that fails its
    /// integrity check is evicted and reported as [`Lookup::Corrupt`]
    /// (counted as a miss: the caller re-solves).
    pub(crate) fn get(&self, key: &SolveKey) -> Lookup {
        if !self.enabled() {
            return Lookup::Miss;
        }
        let mut shard = lock(&self.shards[key.shard()]);
        match shard.get(key) {
            Some((checksum, wave)) => {
                if wave.signature() == *checksum {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Lookup::Hit(wave.clone())
                } else {
                    shard.remove(key);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.integrity_evictions.fetch_add(1, Ordering::Relaxed);
                    Lookup::Corrupt
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Stores a solve result, evicting the shard when full.
    pub(crate) fn put(&self, key: SolveKey, wave: Waveform) {
        if !self.enabled() {
            return;
        }
        if self.journal_on.load(Ordering::Acquire) {
            lock(&self.journal).push((key.clone(), wave.clone()));
        }
        let mut shard = lock(&self.shards[key.shard()]);
        if shard.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        let checksum = wave.signature();
        shard.insert(key, (checksum, wave));
    }

    /// Fault injection: stores `wave` under a checksum that does not match
    /// it, so the next lookup detects the corruption and evicts.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn put_poisoned(&self, key: SolveKey, wave: Waveform) {
        if !self.enabled() {
            return;
        }
        let mut shard = lock(&self.shards[key.shard()]);
        let checksum = wave.signature() ^ 0xdead_beef;
        shard.insert(key, (checksum, wave));
    }

    /// Drops every entry and the admission state (counters keep
    /// accumulating).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            lock(shard).clear();
        }
        for shard in &self.admitted {
            lock(shard).clear();
        }
        self.cost_sum.store(0, Ordering::Relaxed);
        self.cost_count.store(0, Ordering::Relaxed);
    }

    /// Entries currently resident.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            integrity_evictions: self.integrity_evictions.load(Ordering::Relaxed),
            admitted: self.admitted_count.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
        }
    }
}

/// Locks a shard, recovering from poisoning (shard maps hold plain data, so
/// a panicking worker cannot leave one in a torn state).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_wave::stage::Coupling;

    fn key(slot: usize, cg: f64) -> SolveKey {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let load = Load {
            cground: cg,
            couplings: vec![Coupling::new(1e-15, CouplingMode::Active)],
        };
        SolveKey::new("INVX1", 0, slot, true, false, &w, &load).expect("finite load")
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::All);
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        assert_eq!(cache.get(&key(0, 1e-15)), Lookup::Miss);
        cache.put(key(0, 1e-15), w.clone());
        let Lookup::Hit(got) = cache.get(&key(0, 1e-15)) else {
            panic!("expected hit");
        };
        assert_eq!(got.points(), w.points());
        assert_eq!(cache.get(&key(1, 1e-15)), Lookup::Miss, "slot is keyed");
        assert_eq!(cache.get(&key(0, 2e-15)), Lookup::Miss, "load is keyed");
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert!(s.hit_ratio() > 0.24 && s.hit_ratio() < 0.26);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = SolveCache::new(false, 1024, CacheAdmission::All);
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        cache.put(key(0, 1e-15), w);
        assert_eq!(cache.get(&key(0, 1e-15)), Lookup::Miss);
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn nan_load_refuses_a_key() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let nan_ground = Load {
            cground: f64::NAN,
            couplings: vec![],
        };
        assert!(SolveKey::new("INVX1", 0, 0, true, false, &w, &nan_ground).is_none());
        let nan_coupling = Load {
            cground: 1e-15,
            couplings: vec![Coupling::new(f64::NAN, CouplingMode::Grounded)],
        };
        assert!(SolveKey::new("INVX1", 0, 0, true, false, &w, &nan_coupling).is_none());
        let inf = Load {
            cground: f64::INFINITY,
            couplings: vec![],
        };
        assert!(SolveKey::new("INVX1", 0, 0, true, false, &w, &inf).is_none());
    }

    #[test]
    fn poisoned_entry_is_evicted_not_served() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::All);
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        cache.put_poisoned(key(0, 1e-15), w.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(0, 1e-15)), Lookup::Corrupt);
        assert_eq!(cache.len(), 0, "corrupt entry must be evicted");
        assert_eq!(cache.get(&key(0, 1e-15)), Lookup::Miss, "gone after evict");
        let s = cache.stats();
        assert_eq!(s.integrity_evictions, 1);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        // A clean re-insert serves normally again.
        cache.put(key(0, 1e-15), w.clone());
        assert_eq!(cache.get(&key(0, 1e-15)), Lookup::Hit(w));
    }

    #[test]
    fn admission_sig_matches_key_domain() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let load = Load {
            cground: 2e-15,
            couplings: vec![Coupling::new(1e-15, CouplingMode::Active)],
        };
        let sig = admission_sig("INVX1", 0, 0, true, false, &w, &load).expect("finite");
        // Deterministic and sensitive to every keyed dimension.
        assert_eq!(
            sig,
            admission_sig("INVX1", 0, 0, true, false, &w, &load).expect("finite")
        );
        assert_ne!(
            sig,
            admission_sig("INVX1", 0, 1, true, false, &w, &load).expect("slot")
        );
        assert_ne!(
            sig,
            admission_sig("INVX1", 0, 0, false, false, &w, &load).expect("direction")
        );
        assert_ne!(
            sig,
            admission_sig("NAND2X1", 0, 0, true, false, &w, &load).expect("cell")
        );
        // Non-finite loads are rejected exactly like SolveKey::new.
        let bad = Load {
            cground: f64::NAN,
            couplings: vec![],
        };
        assert!(admission_sig("INVX1", 0, 0, true, false, &w, &bad).is_none());
    }

    #[test]
    fn cost_admission_learns_an_adaptive_floor() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::Cost);
        // Warm-up: everything is admitted while the mean is unreliable.
        for sig in 0..ADMISSION_WARMUP {
            assert!(cache.admit_cost(sig, 100), "warm-up admits all");
            assert!(cache.wants(sig), "admitted sigs are wanted");
        }
        // Post warm-up, mean cost is 100: a solve below twice the mean
        // (cost 10, and even a mean-cost 100 one) must be skipped, an
        // expensive one (cost 400 >= 2x mean) admitted.
        assert!(!cache.admit_cost(9999, 10), "cheap solve skipped");
        assert!(!cache.wants(9999), "skipped sig stays unwanted");
        assert!(cache.admit_cost(7777, 400), "expensive solve admitted");
        assert!(cache.wants(7777));
        let s = cache.stats();
        assert_eq!(s.admitted, ADMISSION_WARMUP + 1);
        assert_eq!(s.skipped, 1);
        // clear() resets the admission state along with the entries.
        cache.clear();
        assert!(!cache.wants(7777), "cleared admission state");
    }

    #[test]
    fn admit_all_wants_everything() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::All);
        assert!(cache.wants(42), "All-mode lookups never need admission");
        assert!(cache.admit_cost(42, 0), "All-mode stores everything");
        assert_eq!(cache.stats().skipped, 0);
    }

    #[test]
    fn key_admission_sig_matches_the_streaming_signature() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let load = Load {
            cground: 2e-15,
            couplings: vec![Coupling::new(1e-15, CouplingMode::Active)],
        };
        let streamed = admission_sig("NAND2X1", 1, 0, false, true, &w, &load).expect("finite");
        let key = SolveKey::new("NAND2X1", 1, 0, false, true, &w, &load).expect("finite");
        assert_eq!(
            key.admission_sig(),
            streamed,
            "a replayed key must re-earn the identical admission signature"
        );
        // And from_parts round-trips the key bit-exactly.
        let rebuilt = SolveKey::from_parts(
            key.cell.clone(),
            key.stage,
            key.slot,
            key.flags,
            key.wave.clone(),
            key.cground,
            key.couplings.clone(),
        );
        assert_eq!(rebuilt, key);
        assert_eq!(rebuilt.admission_sig(), streamed);
    }

    #[test]
    fn journal_records_inserts_only_when_enabled() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::All);
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        cache.put(key(0, 1e-15), w.clone());
        assert!(cache.drain_journal().is_empty(), "journal off by default");
        cache.enable_journal();
        cache.put(key(1, 1e-15), w.clone());
        cache.put(key(2, 1e-15), w.clone());
        let drained = cache.drain_journal();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, key(1, 1e-15));
        assert!(
            cache.drain_journal().is_empty(),
            "drain empties the journal"
        );
        // Preloads are not journaled — they came from disk to begin with.
        cache.preload(key(3, 1e-15), w);
        assert!(cache.drain_journal().is_empty());
    }

    #[test]
    fn preload_is_looked_up_even_under_cost_admission() {
        let cache = SolveCache::new(true, 1024, CacheAdmission::Cost);
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let k = key(0, 1e-15);
        assert!(
            !cache.wants(k.admission_sig()),
            "nothing admitted on a fresh cache"
        );
        cache.preload(k.clone(), w.clone());
        assert!(
            cache.wants(k.admission_sig()),
            "preload must re-admit the signature or the entry is dead weight"
        );
        assert_eq!(cache.get(&k), Lookup::Hit(w));
    }

    #[test]
    fn capacity_eviction_clears_full_shards() {
        let cache = SolveCache::new(true, SHARDS, CacheAdmission::All); // one entry per shard
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        for i in 0..64 {
            cache.put(key(i, 1e-15), w.clone());
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.len() <= SHARDS);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }
}
