//! The persistent execution layer of the STA engine.
//!
//! Two cooperating pieces, both built once per analyzer and reused across
//! every pass, mode and ECO sweep:
//!
//! - a **wavefront scheduler** (`wavefront`): a long-lived worker pool
//!   (`pool::WorkerPool`) driving dependency-counter wavefront
//!   propagation with work-stealing deques, replacing the
//!   spawn-per-level/barrier-per-level scheme;
//! - a **stage-solve cache** (`cache::SolveCache`): a sharded concurrent
//!   memo table over the pure inputs of a transistor-level stage solve,
//!   letting refinement passes and repeated modes skip Newton integration
//!   when the inputs are bit-identical.
//!
//! [`ExecConfig`] is the user-facing knob set: thread count
//! (`--threads` / `XTALK_THREADS`; 1 preserves the fully serial path),
//! the small-batch serial cutoff, and the cache switch/capacity.

pub(crate) mod cache;
pub(crate) mod memo;
pub(crate) mod pool;
pub(crate) mod wavefront;

use std::fmt;
use std::sync::OnceLock;

pub use cache::{CacheAdmission, CacheStats};

/// A rejected execution-configuration value.
///
/// Environment overrides used to fall back to defaults silently when a
/// variable held junk (`XTALK_THREADS=banana` quietly ran with auto
/// threads). A long-lived service cannot afford that: a typo in a deploy
/// manifest must fail loudly at startup, not degrade performance for weeks.
/// [`ExecConfig::from_env`] therefore rejects malformed values with this
/// typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// An environment variable held a value that does not parse.
    InvalidEnv {
        /// The variable name (e.g. `XTALK_THREADS`).
        var: &'static str,
        /// The rejected value, verbatim.
        value: String,
        /// What the variable accepts.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidEnv {
                var,
                value,
                expected,
            } => {
                write!(f, "{var}: invalid value `{value}` (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn env_err(var: &'static str, value: &str, expected: &'static str) -> ConfigError {
    ConfigError::InvalidEnv {
        var,
        value: value.to_string(),
        expected,
    }
}

/// Parses an on/off switch value (`1`/`on`/`true`/`yes` vs
/// `0`/`off`/`false`/`no`).
fn parse_switch(var: &'static str, value: &str) -> Result<bool, ConfigError> {
    match value {
        "1" | "on" | "true" | "yes" => Ok(true),
        "0" | "off" | "false" | "no" => Ok(false),
        other => Err(env_err(
            var,
            other,
            "one of 1/on/true/yes or 0/off/false/no",
        )),
    }
}

/// Execution configuration of an analyzer: parallelism and caching.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker count for parallel passes. `1` runs the engine on the fully
    /// serial code path (no pool is ever built); `n > 1` uses the calling
    /// thread plus `n - 1` pool workers.
    pub threads: usize,
    /// Stage-count threshold below which a pass (or a dirty batch) runs
    /// inline on the calling thread even when a pool exists — scheduling
    /// overhead dominates tiny batches.
    pub serial_cutoff: usize,
    /// Enables the cross-pass stage-solve cache.
    pub cache: bool,
    /// Total stage-solve cache capacity, in entries.
    pub cache_capacity: usize,
    /// Which solves the stage-solve cache stores (cost-aware by default —
    /// see [`CacheAdmission`]).
    pub cache_admission: CacheAdmission,
    /// Fail fast on the first recoverable fault instead of degrading to a
    /// conservative bound with a [`crate::diag::Diagnostic`].
    pub strict: bool,
    /// Signoff mode: disable the characterized-macromodel fast path so
    /// every stage solve runs the full transistor-level Newton iteration,
    /// reproducing the pre-macromodel results bit for bit.
    pub signoff: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            serial_cutoff: 32,
            cache: true,
            cache_capacity: 1 << 20,
            cache_admission: CacheAdmission::default(),
            strict: false,
            signoff: false,
        }
    }
}

impl ExecConfig {
    /// The default configuration with environment overrides applied:
    /// `XTALK_THREADS` (integer; `1` = serial, `0`/unset = auto),
    /// `XTALK_CACHE` (on/off switch for the stage-solve cache),
    /// `XTALK_CACHE_CAPACITY` (entry count), `XTALK_CACHE_ADMISSION`
    /// (`all` | `cost`), `XTALK_STRICT` (on/off switch) and
    /// `XTALK_SIGNOFF` (on/off switch for the bit-exact full-solver mode).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when a variable is set to a value that does not
    /// parse — malformed overrides are rejected, never silently replaced
    /// by defaults. (A variable holding non-Unicode bytes is treated as
    /// unset.)
    pub fn from_env() -> Result<Self, ConfigError> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// [`ExecConfig::from_env`] over an explicit variable lookup — the
    /// testable core, so unit tests never mutate the process environment.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when a looked-up value does not parse.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Self, ConfigError> {
        let mut config = ExecConfig::default();
        if let Some(threads) = get("XTALK_THREADS") {
            match threads.trim().parse::<usize>() {
                // 0 keeps the auto (available-parallelism) default.
                Ok(0) => {}
                Ok(n) => config.threads = n,
                Err(_) => {
                    return Err(env_err(
                        "XTALK_THREADS",
                        &threads,
                        "a non-negative integer (0 = auto)",
                    ))
                }
            }
        }
        if let Some(cache) = get("XTALK_CACHE") {
            config.cache = parse_switch("XTALK_CACHE", cache.trim())?;
        }
        if let Some(capacity) = get("XTALK_CACHE_CAPACITY") {
            config.cache_capacity = capacity.trim().parse::<usize>().map_err(|_| {
                env_err(
                    "XTALK_CACHE_CAPACITY",
                    &capacity,
                    "a non-negative entry count (0 disables the cache)",
                )
            })?;
        }
        if let Some(admission) = get("XTALK_CACHE_ADMISSION") {
            config.cache_admission = match admission.trim() {
                "all" => CacheAdmission::All,
                "cost" => CacheAdmission::Cost,
                other => return Err(env_err("XTALK_CACHE_ADMISSION", other, "`all` or `cost`")),
            };
        }
        if let Some(strict) = get("XTALK_STRICT") {
            config.strict = parse_switch("XTALK_STRICT", strict.trim())?;
        }
        if let Some(signoff) = get("XTALK_SIGNOFF") {
            config.signoff = parse_switch("XTALK_SIGNOFF", signoff.trim())?;
        }
        Ok(config)
    }

    /// A fully serial configuration (single thread, cache on).
    #[must_use]
    pub fn serial() -> Self {
        ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the small-batch serial cutoff.
    #[must_use]
    pub fn with_serial_cutoff(mut self, cutoff: usize) -> Self {
        self.serial_cutoff = cutoff;
        self
    }

    /// Enables or disables the stage-solve cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Overrides the cache admission policy.
    #[must_use]
    pub fn with_cache_admission(mut self, admission: CacheAdmission) -> Self {
        self.cache_admission = admission;
        self
    }

    /// Enables or disables strict (fail-fast) mode.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Enables or disables signoff mode (macromodel fast path off).
    #[must_use]
    pub fn with_signoff(mut self, signoff: bool) -> Self {
        self.signoff = signoff;
        self
    }
}

/// The per-analyzer execution state: the lazily built worker pool, the
/// stage-solve cache, the diagnostic sink of the current analysis, and (in
/// fault-injection builds) the active fault plan.
pub(crate) struct Executor {
    config: ExecConfig,
    pool: OnceLock<pool::WorkerPool>,
    cache: cache::SolveCache,
    memo: memo::ArcMemo,
    diagnostics: std::sync::Mutex<Vec<crate::diag::Diagnostic>>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_plan: std::sync::Mutex<Option<crate::fault::FaultPlan>>,
}

impl Executor {
    pub(crate) fn new(config: ExecConfig) -> Self {
        let cache =
            cache::SolveCache::new(config.cache, config.cache_capacity, config.cache_admission);
        let memo = memo::ArcMemo::new(config.cache);
        Executor {
            config,
            pool: OnceLock::new(),
            cache,
            memo,
            diagnostics: std::sync::Mutex::new(Vec::new()),
            #[cfg(any(test, feature = "fault-injection"))]
            fault_plan: std::sync::Mutex::new(None),
        }
    }

    pub(crate) fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Records a contained fault. Callable from any worker thread.
    pub(crate) fn push_diagnostic(&self, diag: crate::diag::Diagnostic) {
        self.diagnostics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(diag);
    }

    /// Drains the diagnostics accumulated since the last drain, sorted for
    /// determinism (worker arrival order is scheduling-dependent).
    pub(crate) fn drain_diagnostics(&self) -> Vec<crate::diag::Diagnostic> {
        let mut diags = std::mem::take(
            &mut *self
                .diagnostics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        diags.sort_by(|a, b| {
            (a.node.as_str(), a.fault as u8, a.severity)
                .cmp(&(b.node.as_str(), b.fault as u8, b.severity))
                .then_with(|| a.detail.cmp(&b.detail))
        });
        diags.dedup();
        diags
    }

    /// Installs (or clears) the fault plan driving injection.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn set_fault_plan(&self, plan: Option<crate::fault::FaultPlan>) {
        *self
            .fault_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
    }

    /// The fault to inject at `gate`, if the active plan selects it.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn fault_for(&self, gate: &str) -> Option<crate::fault::Fault> {
        self.fault_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .filter(|plan| plan.injects_at(gate))
            .map(|plan| plan.fault())
    }

    /// The pool to use for a batch of `stages` stages: `None` selects the
    /// serial path (single-threaded config, or a batch under the cutoff).
    pub(crate) fn pool_for(&self, stages: usize) -> Option<&pool::WorkerPool> {
        if self.config.threads <= 1 || stages < self.config.serial_cutoff {
            return None;
        }
        Some(
            self.pool
                .get_or_init(|| pool::WorkerPool::new(self.config.threads)),
        )
    }

    pub(crate) fn cache(&self) -> &cache::SolveCache {
        &self.cache
    }

    pub(crate) fn memo(&self) -> &memo::ArcMemo {
        &self.memo
    }

    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub(crate) fn clear_cache(&self) {
        self.cache.clear();
        self.memo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let c = ExecConfig::serial()
            .with_threads(4)
            .with_serial_cutoff(0)
            .with_cache(false);
        assert_eq!(c.threads, 4);
        assert_eq!(c.serial_cutoff, 0);
        assert!(!c.cache);
        assert_eq!(ExecConfig::serial().threads, 1);
        assert_eq!(ExecConfig::default().with_threads(0).threads, 1);
    }

    fn lookup<'a>(vars: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            vars.iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn env_overrides_parse_valid_values() {
        let c = ExecConfig::from_lookup(lookup(&[
            ("XTALK_THREADS", "3"),
            ("XTALK_CACHE", "off"),
            ("XTALK_CACHE_CAPACITY", "4096"),
            ("XTALK_CACHE_ADMISSION", "all"),
            ("XTALK_STRICT", "1"),
            ("XTALK_SIGNOFF", "on"),
        ]))
        .expect("valid overrides");
        assert_eq!(c.threads, 3);
        assert!(!c.cache);
        assert_eq!(c.cache_capacity, 4096);
        assert_eq!(c.cache_admission, CacheAdmission::All);
        assert!(c.strict);
        assert!(c.signoff);
        assert!(!ExecConfig::default().signoff, "fast path is the default");
        // 0 threads keeps the auto default; unset vars keep every default.
        let auto = ExecConfig::from_lookup(lookup(&[("XTALK_THREADS", "0")])).expect("auto");
        assert_eq!(auto.threads, ExecConfig::default().threads);
        let plain = ExecConfig::from_lookup(lookup(&[])).expect("no overrides");
        assert_eq!(plain.cache_capacity, ExecConfig::default().cache_capacity);
    }

    #[test]
    fn junk_threads_is_a_typed_error_not_a_silent_default() {
        for bad in ["banana", "-2", "1.5", ""] {
            let e = ExecConfig::from_lookup(lookup(&[("XTALK_THREADS", bad)]))
                .expect_err("junk must be rejected");
            let ConfigError::InvalidEnv { var, value, .. } = &e;
            assert_eq!(*var, "XTALK_THREADS");
            assert_eq!(value, bad);
            assert!(e.to_string().contains("XTALK_THREADS"), "{e}");
        }
    }

    #[test]
    fn junk_cache_capacity_is_a_typed_error_not_a_silent_default() {
        for bad in ["lots", "-1", "1e6", "0x100"] {
            let e = ExecConfig::from_lookup(lookup(&[("XTALK_CACHE_CAPACITY", bad)]))
                .expect_err("junk must be rejected");
            let ConfigError::InvalidEnv { var, value, .. } = &e;
            assert_eq!(*var, "XTALK_CACHE_CAPACITY");
            assert_eq!(value, bad);
        }
        // 0 is a valid capacity: it disables the cache rather than erroring.
        let c = ExecConfig::from_lookup(lookup(&[("XTALK_CACHE_CAPACITY", "0")])).expect("zero");
        assert_eq!(c.cache_capacity, 0);
    }

    #[test]
    fn junk_switches_and_admission_are_rejected() {
        assert!(ExecConfig::from_lookup(lookup(&[("XTALK_CACHE", "maybe")])).is_err());
        assert!(ExecConfig::from_lookup(lookup(&[("XTALK_STRICT", "2")])).is_err());
        assert!(ExecConfig::from_lookup(lookup(&[("XTALK_SIGNOFF", "sorta")])).is_err());
        assert!(ExecConfig::from_lookup(lookup(&[("XTALK_CACHE_ADMISSION", "some")])).is_err());
        let on = ExecConfig::from_lookup(lookup(&[("XTALK_CACHE", "yes")])).expect("switch");
        assert!(on.cache);
    }

    #[test]
    fn executor_respects_serial_paths() {
        let serial = Executor::new(ExecConfig::serial());
        assert!(serial.pool_for(10_000).is_none(), "threads=1 never pools");
        let parallel = Executor::new(ExecConfig::default().with_threads(2));
        assert!(parallel.pool_for(4).is_none(), "below the cutoff");
        assert!(parallel.pool_for(4096).is_some(), "above the cutoff");
        let nocache = Executor::new(ExecConfig::default().with_cache(false));
        assert!(!nocache.cache().enabled());
    }
}
