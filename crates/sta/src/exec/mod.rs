//! The persistent execution layer of the STA engine.
//!
//! Two cooperating pieces, both built once per analyzer and reused across
//! every pass, mode and ECO sweep:
//!
//! - a **wavefront scheduler** (`wavefront`): a long-lived worker pool
//!   (`pool::WorkerPool`) driving dependency-counter wavefront
//!   propagation with work-stealing deques, replacing the
//!   spawn-per-level/barrier-per-level scheme;
//! - a **stage-solve cache** (`cache::SolveCache`): a sharded concurrent
//!   memo table over the pure inputs of a transistor-level stage solve,
//!   letting refinement passes and repeated modes skip Newton integration
//!   when the inputs are bit-identical.
//!
//! [`ExecConfig`] is the user-facing knob set: thread count
//! (`--threads` / `XTALK_THREADS`; 1 preserves the fully serial path),
//! the small-batch serial cutoff, and the cache switch/capacity.

pub(crate) mod cache;
pub(crate) mod memo;
pub(crate) mod pool;
pub(crate) mod wavefront;

use std::sync::OnceLock;

pub use cache::{CacheAdmission, CacheStats};

/// Execution configuration of an analyzer: parallelism and caching.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker count for parallel passes. `1` runs the engine on the fully
    /// serial code path (no pool is ever built); `n > 1` uses the calling
    /// thread plus `n - 1` pool workers.
    pub threads: usize,
    /// Stage-count threshold below which a pass (or a dirty batch) runs
    /// inline on the calling thread even when a pool exists — scheduling
    /// overhead dominates tiny batches.
    pub serial_cutoff: usize,
    /// Enables the cross-pass stage-solve cache.
    pub cache: bool,
    /// Total stage-solve cache capacity, in entries.
    pub cache_capacity: usize,
    /// Which solves the stage-solve cache stores (cost-aware by default —
    /// see [`CacheAdmission`]).
    pub cache_admission: CacheAdmission,
    /// Fail fast on the first recoverable fault instead of degrading to a
    /// conservative bound with a [`crate::diag::Diagnostic`].
    pub strict: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            serial_cutoff: 32,
            cache: true,
            cache_capacity: 1 << 20,
            cache_admission: CacheAdmission::default(),
            strict: false,
        }
    }
}

impl ExecConfig {
    /// The default configuration with environment overrides applied:
    /// `XTALK_THREADS` (integer; `1` = serial, `0`/unset = auto),
    /// `XTALK_CACHE` (`0`/`off` disables the stage-solve cache),
    /// `XTALK_CACHE_CAPACITY` (entry count) and `XTALK_CACHE_ADMISSION`
    /// (`all` | `cost`).
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = ExecConfig::default();
        if let Some(threads) = std::env::var("XTALK_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            config.threads = threads;
        }
        if matches!(
            std::env::var("XTALK_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ) {
            config.cache = false;
        }
        if let Some(capacity) = std::env::var("XTALK_CACHE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config.cache_capacity = capacity;
        }
        match std::env::var("XTALK_CACHE_ADMISSION").as_deref() {
            Ok("all") => config.cache_admission = CacheAdmission::All,
            Ok("cost") => config.cache_admission = CacheAdmission::Cost,
            _ => {}
        }
        if matches!(
            std::env::var("XTALK_STRICT").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        ) {
            config.strict = true;
        }
        config
    }

    /// A fully serial configuration (single thread, cache on).
    #[must_use]
    pub fn serial() -> Self {
        ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the small-batch serial cutoff.
    #[must_use]
    pub fn with_serial_cutoff(mut self, cutoff: usize) -> Self {
        self.serial_cutoff = cutoff;
        self
    }

    /// Enables or disables the stage-solve cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Overrides the cache admission policy.
    #[must_use]
    pub fn with_cache_admission(mut self, admission: CacheAdmission) -> Self {
        self.cache_admission = admission;
        self
    }

    /// Enables or disables strict (fail-fast) mode.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }
}

/// The per-analyzer execution state: the lazily built worker pool, the
/// stage-solve cache, the diagnostic sink of the current analysis, and (in
/// fault-injection builds) the active fault plan.
pub(crate) struct Executor {
    config: ExecConfig,
    pool: OnceLock<pool::WorkerPool>,
    cache: cache::SolveCache,
    memo: memo::ArcMemo,
    diagnostics: std::sync::Mutex<Vec<crate::diag::Diagnostic>>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_plan: std::sync::Mutex<Option<crate::fault::FaultPlan>>,
}

impl Executor {
    pub(crate) fn new(config: ExecConfig) -> Self {
        let cache =
            cache::SolveCache::new(config.cache, config.cache_capacity, config.cache_admission);
        let memo = memo::ArcMemo::new(config.cache);
        Executor {
            config,
            pool: OnceLock::new(),
            cache,
            memo,
            diagnostics: std::sync::Mutex::new(Vec::new()),
            #[cfg(any(test, feature = "fault-injection"))]
            fault_plan: std::sync::Mutex::new(None),
        }
    }

    pub(crate) fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Records a contained fault. Callable from any worker thread.
    pub(crate) fn push_diagnostic(&self, diag: crate::diag::Diagnostic) {
        self.diagnostics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(diag);
    }

    /// Drains the diagnostics accumulated since the last drain, sorted for
    /// determinism (worker arrival order is scheduling-dependent).
    pub(crate) fn drain_diagnostics(&self) -> Vec<crate::diag::Diagnostic> {
        let mut diags = std::mem::take(
            &mut *self
                .diagnostics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        diags.sort_by(|a, b| {
            (a.node.as_str(), a.fault as u8, a.severity)
                .cmp(&(b.node.as_str(), b.fault as u8, b.severity))
                .then_with(|| a.detail.cmp(&b.detail))
        });
        diags.dedup();
        diags
    }

    /// Installs (or clears) the fault plan driving injection.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn set_fault_plan(&self, plan: Option<crate::fault::FaultPlan>) {
        *self
            .fault_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
    }

    /// The fault to inject at `gate`, if the active plan selects it.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn fault_for(&self, gate: &str) -> Option<crate::fault::Fault> {
        self.fault_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .filter(|plan| plan.injects_at(gate))
            .map(|plan| plan.fault())
    }

    /// The pool to use for a batch of `stages` stages: `None` selects the
    /// serial path (single-threaded config, or a batch under the cutoff).
    pub(crate) fn pool_for(&self, stages: usize) -> Option<&pool::WorkerPool> {
        if self.config.threads <= 1 || stages < self.config.serial_cutoff {
            return None;
        }
        Some(
            self.pool
                .get_or_init(|| pool::WorkerPool::new(self.config.threads)),
        )
    }

    pub(crate) fn cache(&self) -> &cache::SolveCache {
        &self.cache
    }

    pub(crate) fn memo(&self) -> &memo::ArcMemo {
        &self.memo
    }

    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub(crate) fn clear_cache(&self) {
        self.cache.clear();
        self.memo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let c = ExecConfig::serial()
            .with_threads(4)
            .with_serial_cutoff(0)
            .with_cache(false);
        assert_eq!(c.threads, 4);
        assert_eq!(c.serial_cutoff, 0);
        assert!(!c.cache);
        assert_eq!(ExecConfig::serial().threads, 1);
        assert_eq!(ExecConfig::default().with_threads(0).threads, 1);
    }

    #[test]
    fn executor_respects_serial_paths() {
        let serial = Executor::new(ExecConfig::serial());
        assert!(serial.pool_for(10_000).is_none(), "threads=1 never pools");
        let parallel = Executor::new(ExecConfig::default().with_threads(2));
        assert!(parallel.pool_for(4).is_none(), "below the cutoff");
        assert!(parallel.pool_for(4096).is_some(), "above the cutoff");
        let nocache = Executor::new(ExecConfig::default().with_cache(false));
        assert!(!nocache.cache().enabled());
    }
}
