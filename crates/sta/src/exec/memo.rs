//! Per-stage exact-match solve memo — the pass-to-pass warm-start store.
//!
//! Iterative refinement (§5.2) re-solves every stage once per pass, yet a
//! stage whose input cone did not change between passes sees bit-identical
//! inputs and would reproduce bit-identical outputs. The global
//! [`super::cache::SolveCache`] already exploits this across analyzers and
//! ECO rebuilds, but its generality costs a heap-allocated key per lookup —
//! measurably slower than re-solving for the cheap shallow stages that
//! dominate hit counts (DESIGN D7). The `ArcMemo` is the cheap local
//! complement: a tiny per-stage table indexed directly by [`StageId`],
//! compared against *borrowed* inputs with zero allocation on both hit and
//! miss.
//!
//! Correctness rests on two invariants:
//!
//! - **Exact matching.** An entry stores the canonical bit patterns
//!   ([`canon_bits`]) of the input waveform and load; a lookup compares
//!   them bitwise. A stage solve is a pure function of those inputs, so any
//!   matching entry holds exactly the waveform the solver would produce —
//!   regardless of which pass, mode or analysis stored it. No pass
//!   bookkeeping is needed.
//! - **Stage-index stability.** Entries are keyed by position in the
//!   current [`crate::graph::TimingGraph`]; a graph rebuild (ECO apply)
//!   reassigns indices, so the owner must [`ArcMemo::clear`] the memo then.
//!   (The global cache survives rebuilds because it keys cell *names*.)
//!
//! Determinism: a given stage's solves all run inside that stage's single
//! wavefront task (or the serial loop), so the per-stage sequence of
//! lookups and stores — and therefore the hit counts reported in
//! [`crate::report::ModeReport`] — is identical under serial and threaded
//! execution.

use std::sync::{Mutex, RwLock};

use xtalk_wave::signature::canon_bits;
use xtalk_wave::stage::Load;
use xtalk_wave::Waveform;

use crate::graph::StageId;

/// Entries retained per stage; oldest-first eviction beyond this. An arc
/// contributes at most a couple of entries per refinement pass that changed
/// its inputs, so 64 comfortably covers the passes-to-convergence range
/// seen in practice while bounding memory at ECO scale.
const PER_STAGE_CAP: usize = 64;

/// One memoized solve of one stage arc.
struct MemoEntry {
    /// Switching input slot.
    slot: u32,
    /// Position of this solve within its arc evaluation (one-step solves
    /// each arc twice: the grounded trial then the active solve).
    ordinal: u8,
    /// Bit 0: output rising; bit 1: earliest (min-delay side values).
    flags: u8,
    /// Canonical bit pairs of the input waveform's points.
    wave_pts: Vec<(u64, u64)>,
    /// Canonical bits of the grounded load capacitance.
    cground: u64,
    /// Canonical bits + treatment byte of each coupling cap, in load order.
    couplings: Vec<(u64, u8)>,
    /// The solve result.
    out: Waveform,
}

impl MemoEntry {
    fn matches(&self, slot: u32, ordinal: u8, flags: u8, in_wave: &Waveform, load: &Load) -> bool {
        self.slot == slot
            && self.ordinal == ordinal
            && self.flags == flags
            && self.cground == canon_bits(load.cground)
            && self.wave_pts.len() == in_wave.points().len()
            && self.couplings.len() == load.couplings.len()
            && self
                .wave_pts
                .iter()
                .zip(in_wave.points())
                .all(|(&(bt, bv), &(t, v))| bt == canon_bits(t) && bv == canon_bits(v))
            && self
                .couplings
                .iter()
                .zip(&load.couplings)
                .all(|(&(bc, bm), c)| {
                    bc == canon_bits(c.c) && bm == super::cache::mode_byte(c.mode)
                })
    }
}

#[derive(Default)]
struct StageMemo {
    entries: Vec<MemoEntry>,
}

/// The per-stage solve memo. See the module docs for the contract.
pub(crate) struct ArcMemo {
    enabled: bool,
    slots: RwLock<Vec<Mutex<StageMemo>>>,
}

impl ArcMemo {
    pub(crate) fn new(enabled: bool) -> Self {
        ArcMemo {
            enabled,
            slots: RwLock::new(Vec::new()),
        }
    }

    /// Grows the table to cover `n_stages` stages. Called at the top of
    /// every pass; the read-lock fast path makes the steady state free.
    pub(crate) fn ensure(&self, n_stages: usize) {
        if !self.enabled {
            return;
        }
        if rlock(&self.slots).len() >= n_stages {
            return;
        }
        let mut slots = wlock(&self.slots);
        while slots.len() < n_stages {
            slots.push(Mutex::new(StageMemo::default()));
        }
    }

    /// Looks up a solve of stage `si` against borrowed inputs; allocation
    /// only happens on a hit (the returned waveform clone).
    // The argument list *is* the solve identity; bundling it into a struct
    // would just rename the same eight fields at the only call site.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn get(
        &self,
        si: StageId,
        slot: usize,
        ordinal: u8,
        out_rising: bool,
        earliest: bool,
        in_wave: &Waveform,
        load: &Load,
    ) -> Option<Waveform> {
        if !self.enabled {
            return None;
        }
        let flags = u8::from(out_rising) | (u8::from(earliest) << 1);
        let slots = rlock(&self.slots);
        let memo = lock(slots.get(si.index())?);
        memo.entries
            .iter()
            .find(|e| e.matches(slot as u32, ordinal, flags, in_wave, load))
            .map(|e| e.out.clone())
    }

    /// Stores a solve result for stage `si`, evicting oldest-first past the
    /// per-stage cap. The caller guarantees `out` is the exact solver
    /// output for these inputs (never a degraded fallback or a faulted
    /// solve — those must bypass the memo entirely).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn put(
        &self,
        si: StageId,
        slot: usize,
        ordinal: u8,
        out_rising: bool,
        earliest: bool,
        in_wave: &Waveform,
        load: &Load,
        out: Waveform,
    ) {
        if !self.enabled {
            return;
        }
        if !load.cground.is_finite() || load.couplings.iter().any(|c| !c.c.is_finite()) {
            return; // no canonical encoding; mirrors SolveKey::new
        }
        let slots = rlock(&self.slots);
        let Some(cell) = slots.get(si.index()) else {
            return;
        };
        let mut memo = lock(cell);
        if memo.entries.len() >= PER_STAGE_CAP {
            memo.entries.remove(0);
        }
        memo.entries.push(MemoEntry {
            slot: slot as u32,
            ordinal,
            flags: u8::from(out_rising) | (u8::from(earliest) << 1),
            wave_pts: in_wave.canon_points(),
            cground: canon_bits(load.cground),
            couplings: load
                .couplings
                .iter()
                .map(|c| (canon_bits(c.c), super::cache::mode_byte(c.mode)))
                .collect(),
            out,
        });
    }

    /// Drops every entry. Mandatory after any graph rebuild: entries are
    /// keyed by stage index, which a rebuild reassigns.
    pub(crate) fn clear(&self) {
        for cell in rlock(&self.slots).iter() {
            lock(cell).entries.clear();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn rlock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wlock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_wave::stage::{Coupling, CouplingMode};

    fn wave(end: f64) -> Waveform {
        Waveform::ramp(0.0, end, 0.0, 3.3).expect("ramp")
    }

    fn load(cg: f64) -> Load {
        Load {
            cground: cg,
            couplings: vec![Coupling::new(1e-15, CouplingMode::Active)],
        }
    }

    #[test]
    fn exact_match_hits_and_dimension_misses() {
        let memo = ArcMemo::new(true);
        memo.ensure(4);
        let si = StageId(2);
        let w = wave(1e-9);
        let out = wave(2e-9);
        memo.put(si, 0, 0, true, false, &w, &load(2e-15), out.clone());
        assert_eq!(
            memo.get(si, 0, 0, true, false, &w, &load(2e-15)),
            Some(out),
            "exact inputs hit"
        );
        assert!(memo.get(si, 1, 0, true, false, &w, &load(2e-15)).is_none());
        assert!(memo.get(si, 0, 1, true, false, &w, &load(2e-15)).is_none());
        assert!(memo.get(si, 0, 0, false, false, &w, &load(2e-15)).is_none());
        assert!(memo.get(si, 0, 0, true, true, &w, &load(2e-15)).is_none());
        assert!(memo.get(si, 0, 0, true, false, &w, &load(3e-15)).is_none());
        assert!(memo
            .get(si, 0, 0, true, false, &wave(2e-9), &load(2e-15))
            .is_none());
        assert!(
            memo.get(StageId(3), 0, 0, true, false, &w, &load(2e-15))
                .is_none(),
            "entries are per stage"
        );
    }

    #[test]
    fn cap_evicts_oldest_first() {
        let memo = ArcMemo::new(true);
        memo.ensure(1);
        let si = StageId(0);
        let out = wave(2e-9);
        for i in 0..(PER_STAGE_CAP + 5) {
            let w = wave(1e-9 + i as f64 * 1e-12);
            memo.put(si, 0, 0, true, false, &w, &load(2e-15), out.clone());
        }
        // The first five entries were evicted; the last ones survive.
        assert!(memo
            .get(si, 0, 0, true, false, &wave(1e-9), &load(2e-15))
            .is_none());
        let last = wave(1e-9 + (PER_STAGE_CAP + 4) as f64 * 1e-12);
        assert!(memo
            .get(si, 0, 0, true, false, &last, &load(2e-15))
            .is_some());
    }

    #[test]
    fn disabled_and_cleared_memos_never_hit() {
        let off = ArcMemo::new(false);
        off.ensure(1);
        let w = wave(1e-9);
        off.put(StageId(0), 0, 0, true, false, &w, &load(2e-15), w.clone());
        assert!(off
            .get(StageId(0), 0, 0, true, false, &w, &load(2e-15))
            .is_none());

        let on = ArcMemo::new(true);
        on.ensure(1);
        on.put(StageId(0), 0, 0, true, false, &w, &load(2e-15), w.clone());
        on.clear();
        assert!(on
            .get(StageId(0), 0, 0, true, false, &w, &load(2e-15))
            .is_none());
    }

    #[test]
    fn non_finite_loads_are_never_stored() {
        let memo = ArcMemo::new(true);
        memo.ensure(1);
        let w = wave(1e-9);
        let bad = Load {
            cground: f64::NAN,
            couplings: vec![],
        };
        memo.put(StageId(0), 0, 0, true, false, &w, &bad, w.clone());
        assert!(memo.get(StageId(0), 0, 0, true, false, &w, &bad).is_none());
    }
}
