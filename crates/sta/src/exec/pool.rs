//! The long-lived worker pool behind the wavefront scheduler.
//!
//! The previous engine spawned fresh scoped threads at every dependency
//! level of every pass — thread creation plus a full barrier per level. The
//! pool here is built once per analyzer and reused across passes, modes and
//! ECO sweeps: helper threads park on a condvar between jobs, and one
//! [`WorkerPool::run`] call broadcasts a job to all of them.
//!
//! # Why one `unsafe` block exists
//!
//! `run` hands the workers a borrowed closure (`&dyn Fn(usize) + Sync`)
//! that captures the engine's pass-local state. Persistent threads cannot
//! borrow from a caller's stack in the type system (`std::thread::scope`
//! exists precisely because of that), so the reference's lifetime is erased
//! to `'static` for the duration of the call. Soundness is restored by a
//! run-to-completion protocol:
//!
//! - `run` does not return until every helper has finished executing the
//!   job and decremented `active` (observed under the state mutex), so the
//!   erased reference never outlives the frame that owns the closure;
//! - helpers drop their copy of the job reference before decrementing
//!   `active` and never touch it again until the next `run` installs a new
//!   job at a higher epoch;
//! - a caller-side panic inside the job is caught, the wait for helpers
//!   still happens, and the panic is then resumed; helper-side panics are
//!   caught, recorded, and re-raised on the caller after the job drains;
//! - `run` is serialized by a private lock, so two concurrent callers
//!   cannot install overlapping jobs.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A lifetime-erased broadcast job. Only ever dereferenced between a `run`
/// call's installation and its completion wait.
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    /// Monotone job counter; helpers run each epoch exactly once.
    epoch: u64,
    /// The current job (present while an epoch is executing).
    job: Option<Job>,
    /// Helpers still executing the current epoch.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Helpers wait here for a new epoch.
    work: Condvar,
    /// `run` waits here for `active == 0`.
    done: Condvar,
    /// A helper panicked inside the current job.
    panicked: AtomicBool,
}

fn lock(shared: &Shared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of `threads - 1` helper threads; the calling thread
/// participates as worker 0 of every [`run`](WorkerPool::run).
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes `run` calls.
    run_gate: Mutex<()>,
}

impl WorkerPool {
    /// Builds a pool for `threads` total workers (`threads >= 2`; the
    /// caller is worker 0, so `threads - 1` OS threads are spawned).
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a pool below two workers is pointless");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xtalk-exec-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            run_gate: Mutex::new(()),
        }
    }

    /// Total workers (helpers plus the caller).
    pub(crate) fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(worker_index)` once on every worker concurrently (index 0 on
    /// the calling thread) and returns after all of them finish.
    #[allow(unsafe_code)]
    pub(crate) fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let _gate = self.run_gate.lock().unwrap_or_else(PoisonError::into_inner);
        // SAFETY: the erased reference is dereferenced only by this call's
        // epoch; `run` blocks below until every helper has finished the job
        // and dropped its copy of the reference (the run-to-completion
        // protocol in the module docs), so it never outlives `f`.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = lock(&self.shared);
            st.epoch += 1;
            st.job = Some(job);
            st.active = self.handles.len();
            self.shared.work.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        {
            let mut st = lock(&self.shared);
            while st.active > 0 {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
        }
        let helper_panicked = self.shared.panicked.swap(false, Ordering::SeqCst);
        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) if helper_panicked => {
                // Deliberate: the helper's payload is gone (it unwound on
                // its own thread), so re-raising on the caller is the only
                // way to propagate the failure. Scheduler-level containment
                // (wavefront.rs) catches job panics before they reach here.
                #[allow(clippy::panic)]
                {
                    panic!("worker thread panicked during parallel stage evaluation")
                }
            }
            Ok(()) => {}
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared).shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.epoch != seen => {
                        seen = st.epoch;
                        break job;
                    }
                    _ => {}
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(|| job(idx))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        // The job reference is dead from here on; only then release `run`.
        let mut st = lock(shared);
        st.active -= 1;
        let all_done = st.active == 0;
        drop(st);
        if all_done {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_workers_run_each_job() {
        let pool = WorkerPool::new(4);
        for _ in 0..16 {
            let count = AtomicUsize::new(0);
            let seen = Mutex::new(Vec::new());
            pool.run(&|idx| {
                count.fetch_add(1, Ordering::SeqCst);
                seen.lock().expect("seen").push(idx);
            });
            assert_eq!(count.load(Ordering::SeqCst), 4);
            let mut ids = seen.into_inner().expect("ids");
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn borrowed_state_survives_many_epochs() {
        let pool = WorkerPool::new(3);
        let mut total = 0usize;
        for round in 0..64 {
            let local: Vec<usize> = (0..100).map(|i| i + round).collect();
            let sum = AtomicUsize::new(0);
            pool.run(&|idx| {
                for chunk in local.chunks(35).skip(idx).step_by(3) {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                }
            });
            total += sum.load(Ordering::SeqCst);
        }
        assert!(total > 0);
    }

    #[test]
    fn helper_panic_is_reported_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|idx| {
                if idx == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "helper panic must surface");
        // The pool still works afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
