//! Best-case policy: every aggressor quiet.

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{CouplingMode, Load, StageError};

use super::{uniform_load, ArcCtx, ArcSolve, CouplingPolicy};

/// The paper's §3 lower bound: every coupling capacitance connects to a
/// quiet (grounded) aggressor, so each contributes its plain value to the
/// load and never injects charge. The fastest — and only optimistic —
/// treatment; useful as the floor of the mode spectrum and as the
/// best-case trial inside the one-step test.
pub struct AllQuiet;

impl CouplingPolicy for AllQuiet {
    fn name(&self) -> &'static str {
        "best-case"
    }

    fn solve_arc(
        &self,
        arc: &ArcCtx<'_>,
        solve: &mut ArcSolve<'_>,
    ) -> Result<Waveform, StageError> {
        solve(uniform_load(arc, CouplingMode::Grounded))
    }
}

/// A `Load` with every coupling grounded — shared with the one-step
/// policy's best-case trial solve.
pub(super) fn grounded_load(arc: &ArcCtx<'_>) -> Load {
    uniform_load(arc, CouplingMode::Grounded)
}
