//! Per-mode coupling policies.
//!
//! The paper's five treatments of a coupling capacitance differ only in
//! the *load decision*: what each coupling contributes while a stage is
//! solved, and (for the refinement modes) which cached results a change
//! invalidates. Everything else — scheduling, merging, caching,
//! fallbacks — is mode-independent and lives in [`crate::kernel`].
//!
//! This module captures that split as the [`CouplingPolicy`] trait, with
//! one implementation per analysis mode:
//!
//! | mode | policy | treatment |
//! |------|--------|-----------|
//! | best-case | [`quiet::AllQuiet`] | every aggressor quiet, coupling to ground (§3 lower bound) |
//! | static doubled | [`doubled::Doubled`] | coupling counted twice, the classic static margin |
//! | worst-case | [`worst_case::AlwaysActive`] | every aggressor switching opposed (§3 upper bound) |
//! | one-step | [`one_step::OneStep`] | §5.1 overlap test against computed aggressor activity |
//! | min-delay | [`min_delay::EarliestAssist`] | aggressors assist, earliest arrivals kept |
//!
//! The iterative mode (§5.2) is not a sixth load decision but a driver
//! that re-runs the one-step policy against refined quiet times; it lives
//! in [`iterative`] as the `RefineHost` loop shared by the batch and
//! incremental engines.

pub mod doubled;
pub mod iterative;
pub mod min_delay;
pub mod one_step;
pub mod quiet;
pub mod worst_case;

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{Coupling, CouplingMode, Load, StageError};

use crate::graph::{StageId, TimingGraph};
use crate::kernel::StateView;
use crate::mode::AnalysisMode;

/// The kernel's solver choke point, handed to a policy as a callback: one
/// stage solve under the load the policy chose. Counting (logical calls,
/// cache hits, Newton solves), the solve cache and the fault harness all
/// sit behind it, so a policy decides *what* to solve, never *how*.
pub type ArcSolve<'s> = dyn FnMut(Load) -> Result<Waveform, StageError> + 's;

/// Read-only context of one timing arc about to be solved.
pub struct ArcCtx<'c> {
    pub(crate) graph: &'c TimingGraph,
    pub(crate) view: &'c StateView<'c>,
    pub(crate) si: StageId,
    pub(crate) out_rising: bool,
    pub(crate) vdd: f64,
    pub(crate) vth: f64,
}

/// One analysis mode's treatment of coupling capacitances.
///
/// Implementations must be pure functions of the arc context (plus any
/// state captured at construction, such as a previous pass's quiet table):
/// the kernel evaluates stages in parallel and relies on identical inputs
/// producing bit-identical loads.
pub trait CouplingPolicy: Sync {
    /// Short human-readable name, for diagnostics and traces.
    fn name(&self) -> &'static str;

    /// Whether the mode keeps *earliest* arrivals (min-delay analysis:
    /// earliest merge wins, fastest sensitization tables).
    fn earliest(&self) -> bool {
        false
    }

    /// Whether [`Self::solve_arc`] reads computed aggressor states from
    /// the in-flight pass. The wavefront scheduler then adds aggressor
    /// edges to the dependency graph so those reads always see finalized
    /// cells.
    fn aggressor_aware(&self) -> bool {
        false
    }

    /// Solves one timing arc: chooses the load (or loads — the one-step
    /// test may solve a best-case trial first) and calls `solve` for each.
    ///
    /// # Errors
    ///
    /// Propagates the solver's [`StageError`]; the kernel degrades it to a
    /// conservative fallback (or aborts, in strict mode).
    fn solve_arc(&self, arc: &ArcCtx<'_>, solve: &mut ArcSolve<'_>)
        -> Result<Waveform, StageError>;

    /// Incremental sweeps only: whether this stage's cached result can
    /// differ because of its coupling caps, even though no electrical
    /// input changed. Called only for stages that have couplings.
    /// `changed` flags nodes replaced so far in the sweep; `quiet_dirty`
    /// (refinement passes) flags nets whose quiet-table entry differs from
    /// the one the cached pass consumed.
    fn coupling_dirty(
        &self,
        graph: &TimingGraph,
        si: StageId,
        level: usize,
        changed: &[bool],
        quiet_dirty: Option<&[bool]>,
    ) -> bool {
        let _ = (graph, si, level, changed, quiet_dirty);
        false
    }
}

/// The load every uniform policy solves with: the stage's ground
/// capacitance plus each coupling under one fixed [`CouplingMode`].
fn uniform_load(arc: &ArcCtx<'_>, mode: CouplingMode) -> Load {
    Load {
        cground: arc.graph.stages[arc.si.index()].cground,
        couplings: arc
            .graph
            .couplings_of(arc.si)
            .iter()
            .map(|&(_, c)| Coupling::new(c, mode))
            .collect(),
    }
}

/// The policy of a single-pass analysis mode.
///
/// The iterative mode is multi-pass by construction and has no single
/// policy — it runs through [`iterative::refine`].
pub(crate) fn for_single_pass(mode: AnalysisMode) -> Box<dyn CouplingPolicy> {
    match mode {
        AnalysisMode::BestCase => Box::new(quiet::AllQuiet),
        AnalysisMode::StaticDoubled => Box::new(doubled::Doubled),
        AnalysisMode::WorstCase => Box::new(worst_case::AlwaysActive),
        AnalysisMode::OneStep => Box::new(one_step::OneStep { prev: None }),
        AnalysisMode::MinDelay => Box::new(min_delay::EarliestAssist),
        AnalysisMode::Iterative { .. } => {
            unreachable!("iterative mode runs through policy::iterative::refine")
        }
    }
}
