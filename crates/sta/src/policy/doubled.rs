//! Static-margin policy: coupling capacitance counted twice.

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{CouplingMode, StageError};

use super::{uniform_load, ArcCtx, ArcSolve, CouplingPolicy};

/// The classic static margin (paper §3): each coupling capacitance is
/// doubled to ground, approximating an opposed aggressor under the Miller
/// effect without modelling its waveform. Cheap and usually conservative,
/// but — as the paper's comparison shows — not a true upper bound.
pub struct Doubled;

impl CouplingPolicy for Doubled {
    fn name(&self) -> &'static str {
        "static-doubled"
    }

    fn solve_arc(
        &self,
        arc: &ArcCtx<'_>,
        solve: &mut ArcSolve<'_>,
    ) -> Result<Waveform, StageError> {
        solve(uniform_load(arc, CouplingMode::Doubled))
    }
}
