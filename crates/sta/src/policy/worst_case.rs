//! Worst-case policy: every aggressor switching opposed.

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{CouplingMode, StageError};

use super::{uniform_load, ArcCtx, ArcSolve, CouplingPolicy};

/// The paper's §3 upper bound: every coupling capacitance carries an
/// aggressor actively switching in the opposite direction, injecting the
/// maximum opposing charge. A guaranteed-safe bound regardless of actual
/// switching windows, and the conservative starting point the one-step
/// test refines away from.
pub struct AlwaysActive;

impl CouplingPolicy for AlwaysActive {
    fn name(&self) -> &'static str {
        "worst-case"
    }

    fn solve_arc(
        &self,
        arc: &ArcCtx<'_>,
        solve: &mut ArcSolve<'_>,
    ) -> Result<Waveform, StageError> {
        solve(uniform_load(arc, CouplingMode::Active))
    }
}
