//! Iterative refinement (§5.2): the shared fixed-point driver.
//!
//! The iterative mode is not a sixth load decision — every pass solves
//! under the [one-step policy](super::one_step::OneStep). What defines it
//! is the loop: pass 1 runs plain one-step, then each refinement pass
//! re-solves against the *previous* pass's quiet table, monotonically
//! shrinking the set of active aggressors until the longest delay settles.
//!
//! Both engines run this exact loop — the batch engine over full passes,
//! the incremental (ECO) engine over cached dirty sweeps — so the loop
//! body lives here once, behind the `RefineHost` trait: the `refine`
//! driver owns pass sequencing, the convergence test and the divergence
//! watchdog; the host owns how a pass is executed and where its states
//! live. Keeping one driver is what keeps the two engines' pass
//! trajectories (and therefore their reports) bit-identical.

use crate::engine::StaError;
use crate::kernel::{NodeState, PassOutput, PropagationCore, Quiet, SolveCounters};
use crate::policy::one_step::OneStep;
use crate::report::PassStat;

/// One engine's execution of refinement passes.
///
/// The driver distinguishes the *latest* pass (just produced, under
/// convergence judgment) from the *best* pass (last accepted — the result
/// so far). [`accept`](Self::accept) promotes latest to best; a diverged
/// pass is never accepted, which is how the watchdog keeps the previous
/// conservative bound.
pub(crate) trait RefineHost {
    /// Runs pass 1: plain one-step, no quiet table.
    fn run_first(&mut self) -> Result<SolveCounters, StaError>;

    /// Runs one refinement pass against `quiet` (the best pass's quiet
    /// table). `esperance_delay` is the current longest delay when the
    /// Esperance optimization should skip off-path stages.
    fn run_refinement(
        &mut self,
        quiet: &[[Quiet; 2]],
        esperance_delay: Option<f64>,
    ) -> Result<SolveCounters, StaError>;

    /// States of the most recently run pass.
    fn latest(&self) -> &[NodeState];

    /// States of the last accepted pass.
    fn best(&self) -> &[NodeState];

    /// Promotes the latest pass to the accepted result.
    fn accept(&mut self);
}

/// Drives the §5.2 refinement loop over `host` to its fixed point.
///
/// Semantics (shared verbatim by batch and ECO):
/// - convergence tolerance `1e-13 + 1e-3 * delay` — stop once a pass
///   improves the longest delay by less than 0.1%;
/// - a hard cap of 10 refinement passes, with a diagnostic if reached;
/// - divergence watchdog: a pass whose delay *rises* beyond the tolerance
///   (oscillation — §5.2 assumes the refinement settles, a production run
///   cannot) is discarded in favour of the previous pass, which is already
///   a guaranteed-conservative one-step bound. In strict mode it is an
///   [`StaError::Unstable`] error instead.
///
/// Pushes one [`PassStat`] per executed pass (including a discarded
/// diverged pass) onto `pass_stats`.
pub(crate) fn refine(
    core: &PropagationCore<'_>,
    host: &mut dyn RefineHost,
    esperance: bool,
    pass_stats: &mut Vec<PassStat>,
) -> Result<(), StaError> {
    let pass_stat = |counters: SolveCounters, delay: f64| PassStat {
        delay,
        solver_calls: counters.calls,
        newton_solves: counters.solves,
        cache_hits: counters.hits,
        warm_hits: counters.memo_hits,
        newton_iters: counters.iters,
        iter_hist: counters.hist,
        table_hits: counters.table_hits,
        table_fallbacks: counters.table_fallbacks,
        table_residual: counters.table_residual,
    };

    // Pass 1: the plain one-step analysis.
    let counters = host.run_first()?;
    let mut delay = core
        .longest(host.latest())
        .map(|(_, _, d)| d)
        .ok_or(StaError::NoArrivals)?;
    pass_stats.push(pass_stat(counters, delay));
    host.accept();

    let mut capped = true;
    for _ in 0..10 {
        let quiet = core.quiet_table(host.best());
        let counters = host.run_refinement(&quiet, esperance.then_some(delay))?;
        let next_delay = core
            .longest(host.latest())
            .map(|(_, _, d)| d)
            .ok_or(StaError::NoArrivals)?;
        pass_stats.push(pass_stat(counters, next_delay));
        let tolerance = 1e-13 + 1e-3 * delay;
        if next_delay > delay + tolerance {
            if core.exec.config().strict {
                return Err(StaError::Unstable { delay: next_delay });
            }
            core.exec.push_diagnostic(crate::diag::Diagnostic {
                severity: crate::diag::Severity::Warning,
                node: "(iterative refinement)".to_string(),
                fault: crate::diag::FaultClass::FixedPointDivergence,
                substituted_bound: Some(delay),
                detail: format!(
                    "pass delay rose from {:.4} ns to {:.4} ns; \
                     keeping the previous conservative pass",
                    delay * 1e9,
                    next_delay * 1e9
                ),
            });
            capped = false;
            break;
        }
        // Converged when the improvement drops below 0.1% — the paper's
        // refinement settles within a few passes.
        let improved = next_delay < delay - tolerance;
        host.accept();
        delay = next_delay.min(delay);
        if !improved {
            capped = false;
            break;
        }
    }
    if capped {
        core.exec.push_diagnostic(crate::diag::Diagnostic {
            severity: crate::diag::Severity::Warning,
            node: "(iterative refinement)".to_string(),
            fault: crate::diag::FaultClass::FixedPointDivergence,
            substituted_bound: Some(delay),
            detail: "pass cap (10) reached before convergence".to_string(),
        });
    }
    Ok(())
}

/// The batch engine's host: each pass is a full propagation over the
/// kernel, states held in [`PassOutput`]s.
struct BatchRefine<'c, 'a> {
    core: &'c PropagationCore<'a>,
    current: Option<PassOutput>,
    best: Option<PassOutput>,
}

impl RefineHost for BatchRefine<'_, '_> {
    fn run_first(&mut self) -> Result<SolveCounters, StaError> {
        let out = self.core.run_pass(&OneStep { prev: None }, None, None)?;
        let counters = out.counters;
        self.current = Some(out);
        Ok(counters)
    }

    fn run_refinement(
        &mut self,
        quiet: &[[Quiet; 2]],
        esperance_delay: Option<f64>,
    ) -> Result<SolveCounters, StaError> {
        let best = self.best.as_ref().expect("refinement follows pass 1");
        let recompute = esperance_delay.map(|d| self.core.long_path_stages(&best.states, d));
        let out = self.core.run_pass(
            &OneStep { prev: Some(quiet) },
            Some(&best.states),
            recompute.as_deref(),
        )?;
        let counters = out.counters;
        self.current = Some(out);
        Ok(counters)
    }

    fn latest(&self) -> &[NodeState] {
        &self.current.as_ref().expect("a pass has run").states
    }

    fn best(&self) -> &[NodeState] {
        &self.best.as_ref().expect("a pass was accepted").states
    }

    fn accept(&mut self) {
        if let Some(out) = self.current.take() {
            self.best = Some(out);
        }
    }
}

/// Runs the full iterative analysis on the batch engine and returns the
/// accepted final states.
pub(crate) fn refine_batch(
    core: &PropagationCore<'_>,
    esperance: bool,
    pass_stats: &mut Vec<PassStat>,
) -> Result<Vec<NodeState>, StaError> {
    let mut host = BatchRefine {
        core,
        current: None,
        best: None,
    };
    refine(core, &mut host, esperance, pass_stats)?;
    Ok(host.best.expect("refine accepted at least pass 1").states)
}
