//! Min-delay policy: assisting aggressors, earliest arrivals.

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{CouplingMode, StageError};

use super::{uniform_load, ArcCtx, ArcSolve, CouplingPolicy};

/// The short-path bound: every aggressor switches *with* the victim,
/// injecting assisting charge that speeds the transition up, and the
/// kernel keeps the earliest arrival per node (with the fastest
/// sensitization tables). Together these lower-bound path delay for hold
/// checks — the mirror image of [`super::worst_case::AlwaysActive`].
pub struct EarliestAssist;

impl CouplingPolicy for EarliestAssist {
    fn name(&self) -> &'static str {
        "min-delay"
    }

    fn earliest(&self) -> bool {
        true
    }

    fn solve_arc(
        &self,
        arc: &ArcCtx<'_>,
        solve: &mut ArcSolve<'_>,
    ) -> Result<Waveform, StageError> {
        solve(uniform_load(arc, CouplingMode::Assisting))
    }
}
