//! One-step policy: the paper's §5.1 overlap test.

use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{Coupling, CouplingMode, Load, StageError};

use super::{quiet::grounded_load, ArcCtx, ArcSolve, CouplingPolicy};
use crate::graph::{StageId, TimingGraph};
use crate::kernel::Quiet;

/// The §5.1 per-aggressor decision: an aggressor couples actively only if
/// it can still be switching when the victim starts — its quiescent time
/// `t_a` overlaps the victim's best-case start `t_bcs` — and quietly
/// (grounded) otherwise.
///
/// With `prev == None` (plain one-step analysis) aggressor activity is read
/// from the *in-flight* pass: an aggressor whose node is already calculated
/// at this stage's level contributes its computed quiescent time, an
/// uncalculated one is assumed active ("line i is not calculated: worst
/// case"). This makes the policy [aggressor-aware](CouplingPolicy::aggressor_aware),
/// so the wavefront scheduler orders those reads.
///
/// With `prev == Some(table)` (a §5.2 refinement pass) activity is read
/// from the previous pass's quiet table instead, and the in-flight state is
/// never consulted.
pub struct OneStep<'p> {
    /// Previous pass's quiet table, indexed by net (refinement passes).
    pub prev: Option<&'p [[Quiet; 2]]>,
}

impl CouplingPolicy for OneStep<'_> {
    fn name(&self) -> &'static str {
        "one-step"
    }

    fn aggressor_aware(&self) -> bool {
        self.prev.is_none()
    }

    fn solve_arc(
        &self,
        arc: &ArcCtx<'_>,
        solve: &mut ArcSolve<'_>,
    ) -> Result<Waveform, StageError> {
        let caps = arc.graph.couplings_of(arc.si);
        if caps.is_empty() {
            return solve(Load::grounded(arc.graph.stages[arc.si.index()].cground));
        }
        // Best-case waveform: all aggressors quiet.
        let bcs = solve(grounded_load(arc))?;
        // Earliest possible victim activity: the best-case waveform
        // entering the coupling threshold band.
        let start_th = if arc.out_rising {
            arc.vth
        } else {
            arc.vdd - arc.vth
        };
        let t_bcs = bcs.crossing(start_th).unwrap_or_else(|| bcs.start_time());

        // Per-aggressor decision (paper §5.1 pseudo code).
        let agg_rising = !arc.out_rising;
        let mut any_active = false;
        let level = arc.graph.stage_level[arc.si.index()];
        let couplings: Vec<Coupling> = caps
            .iter()
            .map(|&(other, c)| {
                let quiet = match self.prev {
                    Some(table) => table[other.index()][agg_rising as usize],
                    None => {
                        let node = arc.graph.net_node[other.index()];
                        if !arc.graph.calculated_at(node, level) {
                            // "line i is not calculated": worst case.
                            any_active = true;
                            return Coupling::new(c, CouplingMode::Active);
                        }
                        match arc.view.get(node.index(), agg_rising) {
                            Some(info) => Quiet::Until(info.quiescent),
                            None => Quiet::Never,
                        }
                    }
                };
                let mode = match quiet {
                    Quiet::Never => CouplingMode::Grounded,
                    Quiet::Until(t_a) if t_a > t_bcs => {
                        any_active = true;
                        CouplingMode::Active
                    }
                    Quiet::Until(_) => CouplingMode::Grounded,
                };
                Coupling::new(c, mode)
            })
            .collect();

        if !any_active {
            // The best-case solve already used exactly this load.
            return Ok(bcs);
        }
        solve(Load {
            cground: arc.graph.stages[arc.si.index()].cground,
            couplings,
        })
    }

    /// The crosstalk half of the incremental dirty rule. Plain one-step: a
    /// changed aggressor net dirties the victim's stage whenever the
    /// in-flight analysis would have read it (it is calculated at this
    /// level) — no timing arc connects them, only the coupling cap.
    /// Refinement: the decision depends only on the previous pass's quiet
    /// table, so the stage is dirty exactly when an aggressor's entry
    /// changed.
    fn coupling_dirty(
        &self,
        graph: &TimingGraph,
        si: StageId,
        level: usize,
        changed: &[bool],
        quiet_dirty: Option<&[bool]>,
    ) -> bool {
        let caps = graph.couplings_of(si);
        match self.prev {
            None => caps.iter().any(|&(other, _)| {
                let node = graph.net_node[other.index()];
                graph.calculated_at(node, level) && changed[node.index()]
            }),
            Some(_) => {
                let qd = quiet_dirty.expect("refinement sweep passes quiet dirt");
                caps.iter().any(|&(other, _)| qd[other.index()])
            }
        }
    }
}
