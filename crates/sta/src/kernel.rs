//! The shared propagation core.
//!
//! One kernel drives every analysis surface: the batch [`crate::Sta`]
//! facade, the wavefront scheduler (`exec::wavefront`) and the incremental
//! ECO engine (`crate::incremental`) all execute passes through
//! [`PropagationCore`]. The kernel owns the arrival store ([`NodeState`]
//! per timing node), stage evaluation (sensitization, wire adjustment,
//! launch mirroring, the solve cache and the degrade-don't-die fallbacks)
//! and the pass drivers (serial level loop, wavefront, incremental dirty
//! sweep). What it does *not* own is the coupling treatment: each arc's
//! load decision is delegated to a [`crate::policy::CouplingPolicy`], so
//! the five analysis modes differ only in the policy object they pass in.
//!
//! Propagation is the paper's §4 breadth-first scheme over the expanded
//! stage graph: one worst-case waveform per node and transition direction,
//! visited in topological order (linear in arcs).
//!
//! # Invariants the layers above rely on
//!
//! - **Single producer:** every timing node is written by exactly one
//!   stage, so a stage's merges fully rebuild its output node and parallel
//!   tasks never contend on a cell.
//! - **Static calculatedness:** whether a node may be read at a given
//!   dependency level is a function of the graph alone
//!   ([`TimingGraph::calculated_at`]), identical for the serial loop, the
//!   wavefront scheduler and the incremental sweep — the root of their
//!   bit-identical results.
//! - **Deterministic evaluation:** merges within a stage are applied in
//!   fixed arc order and stage evaluation is a pure function of its inputs,
//!   so identical inputs reproduce bit-identical outputs (which also makes
//!   the incremental sweep's exact early termination sound).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use xtalk_layout::Parasitics;
use xtalk_netlist::Netlist;
use xtalk_tech::cell::{Stage, StageSignal};
use xtalk_tech::{Library, Process};
use xtalk_wave::macromodel;
use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{Load, SolvedWave, StageError, StageScratch, StageSolver};

use crate::diag::{Diagnostic, FaultClass, Severity};
use crate::engine::StaError;
use crate::exec::cache::{admission_sig, Lookup, SolveKey};
use crate::exec::pool::WorkerPool;
use crate::exec::{wavefront, Executor};
use crate::graph::{StageId, TNodeId, TNodeKind, TimingGraph};
use crate::mode::AnalysisMode;
use crate::policy::CouplingPolicy;
use crate::report::{build_path, ModeReport, PassStat};

/// Extra arrival-time penalty of a conservative fallback waveform, seconds.
/// Far beyond any real stage delay of the supported designs, so a degraded
/// arrival can never be optimistic — and is obvious in a report.
const FALLBACK_PENALTY: f64 = 1e-7;

/// Failure-taxonomy class of a stage error (DESIGN.md D8).
fn fault_class_of(e: &StageError) -> FaultClass {
    match e {
        StageError::MissingSideValue { .. } | StageError::BadSlot { .. } => {
            FaultClass::TruncatedModel
        }
        StageError::NonFiniteInput => FaultClass::NonFiniteValue,
        StageError::Waveform(_) => FaultClass::NonMonotoneWaveform,
        // DidNotConverge, NumericalBlowup, and any future variant of the
        // non_exhaustive enum: the solver failed to produce a result.
        _ => FaultClass::SolverDivergence,
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Arrival information for one node and direction.
#[derive(Debug, Clone)]
pub struct WaveInfo {
    /// The worst-case waveform.
    pub wave: Waveform,
    /// Crossing time of the delay threshold (Vdd/2), seconds.
    pub crossing: f64,
    /// Time after which the node is quiet in this direction (waveform has
    /// passed the coupling threshold band), seconds.
    pub quiescent: f64,
    /// Predecessor arc, for path reconstruction.
    pub pred: Option<Pred>,
}

/// Predecessor record of a worst-case arrival.
#[derive(Debug, Clone, Copy)]
pub struct Pred {
    /// Stage-instance index.
    pub stage: usize,
    /// Input slot within the stage.
    pub slot: usize,
    /// Direction of the input transition.
    pub input_rising: bool,
}

/// Per-node arrival state (index 0 = falling, 1 = rising).
#[derive(Debug, Clone, Default)]
pub struct NodeState {
    /// The worst arrival per direction (index 0 = falling, 1 = rising).
    pub dirs: [Option<WaveInfo>; 2],
}

impl NodeState {
    /// The arrival in the given direction, if any.
    pub fn get(&self, rising: bool) -> Option<&WaveInfo> {
        self.dirs[rising as usize].as_ref()
    }
}

/// Quiescence classification of a net in one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quiet {
    /// The net never makes this transition.
    Never,
    /// The net is quiet after this time.
    Until(f64),
}

/// Work counters of one pass or stage evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveCounters {
    /// Logical stage-solver calls — the paper's work metric (its mode
    /// comparisons count solver invocations). A call answered by the
    /// stage-solve cache still counts here.
    pub calls: usize,
    /// Newton integrations actually performed (cache misses or cache off).
    pub solves: usize,
    /// Calls answered by a reuse layer (per-stage memo or global cache).
    pub hits: usize,
    /// Subset of `hits` answered by the per-stage warm-start memo (borrowed
    /// bitwise compare, no key allocation) rather than the keyed cache.
    pub memo_hits: usize,
    /// Total Newton iterations consumed by the `solves` integrations — the
    /// cost metric driving cache admission.
    pub iters: usize,
    /// Per-solve Newton-iteration histogram: bucket 0 holds solves that
    /// took `< 64` iterations, then doubling bands (`< 128`, `< 256`, ...)
    /// to the `>= 4096` tail in bucket 7.
    pub hist: [usize; 8],
    /// Subset of `hits` answered by the characterized macromodel tables
    /// (DESIGN.md D12) instead of a Newton integration or a cached wave.
    pub table_hits: usize,
    /// Calls where a usable macromodel existed but declined the query
    /// (out-of-grid, unclassifiable input shape, unfoldable load) and the
    /// solve fell through to the ordinary Newton path.
    pub table_fallbacks: usize,
    /// Largest certified interpolation-error bound among the table hits,
    /// seconds — the worst-case pessimism the macromodel may have added.
    pub table_residual: f64,
}

impl SolveCounters {
    /// Adds `other`'s counts into `self`.
    pub fn absorb(&mut self, other: SolveCounters) {
        self.calls += other.calls;
        self.solves += other.solves;
        self.hits += other.hits;
        self.memo_hits += other.memo_hits;
        self.iters += other.iters;
        for (mine, theirs) in self.hist.iter_mut().zip(other.hist) {
            *mine += theirs;
        }
        self.table_hits += other.table_hits;
        self.table_fallbacks += other.table_fallbacks;
        self.table_residual = self.table_residual.max(other.table_residual);
    }

    /// Accounts one performed Newton integration of `newton_iters` total
    /// iterations.
    fn record_solve(&mut self, newton_iters: usize) {
        self.solves += 1;
        self.iters += newton_iters;
        self.hist[iter_bucket(newton_iters)] += 1;
    }
}

/// Histogram bucket of one solve's Newton-iteration count (see
/// [`SolveCounters::hist`]).
fn iter_bucket(iters: usize) -> usize {
    let mut bucket = 0;
    let mut t = iters / 64;
    while t > 0 && bucket < 7 {
        t >>= 1;
        bucket += 1;
    }
    bucket
}

std::thread_local! {
    /// Reusable per-worker solve scratch: one buffer set per thread for the
    /// whole analysis instead of five heap allocations per stage solve
    /// (DESIGN.md D10). Thread-local rather than per-pass because the
    /// wavefront scheduler runs stage tasks on a persistent pool.
    static SCRATCH: std::cell::RefCell<StageScratch> =
        std::cell::RefCell::new(StageScratch::new());
}

/// One stage solve through the thread-local scratch — the zero-allocation
/// integration path every cache miss takes.
fn solve_lean(
    solver: &StageSolver<'_>,
    stage: &Stage,
    slot: usize,
    in_wave: &Waveform,
    side: &[f64],
    load: &Load,
) -> Result<SolvedWave, StageError> {
    SCRATCH.with(|s| solver.solve_with(&mut s.borrow_mut(), stage, slot, in_wave, side, load))
}

/// Result of one full propagation pass.
pub struct PassOutput {
    /// Final per-node arrival states.
    pub states: Vec<NodeState>,
    /// Solver work consumed.
    pub counters: SolveCounters,
}

/// Result of evaluating one stage: waveforms to merge into its output.
pub(crate) struct StageEval {
    pub(crate) merges: Vec<(bool, WaveInfo)>,
    pub(crate) counters: SolveCounters,
}

/// Read-only view of in-flight pass state, shared by the serial level loop
/// (a plain slice) and the wavefront scheduler (write-once cells committed
/// by each node's unique producer task).
pub enum StateView<'x> {
    /// The serial/incremental representation.
    Slice(&'x [NodeState]),
    /// The wavefront representation.
    Cells(&'x [OnceLock<NodeState>]),
}

impl StateView<'_> {
    /// The arrival of `node` in the given direction, if finalized.
    pub fn get(&self, node: usize, rising: bool) -> Option<&WaveInfo> {
        match self {
            StateView::Slice(states) => states[node].get(rising),
            StateView::Cells(cells) => cells[node].get().and_then(|st| st.get(rising)),
        }
    }
}

/// Per-stage fault-injection decision. In builds without the harness this
/// is a zero-sized no-op the optimizer removes entirely; with it, the
/// active [`crate::fault::FaultPlan`] decides at construction.
pub(crate) struct Inject {
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<crate::fault::Fault>,
}

impl Inject {
    /// Forces a typed stage error (or panics, for the mid-job-panic class)
    /// at the solver choke point when the plan selects this stage.
    fn forced_error(&self, _slot: usize) -> Option<StageError> {
        #[cfg(any(test, feature = "fault-injection"))]
        match self.fault {
            Some(crate::fault::Fault::TruncatedTable) => {
                return Some(StageError::MissingSideValue { slot: _slot });
            }
            Some(crate::fault::Fault::DivergentStage) => {
                return Some(StageError::DidNotConverge);
            }
            Some(crate::fault::Fault::MidJobPanic) => {
                panic!("fault injection: mid-job panic");
            }
            _ => {}
        }
        None
    }

    /// Corrupts the load with NaN when the plan selects this stage.
    fn doctor_load(&self, load: Load) -> Load {
        #[cfg(any(test, feature = "fault-injection"))]
        if self.fault == Some(crate::fault::Fault::NanLoad) {
            return Load {
                cground: f64::NAN,
                ..load
            };
        }
        load
    }

    /// Whether the freshly solved cache entry should be poisoned.
    #[cfg(any(test, feature = "fault-injection"))]
    fn poisons_cache(&self) -> bool {
        self.fault == Some(crate::fault::Fault::PoisonedCache)
    }

    /// Whether this stage's solves must bypass the per-stage memo. Any
    /// injected fault does: the robustness tests observe the keyed cache
    /// layer directly, and a memoized answer would mask the injected path.
    fn skips_memo(&self) -> bool {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            self.fault.is_some()
        }
        #[cfg(not(any(test, feature = "fault-injection")))]
        {
            false
        }
    }
}

/// Outcome of one incremental sweep (`PropagationCore::repropagate`).
pub struct SweepOutput {
    /// Per-node flag: the node's cached state was replaced.
    pub changed: Vec<bool>,
    /// Solver work consumed (logical calls, Newton solves, cache hits).
    pub counters: SolveCounters,
    /// Stages re-evaluated (of `graph.stages.len()` total).
    pub reevaluated: usize,
}

/// Borrowed view of one analysis's inputs and expanded graph: the shared
/// propagation core. The batch [`crate::Sta`] facade and the incremental
/// (ECO) engine — which owns its design data and graph and so cannot use
/// [`crate::Sta`]'s borrowed form directly — both drive propagation
/// exclusively through this type.
pub struct PropagationCore<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) library: &'a Library,
    pub(crate) process: &'a Process,
    pub(crate) parasitics: &'a Parasitics,
    pub(crate) graph: &'a TimingGraph,
    pub(crate) exec: &'a Executor,
}

impl PropagationCore<'_> {
    /// Runs the requested analysis and reports the longest path.
    ///
    /// # Errors
    ///
    /// See [`StaError`].
    pub(crate) fn analyze(&self, mode: AnalysisMode) -> Result<ModeReport, StaError> {
        let started = Instant::now();
        // Diagnostics accumulate per analysis; drop leftovers from an
        // earlier run that errored out before assembling its report.
        drop(self.exec.drain_diagnostics());
        let mut pass_stats: Vec<PassStat> = Vec::new();
        let final_states = self.compute_states(mode, &mut pass_stats)?;
        self.assemble_report(mode, final_states, pass_stats, started)
    }

    /// The fault-injection decision for the stage driven by `_gate`.
    fn inject_for(&self, _gate: &str) -> Inject {
        Inject {
            #[cfg(any(test, feature = "fault-injection"))]
            fault: self.exec.fault_for(_gate),
        }
    }

    /// The [`PassStat`] of a completed pass output.
    pub(crate) fn pass_stat(&self, out: &PassOutput, earliest: bool) -> PassStat {
        PassStat {
            delay: self
                .extreme(&out.states, earliest)
                .map(|(_, _, d)| d)
                .unwrap_or(0.0),
            solver_calls: out.counters.calls,
            newton_solves: out.counters.solves,
            cache_hits: out.counters.hits,
            warm_hits: out.counters.memo_hits,
            newton_iters: out.counters.iters,
            iter_hist: out.counters.hist,
            table_hits: out.counters.table_hits,
            table_fallbacks: out.counters.table_fallbacks,
            table_residual: out.counters.table_residual,
        }
    }

    /// Builds a [`ModeReport`] from completed states.
    pub(crate) fn assemble_report(
        &self,
        mode: AnalysisMode,
        final_states: Vec<NodeState>,
        pass_stats: Vec<PassStat>,
        started: Instant,
    ) -> Result<ModeReport, StaError> {
        let earliest = mode == AnalysisMode::MinDelay;
        let (endpoint, rising, longest_delay) = self
            .extreme(&final_states, earliest)
            .ok_or(StaError::NoArrivals)?;
        let endpoints = self.endpoint_arrivals(&final_states);
        // Per-net quiescent times (fall, rise) for downstream analyses
        // (glitch/noise checks, window debugging).
        let net_quiet = (0..self.netlist.net_count())
            .map(|ni| {
                let node = self.graph.net_node[ni];
                let st = &final_states[node.index()];
                (
                    st.get(false).map(|i| i.quiescent),
                    st.get(true).map(|i| i.quiescent),
                )
            })
            .collect();
        let critical_path = build_path(
            self.netlist,
            self.library,
            self.graph,
            &final_states,
            endpoint,
            rising,
        );
        let diagnostics = self.exec.drain_diagnostics();
        Ok(ModeReport {
            mode,
            longest_delay,
            endpoints,
            net_quiet,
            endpoint_net: match self.graph.nodes[endpoint.index()].kind {
                TNodeKind::Net(n) => Some(n),
                TNodeKind::Internal { .. } => None,
            },
            endpoint_rising: rising,
            critical_path,
            passes: pass_stats.len(),
            pass_delays: pass_stats.iter().map(|p| p.delay).collect(),
            stage_solves: pass_stats.iter().map(|p| p.solver_calls).sum(),
            newton_solves: pass_stats.iter().map(|p| p.newton_solves).sum(),
            cache_hits: pass_stats.iter().map(|p| p.cache_hits).sum(),
            warm_hits: pass_stats.iter().map(|p| p.warm_hits).sum(),
            newton_iters: pass_stats.iter().map(|p| p.newton_iters).sum(),
            table_hits: pass_stats.iter().map(|p| p.table_hits).sum(),
            table_fallbacks: pass_stats.iter().map(|p| p.table_fallbacks).sum(),
            table_residual: pass_stats
                .iter()
                .map(|p| p.table_residual)
                .fold(0.0, f64::max),
            pass_stats,
            diagnostics,
            runtime: started.elapsed(),
        })
    }

    /// The latest endpoint arrival: `(node, rising, delay)`.
    pub(crate) fn longest(&self, states: &[NodeState]) -> Option<(TNodeId, bool, f64)> {
        self.extreme(states, false)
    }

    /// The latest (or, with `earliest`, the earliest) endpoint arrival.
    pub(crate) fn extreme(
        &self,
        states: &[NodeState],
        earliest: bool,
    ) -> Option<(TNodeId, bool, f64)> {
        let mut best: Option<(TNodeId, bool, f64)> = None;
        for node in self.graph.endpoints() {
            for rising in [false, true] {
                if let Some(info) = states[node.index()].get(rising) {
                    let better = best
                        .map(|(_, _, d)| {
                            if earliest {
                                info.crossing < d
                            } else {
                                info.crossing > d
                            }
                        })
                        .unwrap_or(true);
                    if better {
                        best = Some((node, rising, info.crossing));
                    }
                }
            }
        }
        best
    }

    /// Per-endpoint arrival summary from a completed pass.
    fn endpoint_arrivals(&self, states: &[NodeState]) -> Vec<crate::report::EndpointArrival> {
        self.graph
            .endpoints()
            .filter_map(|node| {
                let net = match self.graph.nodes[node.index()].kind {
                    TNodeKind::Net(n) => n,
                    TNodeKind::Internal { .. } => return None,
                };
                let st = &states[node.index()];
                if st.get(false).is_none() && st.get(true).is_none() {
                    return None;
                }
                Some(crate::report::EndpointArrival {
                    net,
                    rise: st.get(true).map(|i| i.crossing),
                    fall: st.get(false).map(|i| i.crossing),
                })
            })
            .collect()
    }

    /// Quiescent-time table per net and direction, from a completed pass.
    pub(crate) fn quiet_table(&self, states: &[NodeState]) -> Vec<[Quiet; 2]> {
        (0..self.netlist.net_count())
            .map(|ni| {
                let node = self.graph.net_node[ni];
                let mut entry = [Quiet::Never; 2];
                for rising in [false, true] {
                    if let Some(info) = states[node.index()].get(rising) {
                        entry[rising as usize] = Quiet::Until(info.quiescent);
                    }
                }
                entry
            })
            .collect()
    }

    /// Esperance: stages whose output can still lie on a long path.
    pub(crate) fn long_path_stages(&self, states: &[NodeState], longest: f64) -> Vec<bool> {
        // Remaining downstream delay per node and direction, reverse topo.
        let n = self.graph.nodes.len();
        let mut remaining = vec![[0.0f64; 2]; n];
        for &si in self.graph.topo.iter().rev() {
            let stage = &self.graph.stages[si.index()];
            let out = stage.output.index();
            for (slot, input) in stage.inputs.iter().enumerate() {
                let _ = slot;
                for in_rising in [false, true] {
                    let out_rising = !in_rising;
                    let (Some(wi), Some(wo)) = (
                        states[input.node.index()].get(in_rising),
                        states[out].get(out_rising),
                    ) else {
                        continue;
                    };
                    let arc_delay = (wo.crossing - wi.crossing).max(0.0);
                    let cand = arc_delay + remaining[out][out_rising as usize];
                    let slot_rem = &mut remaining[input.node.index()][in_rising as usize];
                    if cand > *slot_rem {
                        *slot_rem = cand;
                    }
                }
            }
        }
        // A stage must be recomputed when its output's potential path length
        // is within 10% of the current longest delay.
        let margin = 0.9 * longest;
        self.graph
            .stages
            .iter()
            .map(|stage| {
                let out = stage.output.index();
                [false, true].into_iter().any(|rising| {
                    states[out]
                        .get(rising)
                        .map(|wi| wi.crossing + remaining[out][rising as usize] >= margin)
                        .unwrap_or(false)
                })
            })
            .collect()
    }

    /// Runs one full propagation pass under `policy` (whose
    /// [`CouplingPolicy::earliest`] selects min-delay semantics: earliest
    /// merging, fastest sensitization). Dispatches to the wavefront
    /// scheduler when the configuration allows parallelism and the design
    /// is big enough; both paths are bit-identical (see the scheduler notes
    /// in `DESIGN.md`).
    pub(crate) fn run_pass(
        &self,
        policy: &dyn CouplingPolicy,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<PassOutput, StaError> {
        self.exec.memo().ensure(self.graph.stages.len());
        match self.exec.pool_for(self.graph.stages.len()) {
            Some(pool) => self.run_pass_wavefront(pool, policy, prev, recompute),
            None => self.run_pass_serial(policy, prev, recompute),
        }
    }

    /// The serial (and small-design) pass: the paper's breadth-first level
    /// loop, one stage at a time.
    fn run_pass_serial(
        &self,
        policy: &dyn CouplingPolicy,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<PassOutput, StaError> {
        let solver = StageSolver::new(self.process);
        let earliest = policy.earliest();
        let n = self.graph.nodes.len();
        let mut states: Vec<NodeState> = vec![NodeState::default(); n];
        let mut counters = SolveCounters::default();

        self.init_start_states(&mut states);

        for lvl in 0..self.graph.level_count() {
            let results = self.eval_stages(
                &solver,
                self.graph.level(lvl),
                policy,
                &StateView::Slice(&states),
                prev,
                recompute,
            )?;
            for (si, ev) in results {
                let out_idx = self.graph.stages[si.index()].output.index();
                counters.absorb(ev.counters);
                for (out_rising, info) in ev.merges {
                    merge_with(&mut states[out_idx], out_rising, info, earliest);
                }
            }
        }

        Ok(PassOutput { states, counters })
    }

    /// The parallel pass: dependency-counter wavefront propagation over the
    /// persistent worker pool. Every node has a unique producer stage, so
    /// each task commits exactly its own output cell and the result is
    /// bit-identical to the serial level loop.
    fn run_pass_wavefront(
        &self,
        pool: &WorkerPool,
        policy: &dyn CouplingPolicy,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<PassOutput, StaError> {
        let solver = StageSolver::new(self.process);
        let earliest = policy.earliest();
        let n = self.graph.nodes.len();
        let cells: Vec<OnceLock<NodeState>> =
            std::iter::repeat_with(OnceLock::new).take(n).collect();
        let proto = self.start_node_state();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if node.is_start {
                let _ = cells[i].set(proto.clone());
            }
        }
        // An aggressor-aware policy reads finalized aggressor states, so
        // those become dependency edges too (acyclic by the static level
        // rule).
        let deps = wavefront::DepGraph::build(self.graph, policy.aggressor_aware());

        let calls = AtomicUsize::new(0);
        let solves = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let memo_hits = AtomicUsize::new(0);
        let newton_iters = AtomicUsize::new(0);
        let hist: [AtomicUsize; 8] = Default::default();
        let table_hits = AtomicUsize::new(0);
        let table_fallbacks = AtomicUsize::new(0);
        // f64 max via bit-pattern fetch_max: valid because the residual is
        // always >= 0 and non-negative IEEE754 doubles order like their bits.
        let table_residual_bits = AtomicU64::new(0);
        let failed = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, StaError)>> = Mutex::new(None);
        let view = StateView::Cells(&cells);

        wavefront::execute(pool, &deps, &|si: usize| {
            // After a failure the pass result is discarded; remaining tasks
            // only tick the scheduler's counters down.
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let sid = StageId(si as u32);
            match self.eval_stage_contained(sid, &solver, policy, &view, prev, recompute) {
                Ok(ev) => {
                    calls.fetch_add(ev.counters.calls, Ordering::Relaxed);
                    solves.fetch_add(ev.counters.solves, Ordering::Relaxed);
                    hits.fetch_add(ev.counters.hits, Ordering::Relaxed);
                    memo_hits.fetch_add(ev.counters.memo_hits, Ordering::Relaxed);
                    newton_iters.fetch_add(ev.counters.iters, Ordering::Relaxed);
                    for (bucket, n) in ev.counters.hist.iter().enumerate() {
                        if *n > 0 {
                            hist[bucket].fetch_add(*n, Ordering::Relaxed);
                        }
                    }
                    table_hits.fetch_add(ev.counters.table_hits, Ordering::Relaxed);
                    table_fallbacks.fetch_add(ev.counters.table_fallbacks, Ordering::Relaxed);
                    if ev.counters.table_residual > 0.0 {
                        table_residual_bits
                            .fetch_max(ev.counters.table_residual.to_bits(), Ordering::Relaxed);
                    }
                    let mut out = NodeState::default();
                    for (out_rising, info) in ev.merges {
                        merge_with(&mut out, out_rising, info, earliest);
                    }
                    // Unique producer: this task alone writes this cell.
                    let _ = cells[self.graph.stages[si].output.index()].set(out);
                }
                Err(err) => {
                    failed.store(true, Ordering::Relaxed);
                    let mut slot = first_error.lock().unwrap_or_else(PoisonError::into_inner);
                    // Keep the lowest stage index for a deterministic error.
                    match &*slot {
                        Some((prev_si, _)) if *prev_si <= si => {}
                        _ => *slot = Some((si, err)),
                    }
                }
            }
        });

        if let Some((_, err)) = first_error
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(err);
        }
        let states = cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_default())
            .collect();
        Ok(PassOutput {
            states,
            counters: SolveCounters {
                calls: calls.into_inner(),
                solves: solves.into_inner(),
                hits: hits.into_inner(),
                memo_hits: memo_hits.into_inner(),
                iters: newton_iters.into_inner(),
                hist: hist.map(AtomicUsize::into_inner),
                table_hits: table_hits.into_inner(),
                table_fallbacks: table_fallbacks.into_inner(),
                table_residual: f64::from_bits(table_residual_bits.into_inner()),
            },
        })
    }

    /// The state of every startpoint node: full-swing ramps at `t = 0`.
    fn start_node_state(&self) -> NodeState {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let slew = process.default_input_slew;
        let rise = Waveform::ramp(0.0, slew, 0.0, vdd).expect("valid ramp");
        let fall = Waveform::ramp(0.0, slew, vdd, 0.0).expect("valid ramp");
        NodeState {
            dirs: [
                Some(self.wave_info(fall, th, vth, vdd, None)),
                Some(self.wave_info(rise, th, vth, vdd, None)),
            ],
        }
    }

    /// Seeds startpoint nodes (primary-input nets) with full-swing ramps at
    /// `t = 0`.
    pub(crate) fn init_start_states(&self, states: &mut [NodeState]) {
        let proto = self.start_node_state();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if node.is_start {
                states[i] = proto.clone();
            }
        }
    }

    /// The batch propagation step: evaluates an explicit set of stages
    /// against a read-only snapshot of the pass state and returns their
    /// output merges, in input order. The caller guarantees every stage in
    /// the set is ready (its inputs final), so the set fans out over the
    /// worker pool without internal ordering; the caller applies the merges
    /// serially. The serial level loop and the incremental dirty sweep
    /// drive propagation through this function.
    fn eval_stages(
        &self,
        solver: &StageSolver<'_>,
        stage_ids: &[StageId],
        policy: &dyn CouplingPolicy,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<Vec<(StageId, StageEval)>, StaError> {
        let results: Vec<(StageId, Result<StageEval, StaError>)> =
            match self.exec.pool_for(stage_ids.len()) {
                None => stage_ids
                    .iter()
                    .map(|&si| {
                        (
                            si,
                            self.eval_stage_contained(si, solver, policy, view, prev, recompute),
                        )
                    })
                    .collect(),
                Some(pool) => {
                    let slots: Vec<OnceLock<(StageId, Result<StageEval, StaError>)>> =
                        std::iter::repeat_with(OnceLock::new)
                            .take(stage_ids.len())
                            .collect();
                    wavefront::execute_flat(pool, stage_ids.len(), &|pos: usize| {
                        let si = stage_ids[pos];
                        let result =
                            self.eval_stage_contained(si, solver, policy, view, prev, recompute);
                        let _ = slots[pos].set((si, result));
                    });
                    slots
                        .into_iter()
                        .map(|slot| slot.into_inner().expect("every slot evaluated"))
                        .collect()
                }
            };
        results
            .into_iter()
            .map(|(si, result)| result.map(|ev| (si, ev)))
            .collect()
    }

    /// Evaluates one stage against the current (read-only) pass state,
    /// returning the output merges to apply.
    fn eval_stage(
        &self,
        si: StageId,
        solver: &StageSolver<'_>,
        policy: &dyn CouplingPolicy,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<StageEval, StageError> {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let earliest = policy.earliest();
        let stage_inst = &self.graph.stages[si.index()];
        let out_idx = stage_inst.output.index();
        let mut ev = StageEval {
            merges: Vec::new(),
            counters: SolveCounters::default(),
        };

        // Esperance: reuse the previous pass's result for off-path stages
        // (still a safe upper bound).
        if let (Some(mask), Some(prev_states)) = (recompute, prev) {
            if !mask[si.index()] {
                for rising in [false, true] {
                    if let Some(pi) = prev_states[out_idx].get(rising) {
                        ev.merges.push((rising, pi.clone()));
                    }
                }
                return Ok(ev);
            }
        }

        let gate = self.netlist.gate(stage_inst.gate);
        let cell = self
            .library
            .cell(&gate.cell)
            .expect("graph construction verified cells");
        let stage: &Stage = &cell.stages[stage_inst.stage];
        let inject = self.inject_for(&gate.name);

        for (slot, input) in stage_inst.inputs.iter().enumerate() {
            let launch = stage_inst.is_launch && matches!(stage.inputs[slot], StageSignal::Launch);
            for in_rising in [false, true] {
                // Launch stages fire on the clock's rising edge only; the
                // falling launch transition is the mirrored clock rise
                // (Q falls at the same clock edge).
                let source_rising = if launch { true } else { in_rising };
                let Some(info) = view.get(input.node.index(), source_rising) else {
                    continue;
                };
                let out_rising = !in_rising;
                let side_table = if earliest {
                    &stage_inst.sides_fast
                } else {
                    &stage_inst.sides
                };
                let Some(side) = side_table[slot][out_rising as usize].as_ref() else {
                    continue;
                };

                // Wire-adjusted input waveform at this sink.
                let mut in_wave = self.wire_adjusted(info, input.node, input.sink, th);
                if launch && !in_rising {
                    in_wave = mirror(&in_wave, vdd);
                }

                // The arc's characterized macromodel, when the fast path
                // applies. Signoff forces the full solver; min-delay tables
                // are not characterized (a pessimistic table would be
                // *optimistic* for earliest-arrival merging); launch arcs
                // and fault-injected stages always take the ordinary path.
                let model =
                    if self.exec.config().signoff || earliest || launch || inject.skips_memo() {
                        None
                    } else {
                        let key = macromodel::arc_key(
                            process,
                            &gate.cell,
                            stage_inst.stage,
                            slot,
                            out_rising,
                            side,
                        );
                        macromodel::model_for(key).filter(|m| m.usable())
                    };

                // Coupling treatment is the policy's call; the kernel owns
                // the solver choke point behind the callback. A failed
                // solve degrades to the conservative fallback waveform
                // under a diagnostic unless strict mode asks for the error
                // itself.
                let arc = crate::policy::ArcCtx {
                    graph: self.graph,
                    view,
                    si,
                    out_rising,
                    vdd,
                    vth,
                };
                let solved = {
                    let counters = &mut ev.counters;
                    // Position of each solve within this arc evaluation
                    // (one-step policies solve an arc twice: grounded trial
                    // then active), part of the memo identity.
                    let mut arc_ordinal: u8 = 0;
                    let mut solve = |load: Load| {
                        let ordinal = arc_ordinal;
                        arc_ordinal = arc_ordinal.wrapping_add(1);
                        self.solve_cached(
                            solver,
                            si,
                            ordinal,
                            &gate.cell,
                            stage_inst.stage,
                            stage,
                            slot,
                            &in_wave,
                            side,
                            load,
                            out_rising,
                            earliest,
                            model.as_deref(),
                            counters,
                            &inject,
                        )
                    };
                    policy.solve_arc(&arc, &mut solve)
                };
                let wave = match solved {
                    Ok(wave) => wave,
                    Err(e) => {
                        if self.exec.config().strict {
                            return Err(e);
                        }
                        let fb = self.fallback_wave(&in_wave, out_rising, earliest);
                        let crossing = fb.crossing(th).unwrap_or_else(|| fb.end_time());
                        self.exec.push_diagnostic(Diagnostic {
                            severity: Severity::Error,
                            node: gate.name.clone(),
                            fault: fault_class_of(&e),
                            substituted_bound: Some(crossing),
                            detail: e.to_string(),
                        });
                        fb
                    }
                };
                let winfo = self.wave_info(
                    wave,
                    th,
                    vth,
                    vdd,
                    Some(Pred {
                        stage: si.index(),
                        slot,
                        input_rising: in_rising,
                    }),
                );
                ev.merges.push((out_rising, winfo));
            }
        }
        Ok(ev)
    }

    /// A conservative substitute waveform for a degraded arc: a full-swing
    /// ramp placed so the reported arrival can never be optimistic — for
    /// max-delay analyses far *later* than any real stage response (the
    /// input's end plus [`FALLBACK_PENALTY`]), and for min-delay at the
    /// input's start, *earlier* than any real response.
    fn fallback_wave(&self, in_wave: &Waveform, out_rising: bool, earliest: bool) -> Waveform {
        let vdd = self.process.vdd;
        let (v0, v1) = if out_rising { (0.0, vdd) } else { (vdd, 0.0) };
        let slew = self.process.default_input_slew;
        if earliest {
            Waveform::ramp(in_wave.start_time(), slew, v0, v1).expect("fallback ramp is finite")
        } else {
            Waveform::ramp(in_wave.end_time() + FALLBACK_PENALTY, 10.0 * slew, v0, v1)
                .expect("fallback ramp is finite")
        }
    }

    /// The whole-stage conservative substitute used when a stage task
    /// panics: every arc that would have been solved gets the fallback
    /// waveform instead. Mirrors `eval_stage`'s arc walk (Esperance reuse,
    /// launch mirroring, side-table gating) without touching the solver.
    fn fallback_eval(
        &self,
        si: StageId,
        policy: &dyn CouplingPolicy,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> StageEval {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let earliest = policy.earliest();
        let stage_inst = &self.graph.stages[si.index()];
        let out_idx = stage_inst.output.index();
        let mut ev = StageEval {
            merges: Vec::new(),
            counters: SolveCounters::default(),
        };
        if let (Some(mask), Some(prev_states)) = (recompute, prev) {
            if !mask[si.index()] {
                for rising in [false, true] {
                    if let Some(pi) = prev_states[out_idx].get(rising) {
                        ev.merges.push((rising, pi.clone()));
                    }
                }
                return ev;
            }
        }
        let gate = self.netlist.gate(stage_inst.gate);
        let cell = self
            .library
            .cell(&gate.cell)
            .expect("graph construction verified cells");
        let stage: &Stage = &cell.stages[stage_inst.stage];
        for (slot, input) in stage_inst.inputs.iter().enumerate() {
            let launch = stage_inst.is_launch && matches!(stage.inputs[slot], StageSignal::Launch);
            for in_rising in [false, true] {
                let source_rising = if launch { true } else { in_rising };
                let Some(info) = view.get(input.node.index(), source_rising) else {
                    continue;
                };
                let out_rising = !in_rising;
                let side_table = if earliest {
                    &stage_inst.sides_fast
                } else {
                    &stage_inst.sides
                };
                if side_table[slot][out_rising as usize].is_none() {
                    continue;
                }
                let fb = self.fallback_wave(&info.wave, out_rising, earliest);
                let winfo = self.wave_info(
                    fb,
                    th,
                    vth,
                    vdd,
                    Some(Pred {
                        stage: si.index(),
                        slot,
                        input_rising: in_rising,
                    }),
                );
                ev.merges.push((out_rising, winfo));
            }
        }
        ev
    }

    /// Evaluates one stage with panic containment: a panicking task is
    /// converted into a conservative fallback evaluation plus a
    /// [`FaultClass::WorkerPanic`] diagnostic (or, in strict mode, into
    /// [`StaError::Panic`]) instead of tearing down the pass. Solver errors
    /// are tagged with the gate name here.
    fn eval_stage_contained(
        &self,
        si: StageId,
        solver: &StageSolver<'_>,
        policy: &dyn CouplingPolicy,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<StageEval, StaError> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.eval_stage(si, solver, policy, view, prev, recompute)
        })) {
            Ok(Ok(ev)) => Ok(ev),
            Ok(Err(e)) => Err(StaError::Stage {
                gate: self
                    .netlist
                    .gate(self.graph.stages[si.index()].gate)
                    .name
                    .clone(),
                source: e,
            }),
            Err(payload) => {
                let gate = self
                    .netlist
                    .gate(self.graph.stages[si.index()].gate)
                    .name
                    .clone();
                if self.exec.config().strict {
                    return Err(StaError::Panic { gate });
                }
                let ev = self.fallback_eval(si, policy, view, prev, recompute);
                let bound = ev
                    .merges
                    .iter()
                    .map(|(_, info)| info.crossing)
                    .fold(f64::NEG_INFINITY, f64::max);
                self.exec.push_diagnostic(Diagnostic {
                    severity: Severity::Error,
                    node: gate,
                    fault: FaultClass::WorkerPanic,
                    substituted_bound: bound.is_finite().then_some(bound),
                    detail: panic_message(payload.as_ref()),
                });
                Ok(ev)
            }
        }
    }

    /// One stage solve routed through the reuse layers. `calls` counts the
    /// logical invocation either way; only a full miss (or a disabled
    /// cache) pays the Newton integration, through the thread-local scratch
    /// ([`solve_lean`]). Reuse is layered cheapest-first (DESIGN.md D10):
    ///
    /// 0. the arc's characterized macromodel tables, when the caller
    ///    resolved one (`model`) — interpolation plus certified pessimistic
    ///    padding instead of an exact answer, which is why signoff mode and
    ///    min-delay analyses never resolve a model (DESIGN.md D12);
    /// 1. the per-stage memo (`exec::memo`) — a borrowed bitwise compare
    ///    with no key allocation, which is what makes refinement re-solves
    ///    of unchanged arcs nearly free;
    /// 2. the keyed stage-solve cache (`exec::cache`) — probed only when
    ///    the admission policy admitted this signature, so cheap shallow
    ///    solves skip the allocating probe entirely;
    /// 3. the solve itself, whose measured Newton-iteration cost then
    ///    feeds the adaptive admission threshold.
    ///
    /// Layers 1–3 match exact inputs bitwise, so a hit there is
    /// bit-identical to the solve it replaces; only layer 0 substitutes a
    /// (bounded, conservative) approximation.
    ///
    /// This is the engine's solver choke point, so it also hosts the fault
    /// harness (`inject`) and the cache guardrails: a load that refuses a
    /// signature (non-finite capacitance) solves uncached under a
    /// diagnostic, a corrupt cache entry is reported, never served, and a
    /// fault-injected stage bypasses the memo so the injected path stays
    /// observable at the cache layer.
    #[allow(clippy::too_many_arguments)]
    fn solve_cached(
        &self,
        solver: &StageSolver<'_>,
        si: StageId,
        ordinal: u8,
        cell_name: &str,
        stage_in_cell: usize,
        stage: &Stage,
        slot: usize,
        in_wave: &Waveform,
        side: &[f64],
        load: Load,
        out_rising: bool,
        earliest: bool,
        model: Option<&macromodel::ArcModel>,
        counters: &mut SolveCounters,
        inject: &Inject,
    ) -> Result<Waveform, StageError> {
        counters.calls += 1;
        if let Some(e) = inject.forced_error(slot) {
            return Err(e);
        }
        let load = inject.doctor_load(load);
        // The macromodel fast path: answer from the arc's characterized
        // tables when the query folds into the grid (DESIGN.md D12). The
        // synthesized waveform carries the cell's certified pessimistic
        // padding, so a table answer is conservative, never optimistic; a
        // declined query (and every signoff-mode solve, which arrives here
        // with `model == None`) falls through to the exact layers below.
        if let Some(model) = model {
            if let Some(wave) = model.lookup(in_wave, &load, out_rising) {
                counters.hits += 1;
                counters.table_hits += 1;
                counters.table_residual =
                    counters.table_residual.max(model.certified_delay_bound());
                macromodel::note_hit();
                return Ok(wave);
            }
            counters.table_fallbacks += 1;
            macromodel::note_fallback();
        }
        let cache = self.exec.cache();
        if !cache.enabled() {
            let solved = solve_lean(solver, stage, slot, in_wave, side, &load)?;
            counters.record_solve(solved.newton_iters);
            return Ok(solved.wave);
        }
        // Probe the memo before hashing the admission signature: a memo hit
        // answers from the per-stage table alone, so the (waveform-length)
        // FNV hash would be pure overhead on the hit path. A non-finite load
        // can never hit (the memo only stores finite loads, and no finite
        // bit pattern equals a NaN/Inf pattern), so the diagnostic below is
        // reached exactly as before.
        let memo = self.exec.memo();
        if !inject.skips_memo() {
            if let Some(wave) = memo.get(si, slot, ordinal, out_rising, earliest, in_wave, &load) {
                counters.hits += 1;
                counters.memo_hits += 1;
                return Ok(wave);
            }
        }
        let Some(sig) = admission_sig(
            cell_name,
            stage_in_cell,
            slot,
            out_rising,
            earliest,
            in_wave,
            &load,
        ) else {
            // A non-finite load has no canonical signature; solve uncached
            // and let the stage solver's own input validation classify it.
            self.exec.push_diagnostic(Diagnostic {
                severity: Severity::Warning,
                node: cell_name.to_string(),
                fault: FaultClass::NonFiniteValue,
                substituted_bound: None,
                detail: "non-finite load capacitance rejected by the solve cache".to_string(),
            });
            let solved = solve_lean(solver, stage, slot, in_wave, side, &load)?;
            counters.record_solve(solved.newton_iters);
            return Ok(solved.wave);
        };
        let mut key = None;
        if cache.wants(sig) {
            key = SolveKey::new(
                cell_name,
                stage_in_cell,
                slot,
                out_rising,
                earliest,
                in_wave,
                &load,
            );
            if let Some(k) = &key {
                match cache.get(k) {
                    Lookup::Hit(wave) => {
                        counters.hits += 1;
                        return Ok(wave);
                    }
                    Lookup::Corrupt => {
                        self.exec.push_diagnostic(Diagnostic {
                            severity: Severity::Warning,
                            node: cell_name.to_string(),
                            fault: FaultClass::CacheCorruption,
                            substituted_bound: None,
                            detail: "cache entry failed its integrity check; evicted and re-solved"
                                .to_string(),
                        });
                    }
                    Lookup::Miss => {}
                }
            }
        }
        let solved = solve_lean(solver, stage, slot, in_wave, side, &load)?;
        counters.record_solve(solved.newton_iters);
        let wave = solved.wave;
        #[cfg(any(test, feature = "fault-injection"))]
        if inject.poisons_cache() {
            // The poisoned entry must land in the keyed cache regardless of
            // the admission policy — the robustness tests corrupt it there.
            cache.force_admit(sig);
            let key = key.or_else(|| {
                SolveKey::new(
                    cell_name,
                    stage_in_cell,
                    slot,
                    out_rising,
                    earliest,
                    in_wave,
                    &load,
                )
            });
            if let Some(k) = key {
                cache.put_poisoned(k, wave.clone());
            }
            return Ok(wave);
        }
        if !inject.skips_memo() {
            memo.put(
                si,
                slot,
                ordinal,
                out_rising,
                earliest,
                in_wave,
                &load,
                wave.clone(),
            );
        }
        if cache.admit_cost(sig, solved.newton_iters as u64) {
            let key = key.or_else(|| {
                SolveKey::new(
                    cell_name,
                    stage_in_cell,
                    slot,
                    out_rising,
                    earliest,
                    in_wave,
                    &load,
                )
            });
            if let Some(k) = key {
                cache.put(k, wave.clone());
            }
        }
        Ok(wave)
    }

    fn wave_info(
        &self,
        wave: Waveform,
        th: f64,
        vth: f64,
        vdd: f64,
        pred: Option<Pred>,
    ) -> WaveInfo {
        let crossing = wave.crossing(th).unwrap_or_else(|| wave.end_time());
        let quiescent = if wave.is_rising() {
            wave.crossing(vdd - vth).unwrap_or_else(|| wave.end_time())
        } else {
            wave.crossing(vth).unwrap_or_else(|| wave.end_time())
        };
        WaveInfo {
            wave,
            crossing,
            quiescent,
            pred,
        }
    }

    /// Applies Elmore delay and PERI slew degradation for the wire between
    /// a net's driver and the given sink.
    fn wire_adjusted(
        &self,
        info: &WaveInfo,
        node: TNodeId,
        sink: Option<usize>,
        th: f64,
    ) -> Waveform {
        let (TNodeKind::Net(net), Some(k)) = (self.graph.nodes[node.index()].kind, sink) else {
            return info.wave.clone();
        };
        let np = &self.parasitics.nets[net.index()];
        // Downstream pin cap of this sink.
        let pin_c = self
            .netlist
            .net(net)
            .loads
            .get(k)
            .and_then(|&(g, pin)| {
                self.library
                    .cell(&self.netlist.gate(g).cell)
                    .and_then(|c| c.input_cap.get(pin).copied())
            })
            .unwrap_or(0.0);
        let elmore = np.elmore(k, pin_c);
        if elmore < 1e-15 {
            return info.wave.clone();
        }
        let (lo, hi) = self.process.slew_thresholds();
        let wave = match info.wave.slew(lo, hi) {
            Some(s) if s > 1e-15 => {
                // PERI: slew_out^2 = slew_in^2 + (ln9 * elmore)^2.
                let ln9 = 9.0f64.ln();
                let out = (s * s + (ln9 * elmore).powi(2)).sqrt();
                info.wave.stretched_around(th, out / s)
            }
            _ => info.wave.clone(),
        };
        wave.shifted(elmore)
    }

    /// Re-propagates one cached pass in place: the incremental (ECO)
    /// engine's dirty-cone sweep. `seed` flags stages invalidated directly
    /// by edits; `quiet_dirty` (refinement passes only) flags nets whose
    /// quiet-table entry differs from the one the cached pass consumed.
    ///
    /// One batch pass walks the dependency levels in order and evaluates
    /// every stage. This sweep walks the same levels over a *cached* state
    /// vector and re-evaluates a stage only when its result can differ from
    /// the cache:
    ///
    /// - the stage is a **seed** (its gate was named dirty by an edit:
    ///   cell, load, wire or coupling data changed under it);
    /// - an **input node changed** during this sweep (the ordinary
    ///   electrical fan-out cone);
    /// - the policy's **coupling decision can differ**
    ///   ([`CouplingPolicy::coupling_dirty`]) — the crosstalk-specific part
    ///   of the dirty rule. Under the one-step policy a changed-and-
    ///   calculated aggressor net dirties the victim's stage even though no
    ///   timing arc connects them; during refinement the decision reads the
    ///   previous pass's quiet table instead. Uniform policies add no dirt.
    ///
    /// Early termination: a re-evaluated stage whose fresh output matches
    /// the cache within `epsilon` does not mark its output changed, so its
    /// clean fan-out is never visited. Because each timing node has exactly
    /// one producer stage and levels are applied in order, replaying the
    /// dirty subset over the cached states reproduces the batch pass
    /// exactly (at epsilon zero).
    pub(crate) fn repropagate(
        &self,
        policy: &dyn CouplingPolicy,
        states: &mut Vec<NodeState>,
        seed: &[bool],
        quiet_dirty: Option<&[bool]>,
        epsilon: f64,
    ) -> Result<SweepOutput, StaError> {
        self.exec.memo().ensure(self.graph.stages.len());
        let solver = StageSolver::new(self.process);
        let earliest = policy.earliest();
        let n = self.graph.nodes.len();
        states.resize(n, NodeState::default());
        let mut out = SweepOutput {
            changed: vec![false; n],
            counters: SolveCounters::default(),
            reevaluated: 0,
        };

        // Start states depend only on the process, but re-derive and compare
        // them so a start node that fell out of the cache remap is repaired.
        let mut starts: Vec<NodeState> = vec![NodeState::default(); n];
        self.init_start_states(&mut starts);
        for i in 0..n {
            if self.graph.nodes[i].is_start && !state_eq(&states[i], &starts[i], epsilon) {
                states[i] = std::mem::take(&mut starts[i]);
                out.changed[i] = true;
            }
        }
        drop(starts);

        let mut dirty: Vec<StageId> = Vec::new();
        for lvl in 0..self.graph.level_count() {
            dirty.clear();
            for &si in self.graph.level(lvl) {
                let stage = &self.graph.stages[si.index()];
                let mut is_dirty = seed[si.index()]
                    || stage
                        .inputs
                        .iter()
                        .any(|input| out.changed[input.node.index()]);
                if !is_dirty && !self.graph.couplings_of(si).is_empty() {
                    is_dirty =
                        policy.coupling_dirty(self.graph, si, lvl, &out.changed, quiet_dirty);
                }
                if is_dirty {
                    dirty.push(si);
                }
            }

            if !dirty.is_empty() {
                let results = self.eval_stages(
                    &solver,
                    &dirty,
                    policy,
                    &StateView::Slice(states),
                    None,
                    None,
                )?;
                for (si, ev) in results {
                    out.counters.absorb(ev.counters);
                    out.reevaluated += 1;
                    let out_idx = self.graph.stages[si.index()].output.index();
                    // Rebuild the output from scratch: this stage is the
                    // node's only producer, so its merges are the complete
                    // state.
                    let mut fresh = NodeState::default();
                    for (out_rising, info) in ev.merges {
                        merge_with(&mut fresh, out_rising, info, earliest);
                    }
                    if !state_eq(&states[out_idx], &fresh, epsilon) {
                        states[out_idx] = fresh;
                        out.changed[out_idx] = true;
                    }
                }
            }
        }

        Ok(out)
    }
}

/// Keeps the worst waveform per direction: latest-crossing for max-delay
/// analysis, earliest-crossing when `earliest` is set (min-delay).
pub(crate) fn merge_with(state: &mut NodeState, rising: bool, info: WaveInfo, earliest: bool) {
    let slot = &mut state.dirs[rising as usize];
    match slot {
        Some(existing)
            if (!earliest && existing.crossing >= info.crossing)
                || (earliest && existing.crossing <= info.crossing) => {}
        _ => *slot = Some(info),
    }
}

/// Mirror a waveform across mid-rail (rising clock edge -> falling launch).
fn mirror(wave: &Waveform, vdd: f64) -> Waveform {
    let pts: Vec<(f64, f64)> = wave.points().iter().map(|&(t, v)| (t, vdd - v)).collect();
    Waveform::new(pts).expect("mirror of a monotone waveform is monotone")
}

/// Arrival-state equality within `epsilon` (seconds for times, volts for
/// waveform values). At the default `epsilon == 0.0` this is exact, which
/// still terminates early because re-evaluation is deterministic: a stage
/// whose inputs are bit-identical reproduces a bit-identical output.
/// Predecessor arcs are ignored — they are a function of the winning merge
/// and agree whenever the waveforms do.
pub(crate) fn state_eq(a: &NodeState, b: &NodeState, epsilon: f64) -> bool {
    for dir in 0..2 {
        match (&a.dirs[dir], &b.dirs[dir]) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                if !wave_info_eq(x, y, epsilon) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

fn wave_info_eq(a: &WaveInfo, b: &WaveInfo, epsilon: f64) -> bool {
    if !close(a.crossing, b.crossing, epsilon) || !close(a.quiescent, b.quiescent, epsilon) {
        return false;
    }
    let (pa, pb) = (a.wave.points(), b.wave.points());
    pa.len() == pb.len()
        && pa
            .iter()
            .zip(pb)
            .all(|(&(ta, va), &(tb, vb))| close(ta, tb, epsilon) && close(va, vb, epsilon))
}

#[inline]
fn close(a: f64, b: f64, epsilon: f64) -> bool {
    (a - b).abs() <= epsilon
}
