//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] selects a subset of stages (by a stable hash of the gate
//! name, seeded from configuration — never from the wall clock) and injects
//! one class of [`Fault`] at the engine's solver boundary. The harness is
//! compiled only under `cfg(any(test, feature = "fault-injection"))`; release
//! builds without the feature carry zero injection code.
//!
//! Determinism contract: the same `(fault, seed, denom)` plan on the same
//! design injects at exactly the same stages on every run, serial or
//! threaded — the property tests in `tests/robustness.rs` rely on it.

use xtalk_wave::StableHasher;

/// The injectable fault classes, mirroring the failure taxonomy of
/// [`crate::diag::FaultClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Replace the stage's ground load with NaN before the solve.
    NanLoad,
    /// Pretend the cell model is truncated (missing side value).
    TruncatedTable,
    /// Force the stage integrator to report a blown step budget.
    DivergentStage,
    /// Panic inside the stage task, mid-job.
    MidJobPanic,
    /// Corrupt the freshly inserted stage-solve cache entry so its
    /// integrity checksum no longer matches.
    PoisonedCache,
}

/// A deterministic, seeded plan: inject `fault` at every stage whose gate
/// name hashes into the selected residue class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    fault: Fault,
    seed: u64,
    denom: u64,
}

impl FaultPlan {
    /// A plan injecting `fault` at roughly one in `denom` stages, selected
    /// by a stable hash seeded with `seed`.
    #[must_use]
    pub fn new(fault: Fault, seed: u64, denom: u64) -> Self {
        FaultPlan {
            fault,
            seed,
            denom: denom.max(1),
        }
    }

    /// The injected fault class.
    #[must_use]
    pub fn fault(&self) -> Fault {
        self.fault
    }

    /// Whether this plan injects at the stage driven by `gate`.
    ///
    /// Pure function of `(seed, denom, gate)` — no global state, no clock.
    #[must_use]
    pub fn injects_at(&self, gate: &str) -> bool {
        let mut h = StableHasher::new();
        h.write_u64(self.seed);
        h.write_bytes(gate.as_bytes());
        h.finish().is_multiple_of(self.denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(Fault::NanLoad, 7, 3);
        let b = FaultPlan::new(Fault::NanLoad, 7, 3);
        let names = ["G1", "G2", "G3", "G10", "G17", "G22", "out_7"];
        for n in names {
            assert_eq!(a.injects_at(n), b.injects_at(n));
        }
        // A different seed selects a different subset (on enough names).
        let c = FaultPlan::new(Fault::NanLoad, 8, 3);
        assert!(
            names.iter().any(|n| a.injects_at(n) != c.injects_at(n)),
            "seed must perturb the selection"
        );
    }

    #[test]
    fn denom_one_injects_everywhere() {
        let p = FaultPlan::new(Fault::MidJobPanic, 0, 1);
        assert!(p.injects_at("anything"));
        assert!(p.injects_at(""));
    }
}
