//! The expanded timing graph.
//!
//! The gate-level netlist is expanded to *stage* granularity: every cell
//! contributes one stage instance per complementary-CMOS stage, so the
//! waveform engine always solves single stages at transistor level (paper
//! §3). Timing nodes are netlist nets plus cell-internal nets; timing arcs
//! run from a stage-input node to the stage-output node. Flip-flops cut the
//! graph at their D pin and re-launch Q from the clock through their output
//! driver stages, so the expanded graph of a legal synchronous circuit is a
//! DAG (paper §4: "the circuit is translated into a directed acyclic
//! graph").
//!
//! Adjacency (fanout, dependency levels, coupling caps) is stored in
//! compressed-sparse-row form: one flat item array per relation plus an
//! offset table, so the propagation kernel and the wavefront scheduler walk
//! contiguous memory instead of chasing one heap allocation per node.

use xtalk_layout::Parasitics;
use xtalk_netlist::{GateId, NetId, Netlist, NetlistError};
use xtalk_tech::cell::StageSignal;
use xtalk_tech::{Library, Process};
use xtalk_wave::sensitize;

/// Identifier of a timing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TNodeId(pub u32);

impl TNodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a stage instance (an index into [`TimingGraph::stages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

impl StageId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compressed-sparse-row relation: `row(i)` of the `i`-th source is the
/// contiguous slice `items[offsets[i]..offsets[i + 1]]`. Rows are stored in
/// source order, so a full scan is one linear walk over `items`.
#[derive(Debug, Clone, Default)]
pub struct Csr<T> {
    items: Vec<T>,
    offsets: Vec<u32>,
}

impl<T> Csr<T> {
    /// Builds the relation from per-source rows, preserving row order.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for row in &rows {
            total += row.len() as u32;
            offsets.push(total);
        }
        let mut items = Vec::with_capacity(total as usize);
        for row in rows {
            items.extend(row);
        }
        Csr { items, offsets }
    }

    /// Number of sources (rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The row of source `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All items, flattened in row order.
    #[inline]
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

/// What a timing node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TNodeKind {
    /// A netlist net.
    Net(NetId),
    /// A cell-internal net of a gate instance.
    Internal {
        /// The owning gate.
        gate: GateId,
        /// Internal net index within the cell.
        index: u32,
    },
}

/// One timing node.
#[derive(Debug, Clone)]
pub struct TNode {
    /// What the node represents.
    pub kind: TNodeKind,
    /// `true` when the node starts the clock domain (primary input).
    pub is_start: bool,
    /// `true` when arrivals here are endpoints (primary output or
    /// flip-flop data pin).
    pub is_end: bool,
}

/// One stage-input connection.
#[derive(Debug, Clone, Copy)]
pub struct TInput {
    /// Driving timing node.
    pub node: TNodeId,
    /// Index into the driving *net*'s `loads` (for Elmore wire delay);
    /// `None` for cell-internal connections.
    pub sink: Option<usize>,
}

/// One consumer of a timing node: `(stage, input slot)`.
#[derive(Debug, Clone, Copy)]
pub struct FanoutArc {
    /// The consuming stage.
    pub stage: StageId,
    /// The input slot within that stage.
    pub slot: u32,
}

/// One stage instance of the expanded graph.
///
/// Coupling capacitances on the output net live in the graph-level CSR
/// relation [`TimingGraph::couplings_of`], not on the instance.
#[derive(Debug, Clone)]
pub struct StageInst {
    /// The owning gate.
    pub gate: GateId,
    /// Stage index within the cell.
    pub stage: usize,
    /// Per-slot inputs.
    pub inputs: Vec<TInput>,
    /// Output timing node.
    pub output: TNodeId,
    /// `true` when this stage belongs to a flip-flop's clock-to-Q launch
    /// chain (slot 0 is driven by the clock edge).
    pub is_launch: bool,
    /// Fixed grounded load on the output (diffusion + wire + pins or
    /// internal gate caps), farads.
    pub cground: f64,
    /// Sensitizing side values per `[slot][output-rising as usize]`;
    /// `None` marks a non-sensitizable arc. Chosen for the *slowest*
    /// sensitizing assignment (max-delay analysis).
    pub sides: Vec<[Option<Vec<f64>>; 2]>,
    /// Like `sides` but for the *fastest* sensitizing assignment
    /// (min-delay / hold analysis).
    pub sides_fast: Vec<[Option<Vec<f64>>; 2]>,
}

/// The expanded timing graph.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// All timing nodes.
    pub nodes: Vec<TNode>,
    /// All stage instances.
    pub stages: Vec<StageInst>,
    /// Stage ids in topological order.
    pub topo: Vec<StageId>,
    /// Stage ids grouped into dependency levels (CSR): every stage in level
    /// `k` depends only on outputs of levels `< k`, so stages within one
    /// level can be evaluated in parallel.
    levels: Csr<StageId>,
    /// For each timing node, the arcs consuming it (CSR).
    fanout: Csr<FanoutArc>,
    /// Net-id to timing-node mapping.
    pub net_node: Vec<TNodeId>,
    /// For each timing node, the stage producing it (`None` for
    /// startpoints). Every non-start node has exactly one producer.
    producer: Vec<Option<StageId>>,
    /// Coupling capacitances on each stage's output net (CSR by stage):
    /// `(other net, cap)`.
    couplings: Csr<(NetId, f64)>,
    /// Dependency level of each stage (its index into the level relation).
    pub stage_level: Vec<usize>,
    /// First dependency level at which each timing node's state is final:
    /// `0` for startpoints, `stage_level[producer] + 1` for produced nodes,
    /// `u32::MAX` for floating non-start nodes (never calculated). A stage
    /// evaluated at level `L` may read exactly the nodes with
    /// `node_calc_level <= L` — the engine's static "calculated" rule (see
    /// [`TimingGraph::calculated_at`]).
    pub node_calc_level: Vec<u32>,
}

impl TimingGraph {
    /// Adjacency memory layout of this graph build, recorded in bench
    /// output (`BENCH_sta.json`) so layout A/Bs stay attributable.
    pub const LAYOUT: &'static str = "csr";

    /// Expands `netlist` against `library` into a stage-level timing graph.
    ///
    /// # Errors
    ///
    /// [`NetlistError`] for unknown cells or a cyclic expanded graph (which
    /// a validated netlist cannot produce).
    pub fn build(
        netlist: &Netlist,
        library: &Library,
        process: &Process,
        parasitics: &Parasitics,
    ) -> Result<Self, NetlistError> {
        let vdd = process.vdd;
        let mut nodes: Vec<TNode> = Vec::new();
        let mut net_node = Vec::with_capacity(netlist.net_count());

        // Which nets feed flip-flop D pins (endpoints).
        let mut feeds_d: Vec<bool> = vec![false; netlist.net_count()];
        for gate in netlist.gates() {
            if let Some(cell) = library.cell(&gate.cell) {
                if let Some(seq) = &cell.seq {
                    feeds_d[gate.inputs[seq.d_pin].index()] = true;
                }
            }
        }

        for (ni, net) in netlist.nets().iter().enumerate() {
            let id = TNodeId(nodes.len() as u32);
            nodes.push(TNode {
                kind: TNodeKind::Net(NetId(ni as u32)),
                is_start: net.is_primary_input,
                is_end: net.is_primary_output || feeds_d[ni],
            });
            net_node.push(id);
        }

        // Pin-cap sums per net (loads seen by the driver).
        let mut pin_cap: Vec<f64> = vec![0.0; netlist.net_count()];
        for gate in netlist.gates() {
            let cell = library
                .cell(&gate.cell)
                .ok_or_else(|| NetlistError::UnknownCell {
                    cell: gate.cell.clone(),
                })?;
            for (pin, &net) in gate.inputs.iter().enumerate() {
                pin_cap[net.index()] += cell.input_cap.get(pin).copied().unwrap_or(0.0);
            }
        }

        let mut stages: Vec<StageInst> = Vec::new();
        let mut coupling_rows: Vec<Vec<(NetId, f64)>> = Vec::new();
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let gate_id = GateId(gi as u32);
            let cell = library.cell(&gate.cell).expect("checked above");

            // Create internal timing nodes for this cell instance.
            let internal: Vec<TNodeId> = (0..cell.internal_nodes)
                .map(|k| {
                    let id = TNodeId(nodes.len() as u32);
                    nodes.push(TNode {
                        kind: TNodeKind::Internal {
                            gate: gate_id,
                            index: k as u32,
                        },
                        is_start: false,
                        is_end: false,
                    });
                    id
                })
                .collect();

            // Internal gate-cap loads: sum stage input caps per internal net.
            let mut internal_load = vec![0.0f64; cell.internal_nodes];
            for stage in &cell.stages {
                for (slot, sig) in stage.inputs.iter().enumerate() {
                    if let StageSignal::Internal(k) = sig {
                        internal_load[*k] += stage.input_cap(slot, process);
                    }
                }
            }

            let is_seq = cell.is_sequential();
            let clk_input: Option<TInput> = if is_seq {
                let seq = cell.seq.as_ref().expect("sequential");
                let clk_net = gate.inputs[seq.clk_pin];
                let sink = netlist
                    .net(clk_net)
                    .loads
                    .iter()
                    .position(|&(g, p)| g == gate_id && p == seq.clk_pin);
                Some(TInput {
                    node: net_node[clk_net.index()],
                    sink,
                })
            } else {
                None
            };

            for (si, stage) in cell.stages.iter().enumerate() {
                // Resolve inputs.
                let mut inputs = Vec::with_capacity(stage.inputs.len());
                for sig in &stage.inputs {
                    let inp = match sig {
                        StageSignal::Pin(p) => {
                            let net = gate.inputs[*p];
                            let sink = netlist
                                .net(net)
                                .loads
                                .iter()
                                .position(|&(g, pin)| g == gate_id && pin == *p);
                            TInput {
                                node: net_node[net.index()],
                                sink,
                            }
                        }
                        StageSignal::Internal(k) => TInput {
                            node: internal[*k],
                            sink: None,
                        },
                        StageSignal::Launch => clk_input.expect("launch in sequential cell"),
                    };
                    inputs.push(inp);
                }
                let is_launch = stage
                    .inputs
                    .iter()
                    .any(|s| matches!(s, StageSignal::Launch));

                // Output node and load.
                let (output, cground, couplings) = match stage.output {
                    StageSignal::Pin(_) => {
                        let net = gate.output;
                        let np = &parasitics.nets[net.index()];
                        (
                            net_node[net.index()],
                            stage.output_diffusion_cap(process) + np.cwire + pin_cap[net.index()],
                            np.couplings
                                .iter()
                                .map(|c| (c.other, c.c))
                                .collect::<Vec<_>>(),
                        )
                    }
                    StageSignal::Internal(k) => (
                        internal[k],
                        stage.output_diffusion_cap(process) + internal_load[k],
                        Vec::new(),
                    ),
                    StageSignal::Launch => unreachable!("stages never drive Launch"),
                };

                // Sensitization per slot and output direction.
                let sides: Vec<[Option<Vec<f64>>; 2]> = (0..stage.inputs.len())
                    .map(|slot| {
                        [
                            sensitize::side_values(stage, slot, false, vdd),
                            sensitize::side_values(stage, slot, true, vdd),
                        ]
                    })
                    .collect();
                let sides_fast: Vec<[Option<Vec<f64>>; 2]> = (0..stage.inputs.len())
                    .map(|slot| {
                        [
                            sensitize::side_values_with(stage, slot, false, vdd, true),
                            sensitize::side_values_with(stage, slot, true, vdd, true),
                        ]
                    })
                    .collect();

                stages.push(StageInst {
                    gate: gate_id,
                    stage: si,
                    inputs,
                    output,
                    is_launch,
                    cground,
                    sides,
                    sides_fast,
                });
                coupling_rows.push(couplings);
            }
        }
        let couplings = Csr::from_rows(coupling_rows);

        // Fanout (CSR, two passes: count then fill) and producers.
        let n = nodes.len();
        let mut fan_offsets = vec![0u32; n + 1];
        for stage in &stages {
            for input in &stage.inputs {
                fan_offsets[input.node.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fan_offsets[i + 1] += fan_offsets[i];
        }
        let mut fan_items = vec![
            FanoutArc {
                stage: StageId(0),
                slot: 0,
            };
            fan_offsets[n] as usize
        ];
        let mut cursor = fan_offsets[..n].to_vec();
        for (si, stage) in stages.iter().enumerate() {
            for (slot, input) in stage.inputs.iter().enumerate() {
                let at = &mut cursor[input.node.index()];
                fan_items[*at as usize] = FanoutArc {
                    stage: StageId(si as u32),
                    slot: slot as u32,
                };
                *at += 1;
            }
        }
        let fanout = Csr {
            items: fan_items,
            offsets: fan_offsets,
        };

        let mut producer: Vec<Option<StageId>> = vec![None; n];
        for (si, stage) in stages.iter().enumerate() {
            producer[stage.output.index()] = Some(StageId(si as u32));
        }

        // Topological order (Kahn over stage dependencies).
        let mut indegree: Vec<usize> = stages
            .iter()
            .map(|s| {
                s.inputs
                    .iter()
                    .filter(|i| producer[i.node.index()].is_some())
                    .count()
            })
            .collect();
        let mut topo: Vec<StageId> = Vec::with_capacity(stages.len());
        let mut queue: Vec<usize> = (0..stages.len()).filter(|&s| indegree[s] == 0).collect();
        let mut head = 0;
        let mut resolved: Vec<bool> = producer.iter().map(|p| p.is_none()).collect();
        while head < queue.len() {
            let s = queue[head];
            head += 1;
            topo.push(StageId(s as u32));
            let out = stages[s].output;
            if !resolved[out.index()] {
                resolved[out.index()] = true;
                for arc in fanout.row(out.index()) {
                    let consumer = arc.stage.index();
                    indegree[consumer] -= 1;
                    if indegree[consumer] == 0 {
                        queue.push(consumer);
                    }
                }
            }
        }
        if topo.len() != stages.len() {
            // Find a net on the cycle for the error message.
            let stuck = (0..stages.len())
                .find(|&s| indegree[s] > 0)
                .expect("cycle implies a stuck stage");
            let name = match nodes[stages[stuck].output.index()].kind {
                TNodeKind::Net(n) => netlist.net(n).name.clone(),
                TNodeKind::Internal { gate, index } => {
                    format!("{}#i{}", netlist.gate(gate).name, index)
                }
            };
            return Err(NetlistError::CombinationalLoop { net: name });
        }

        // Dependency levels for parallel evaluation.
        let mut node_level: Vec<usize> = vec![0; n];
        let mut stage_level: Vec<usize> = vec![0; stages.len()];
        for &si in &topo {
            let stage = &stages[si.index()];
            let lvl = stage
                .inputs
                .iter()
                .map(|i| node_level[i.node.index()])
                .max()
                .unwrap_or(0);
            stage_level[si.index()] = lvl;
            let out = stage.output.index();
            node_level[out] = node_level[out].max(lvl + 1);
        }
        let n_levels = stage_level.iter().copied().max().map_or(0, |m| m + 1);
        // Levels as CSR (count, then fill in topological order so the order
        // within each level matches the topological walk).
        let mut lvl_offsets = vec![0u32; n_levels + 1];
        for &lvl in &stage_level {
            lvl_offsets[lvl + 1] += 1;
        }
        for l in 0..n_levels {
            lvl_offsets[l + 1] += lvl_offsets[l];
        }
        let mut lvl_items = vec![StageId(0); stages.len()];
        let mut lvl_cursor = lvl_offsets[..n_levels].to_vec();
        for &si in &topo {
            let at = &mut lvl_cursor[stage_level[si.index()]];
            lvl_items[*at as usize] = si;
            *at += 1;
        }
        let levels = Csr {
            items: lvl_items,
            offsets: lvl_offsets,
        };

        let node_calc_level: Vec<u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                if node.is_start {
                    0
                } else if let Some(p) = producer[i] {
                    stage_level[p.index()] as u32 + 1
                } else {
                    u32::MAX
                }
            })
            .collect();

        Ok(TimingGraph {
            nodes,
            stages,
            topo,
            levels,
            fanout,
            net_node,
            producer,
            couplings,
            stage_level,
            node_calc_level,
        })
    }

    /// Whether `node`'s state is final when a stage at dependency level
    /// `stage_level` is evaluated. This is the breadth-first schedule's
    /// *static* "calculated" predicate: startpoints are final from level 0,
    /// produced nodes one level after their producer, and it is identical
    /// for the serial level loop and the wavefront scheduler (which turns
    /// exactly these relations into dependency edges).
    #[inline]
    pub fn calculated_at(&self, node: TNodeId, stage_level: usize) -> bool {
        (self.node_calc_level[node.index()] as usize) <= stage_level
    }

    /// Number of dependency levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.levels.rows()
    }

    /// The stages of dependency level `l`, in topological order.
    #[inline]
    pub fn level(&self, l: usize) -> &[StageId] {
        self.levels.row(l)
    }

    /// The arcs consuming `node`, in stage order.
    #[inline]
    pub fn fanout_of(&self, node: TNodeId) -> &[FanoutArc] {
        self.fanout.row(node.index())
    }

    /// Coupling capacitances on the output net of `stage`: `(other, cap)`.
    #[inline]
    pub fn couplings_of(&self, stage: StageId) -> &[(NetId, f64)] {
        self.couplings.row(stage.index())
    }

    /// The stage producing `node`, or `None` for startpoints and floating
    /// nodes. Every non-start node has exactly one producer.
    #[inline]
    pub fn producer_of(&self, node: TNodeId) -> Option<StageId> {
        self.producer[node.index()]
    }

    /// Number of timing arcs (stage-input connections).
    pub fn arc_count(&self) -> usize {
        self.fanout.items().len()
    }

    /// Endpoint timing nodes.
    pub fn endpoints(&self) -> impl Iterator<Item = TNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_end)
            .map(|(i, _)| TNodeId(i as u32))
    }

    /// `(output node, producing stage)` pairs in node-id order — iteration
    /// (and anything derived from it) is deterministic. Allocation-free:
    /// reads straight off the producer column.
    pub fn producers(&self) -> impl Iterator<Item = (TNodeId, StageId)> + '_ {
        self.producer
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|si| (TNodeId(i as u32), si)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::Parasitics;
    use xtalk_netlist::{bench, data, generator, generator::GeneratorConfig};
    use xtalk_tech::{Library, Process};

    fn build_for(text: &str) -> (TimingGraph, Netlist) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = bench::parse(text, &l).expect("parse");
        let para = Parasitics::empty(nl.net_count());
        let g = TimingGraph::build(&nl, &l, &p, &para).expect("build");
        (g, nl)
    }

    #[test]
    fn inverter_chain_graph_shape() {
        let (g, nl) = build_for("INPUT(a)\nOUTPUT(y)\nw = NOT(a)\ny = NOT(w)\n");
        assert_eq!(g.stages.len(), 2);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.nodes.len(), nl.net_count());
        assert_eq!(g.topo.len(), 2);
        // Topological order puts w's driver first.
        let first = &g.stages[g.topo[0].index()];
        assert_eq!(nl.gate(first.gate).name, "g_w");
    }

    #[test]
    fn composite_cells_add_internal_nodes() {
        let (g, nl) = build_for("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
        // XOR2X1 has 4 stages and 3 internal nodes.
        assert_eq!(g.stages.len(), 4);
        assert_eq!(g.nodes.len(), nl.net_count() + 3);
    }

    #[test]
    fn s27_graph_is_consistent() {
        let (g, nl) = build_for(data::S27_BENCH);
        assert_eq!(g.topo.len(), g.stages.len());
        // Every net node exists and endpoints include G17 and the FF D nets.
        let g17 = nl.net_by_name("G17").expect("g17");
        assert!(g.nodes[g.net_node[g17.index()].index()].is_end);
        let endpoints: Vec<_> = g.endpoints().collect();
        assert!(endpoints.len() >= 4, "G17 + 3 D pins");
        // Launch stages exist for the 3 FFs (2 stages each).
        let launches = g.stages.iter().filter(|s| s.is_launch).count();
        assert_eq!(launches, 3, "one Launch-driven stage per FF");
    }

    #[test]
    fn couplings_attached_to_net_stages() {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = generator::generate(&GeneratorConfig::small(13), &l).expect("gen");
        let placement = xtalk_layout::place::place(&nl, &l, &p);
        let routes = xtalk_layout::route::route(&nl, &placement, &p);
        let para = xtalk_layout::extract::extract(&nl, &routes, &p);
        let g = TimingGraph::build(&nl, &l, &p, &para).expect("build");
        let coupled = (0..g.stages.len())
            .filter(|&si| !g.couplings_of(StageId(si as u32)).is_empty())
            .count();
        assert!(coupled > 0, "extracted couplings must reach the graph");
        // Internal stages never carry couplings.
        for (si, s) in g.stages.iter().enumerate() {
            if let TNodeKind::Internal { .. } = g.nodes[s.output.index()].kind {
                assert!(g.couplings_of(StageId(si as u32)).is_empty());
            }
        }
    }

    #[test]
    fn loads_are_positive() {
        let (g, _) = build_for(data::C17_BENCH);
        for s in &g.stages {
            assert!(s.cground > 0.0, "every stage drives some capacitance");
        }
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let (g, _) = build_for(data::S27_BENCH);
        // Fanout rows cover exactly the stage-input arcs.
        let mut arcs = 0;
        for (i, _) in g.nodes.iter().enumerate() {
            for arc in g.fanout_of(TNodeId(i as u32)) {
                let stage = &g.stages[arc.stage.index()];
                assert_eq!(stage.inputs[arc.slot as usize].node.index(), i);
                arcs += 1;
            }
        }
        assert_eq!(arcs, g.arc_count());
        // Levels partition the stages and respect the level map.
        let mut seen = vec![false; g.stages.len()];
        for l in 0..g.level_count() {
            for &si in g.level(l) {
                assert_eq!(g.stage_level[si.index()], l);
                assert!(!seen[si.index()], "stage appears in one level only");
                seen[si.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Producers invert the output map, in node-id order.
        let mut last = None;
        for (node, si) in g.producers() {
            assert_eq!(g.stages[si.index()].output, node);
            assert!(last < Some(node), "node-id order");
            last = Some(node);
        }
    }

    #[test]
    fn dff_d_pin_has_no_outgoing_stage() {
        let (g, nl) = build_for(data::S27_BENCH);
        // The D input nets of FFs must not appear as a *switching* input of
        // any launch stage (the clock does).
        for s in g.stages.iter().filter(|s| s.is_launch) {
            let clk = nl.net_by_name("CLK").expect("clk");
            assert_eq!(s.inputs[0].node, g.net_node[clk.index()]);
        }
    }
}
