//! Analysis modes — the five treatments of coupling capacitance from the
//! paper's experimental section.

use std::fmt;

/// How coupling capacitances are treated during an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisMode {
    /// All coupling caps grounded at face value: coupling ignored entirely.
    /// A lower comparison bound, not a safe analysis (paper: "Best case").
    BestCase,
    /// All coupling caps grounded at twice their value: the classical
    /// passive margin. Not a guaranteed bound either — the active coupling
    /// model can exceed it (paper: "Static doubled").
    StaticDoubled,
    /// Every coupling cap fires the active three-phase model: a safe but
    /// maximally pessimistic bound (paper: "Worst case").
    WorstCase,
    /// The paper's §5.1 algorithm: per victim transition, a best-case
    /// waveform bounds the victim's earliest activity; each coupling is
    /// active only when its aggressor's last opposite transition can still
    /// overlap (or the aggressor is not yet calculated). Linear complexity,
    /// two waveform calculations per arc, still a safe upper bound.
    OneStep,
    /// The paper's §5.2 algorithm: repeat the one-step analysis, feeding
    /// each pass the previous pass's quiescent times (so no "uncalculated"
    /// pessimism remains), while the longest-path delay keeps decreasing.
    Iterative {
        /// Recompute only stages that can lie on long paths between passes
        /// (the Esperance acceleration of Benkoski et al.).
        esperance: bool,
    },
    /// Extension (not in the paper's tables): min-delay / hold analysis.
    /// Earliest arrivals are propagated, side inputs take their *fastest*
    /// sensitizing values, and every coupling cap is assumed to switch in
    /// the same direction simultaneously (contributing no load) — a safe
    /// *lower* bound on path delay. The paper notes same-direction
    /// switching exists but leaves it out of scope (§5.1).
    MinDelay,
}

impl AnalysisMode {
    /// All five modes, in the paper's table order.
    pub fn all() -> [AnalysisMode; 5] {
        [
            AnalysisMode::BestCase,
            AnalysisMode::StaticDoubled,
            AnalysisMode::WorstCase,
            AnalysisMode::OneStep,
            AnalysisMode::Iterative { esperance: false },
        ]
    }

    /// `true` for modes whose result is a safe upper bound on the longest
    /// path delay under arbitrary aggressor activity.
    /// (For [`AnalysisMode::MinDelay`] this returns `false`: it is a safe
    /// *lower* bound, not an upper one.)
    pub fn is_safe_bound(&self) -> bool {
        !matches!(
            self,
            AnalysisMode::BestCase | AnalysisMode::StaticDoubled | AnalysisMode::MinDelay
        )
    }
}

impl fmt::Display for AnalysisMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisMode::BestCase => write!(f, "Best case"),
            AnalysisMode::StaticDoubled => write!(f, "Static doubled"),
            AnalysisMode::WorstCase => write!(f, "Worst case"),
            AnalysisMode::OneStep => write!(f, "One step"),
            AnalysisMode::Iterative { esperance: false } => write!(f, "Iterative"),
            AnalysisMode::Iterative { esperance: true } => {
                write!(f, "Iterative (Esperance)")
            }
            AnalysisMode::MinDelay => write!(f, "Min delay (hold)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_rows() {
        assert_eq!(AnalysisMode::BestCase.to_string(), "Best case");
        assert_eq!(AnalysisMode::StaticDoubled.to_string(), "Static doubled");
        assert_eq!(AnalysisMode::WorstCase.to_string(), "Worst case");
        assert_eq!(AnalysisMode::OneStep.to_string(), "One step");
        assert_eq!(
            AnalysisMode::Iterative { esperance: false }.to_string(),
            "Iterative"
        );
        assert_eq!(
            AnalysisMode::Iterative { esperance: true }.to_string(),
            "Iterative (Esperance)"
        );
    }

    #[test]
    fn min_delay_display_and_safety() {
        assert_eq!(AnalysisMode::MinDelay.to_string(), "Min delay (hold)");
        assert!(!AnalysisMode::MinDelay.is_safe_bound());
    }

    #[test]
    fn safety_classification() {
        assert!(!AnalysisMode::BestCase.is_safe_bound());
        assert!(!AnalysisMode::StaticDoubled.is_safe_bound());
        assert!(AnalysisMode::WorstCase.is_safe_bound());
        assert!(AnalysisMode::OneStep.is_safe_bound());
        assert!(AnalysisMode::Iterative { esperance: true }.is_safe_bound());
    }

    #[test]
    fn all_lists_five_modes() {
        assert_eq!(AnalysisMode::all().len(), 5);
    }
}
