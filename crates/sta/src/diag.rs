//! Structured diagnostics for degrade-don't-die analysis.
//!
//! The paper waives solver robustness by fiat ("because of the fine
//! discretization of the tables we do not get convergence problems", §3). A
//! production analyzer cannot: one bad stage used to abort the whole run via
//! [`crate::StaError::Stage`]. Instead, every recoverable fault is recorded
//! as a [`Diagnostic`] — which node, which [`FaultClass`], how severe, and
//! what conservative bound was substituted — and collected into
//! [`crate::ModeReport::diagnostics`] so the analysis completes with a
//! *never-optimistic* answer. Strict mode
//! ([`crate::ExecConfig::with_strict`]) restores fail-fast behaviour.

use std::fmt;

/// How bad a recoverable fault is.
///
/// Ordering is by severity: `Info < Warning < Error`. The CLI keys its exit
/// code to the worst severity present in a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: no numerical impact on the reported arrivals.
    Info,
    /// A fault was contained with zero accuracy impact (e.g. a corrupt
    /// cache entry was evicted and the stage re-solved exactly).
    Warning,
    /// A stage result was replaced by a conservative bound: the run
    /// completed but the reported delay is degraded (never optimistic).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The failure taxonomy (DESIGN.md D8): what kind of fault was contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultClass {
    /// A NaN or infinite value reached the solver boundary (load
    /// capacitance, side voltage, or a cache key input).
    NonFiniteValue,
    /// The stage integrator exceeded its step budget or its Newton iterate
    /// left the finite domain.
    SolverDivergence,
    /// The integration produced a waveform that failed monotonicity or
    /// finiteness validation.
    NonMonotoneWaveform,
    /// A table model or stage description was incomplete (missing side
    /// value, out-of-range slot).
    TruncatedModel,
    /// A worker panicked mid-job; the panic was contained at the stage
    /// boundary instead of tearing down the pool.
    WorkerPanic,
    /// A stage-solve cache entry failed its integrity check and was
    /// evicted rather than served.
    CacheCorruption,
    /// The iterative coupling fixed-point loop failed to settle (pass cap
    /// hit or oscillation detected); the affected result was clamped to
    /// the guaranteed-conservative one-step bound.
    FixedPointDivergence,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::NonFiniteValue => write!(f, "non-finite value"),
            FaultClass::SolverDivergence => write!(f, "solver divergence"),
            FaultClass::NonMonotoneWaveform => write!(f, "non-monotone waveform"),
            FaultClass::TruncatedModel => write!(f, "truncated model"),
            FaultClass::WorkerPanic => write!(f, "worker panic"),
            FaultClass::CacheCorruption => write!(f, "cache corruption"),
            FaultClass::FixedPointDivergence => write!(f, "fixed-point divergence"),
        }
    }
}

/// One contained fault: where it happened, what it was, and what the
/// analysis did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity (drives the CLI exit code).
    pub severity: Severity,
    /// The gate or net the fault was attributed to.
    pub node: String,
    /// The failure class.
    pub fault: FaultClass,
    /// The conservative arrival bound substituted for the faulty result,
    /// in seconds — `None` when containment had no numerical impact.
    pub substituted_bound: Option<f64>,
    /// Human-readable context (the underlying error message).
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at {}: {}",
            self.severity, self.fault, self.node, self.detail
        )?;
        if let Some(bound) = self.substituted_bound {
            write!(f, " (substituted conservative bound {:.4} ns)", bound * 1e9)?;
        }
        Ok(())
    }
}

/// The worst severity present, or `None` for a clean run.
#[must_use]
pub fn worst_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_exit_codes() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            worst_severity(&[
                Diagnostic {
                    severity: Severity::Warning,
                    node: "n1".into(),
                    fault: FaultClass::CacheCorruption,
                    substituted_bound: None,
                    detail: "evicted".into(),
                },
                Diagnostic {
                    severity: Severity::Error,
                    node: "G17".into(),
                    fault: FaultClass::SolverDivergence,
                    substituted_bound: Some(1e-9),
                    detail: "step budget".into(),
                },
            ]),
            Some(Severity::Error)
        );
        assert_eq!(worst_severity(&[]), None);
    }

    #[test]
    fn display_mentions_node_and_bound() {
        let d = Diagnostic {
            severity: Severity::Error,
            node: "G17".into(),
            fault: FaultClass::NonFiniteValue,
            substituted_bound: Some(2.5e-9),
            detail: "NaN load".into(),
        };
        let s = d.to_string();
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("G17"), "{s}");
        assert!(s.contains("2.5000 ns"), "{s}");
        let clean = Diagnostic {
            substituted_bound: None,
            ..d
        };
        assert!(!clean.to_string().contains("substituted"));
    }
}
