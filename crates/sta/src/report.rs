//! Timing reports and critical-path reconstruction.

use std::fmt;
use std::time::Duration;

use xtalk_netlist::{GateId, NetId, Netlist};
use xtalk_tech::cell::{Cell, StageSignal};
use xtalk_tech::Library;

use crate::graph::{TNodeId, TNodeKind, TimingGraph};
use crate::kernel::NodeState;
use crate::mode::AnalysisMode;

/// One gate-level step of a reported path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// The gate traversed.
    pub gate: GateId,
    /// Library cell name.
    pub cell: String,
    /// Input pin the path enters through (`usize::MAX` for a clock launch).
    pub pin: usize,
    /// The gate's output net.
    pub net: NetId,
    /// Direction of the output transition.
    pub rising: bool,
    /// Arrival time at the output, seconds.
    pub arrival: f64,
    /// Sensitizing constant voltages for the cell's other input pins
    /// (entry at `pin` is a placeholder) — directly usable as the side
    /// values of a transistor-level path simulation.
    pub side_values: Vec<f64>,
}

/// Arrival summary of one endpoint net.
#[derive(Debug, Clone, Copy)]
pub struct EndpointArrival {
    /// The endpoint net.
    pub net: NetId,
    /// Rise arrival, seconds (if the net can rise).
    pub rise: Option<f64>,
    /// Fall arrival, seconds (if the net can fall).
    pub fall: Option<f64>,
}

impl EndpointArrival {
    /// The later of the two arrivals.
    pub fn latest(&self) -> f64 {
        self.rise
            .unwrap_or(f64::NEG_INFINITY)
            .max(self.fall.unwrap_or(f64::NEG_INFINITY))
    }

    /// The earlier of the two arrivals.
    pub fn earliest(&self) -> f64 {
        self.rise
            .unwrap_or(f64::INFINITY)
            .min(self.fall.unwrap_or(f64::INFINITY))
    }
}

/// Work summary of one propagation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassStat {
    /// Longest (for min-delay: shortest) endpoint arrival after the pass,
    /// seconds.
    pub delay: f64,
    /// Logical stage-solver calls — the paper's work metric; calls answered
    /// by the stage-solve cache are included.
    pub solver_calls: usize,
    /// Newton integrations actually performed during the pass.
    pub newton_solves: usize,
    /// Solver calls answered by a reuse layer (per-stage warm-start memo or
    /// the keyed stage-solve cache).
    pub cache_hits: usize,
    /// Subset of `cache_hits` answered by the per-stage warm-start memo
    /// (the allocation-free layer).
    pub warm_hits: usize,
    /// Total Newton iterations consumed by the pass's integrations — the
    /// cost metric behind cache admission.
    pub newton_iters: usize,
    /// Per-solve Newton-iteration histogram: bucket 0 holds solves under 64
    /// iterations, then doubling bands to the `>= 4096` tail in bucket 7.
    pub iter_hist: [usize; 8],
    /// Subset of `cache_hits` answered by the characterized macromodel
    /// tables (DESIGN.md D12).
    pub table_hits: usize,
    /// Calls where a usable macromodel declined the query (out-of-grid,
    /// unfoldable load) and the solve fell back to the Newton path.
    pub table_fallbacks: usize,
    /// Largest certified interpolation-error bound among the pass's table
    /// hits, seconds (0 when no table answered).
    pub table_residual: f64,
}

impl PassStat {
    /// Cache hits as a fraction of the pass's solver calls (0 for an
    /// uncached or empty pass).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.solver_calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.solver_calls as f64
        }
    }
}

/// Result of one analysis run.
#[derive(Debug, Clone)]
pub struct ModeReport {
    /// The analysis that produced this report.
    pub mode: AnalysisMode,
    /// Longest-path delay (latest endpoint arrival; for
    /// [`AnalysisMode::MinDelay`] the *earliest* endpoint arrival), seconds.
    pub longest_delay: f64,
    /// Arrival summary per endpoint net.
    pub endpoints: Vec<EndpointArrival>,
    /// Per-net quiescent times `(fall, rise)`, seconds — the time after
    /// which the net is provably quiet in that direction (`None` when the
    /// net never makes the transition). Indexed by `NetId`.
    pub net_quiet: Vec<(Option<f64>, Option<f64>)>,
    /// The endpoint net (when the endpoint is a net node).
    pub endpoint_net: Option<NetId>,
    /// Direction of the endpoint transition.
    pub endpoint_rising: bool,
    /// Gate-level critical path from launch to endpoint.
    pub critical_path: Vec<PathStep>,
    /// Full propagation passes performed.
    pub passes: usize,
    /// Longest delay after each pass (iterative convergence trace).
    pub pass_delays: Vec<f64>,
    /// Logical stage-solver calls across all passes (the paper's work
    /// measure; cache hits included).
    pub stage_solves: usize,
    /// Newton integrations actually performed across all passes
    /// (`stage_solves - cache_hits`).
    pub newton_solves: usize,
    /// Solver calls answered by a reuse layer across all passes.
    pub cache_hits: usize,
    /// Subset of `cache_hits` answered by the per-stage warm-start memo
    /// across all passes.
    pub warm_hits: usize,
    /// Total Newton iterations consumed across all passes.
    pub newton_iters: usize,
    /// Solver calls answered by the characterized macromodel tables across
    /// all passes (0 in signoff mode).
    pub table_hits: usize,
    /// Calls where a usable macromodel declined the query and the solve
    /// fell back to the Newton path, across all passes.
    pub table_fallbacks: usize,
    /// Largest certified interpolation-error bound among all table hits,
    /// seconds — the worst-case pessimism the macromodel may have added to
    /// any reported arrival.
    pub table_residual: f64,
    /// Per-pass work breakdown (delay, solver calls, Newton solves, cache
    /// hits, warm hits, iteration histogram), in pass order.
    pub pass_stats: Vec<PassStat>,
    /// Faults contained during the analysis (empty on a clean run). Each
    /// records the degraded node and the conservative bound substituted for
    /// it — see `DESIGN.md` D8 for the failure taxonomy.
    pub diagnostics: Vec<crate::diag::Diagnostic>,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

impl ModeReport {
    /// The worst severity among the contained faults (`None` on a clean
    /// run). Drives the CLI exit code.
    #[must_use]
    pub fn worst_severity(&self) -> Option<crate::diag::Severity> {
        crate::diag::worst_severity(&self.diagnostics)
    }

    /// Whether the analysis degraded (substituted at least one conservative
    /// bound) instead of running clean.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.diagnostics.is_empty()
    }
}

impl fmt::Display for ModeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>9.3} ns   ({} passes, {} solves, {:.2?})",
            self.mode.to_string(),
            self.longest_delay * 1e9,
            self.passes,
            self.stage_solves,
            self.runtime
        )?;
        if self.cache_hits > 0 {
            let ratio = self.cache_hits as f64 / self.stage_solves.max(1) as f64;
            write!(
                f,
                "   [{} newton, {} cached ({} warm), {:.0}% hit]",
                self.newton_solves,
                self.cache_hits,
                self.warm_hits,
                ratio * 100.0
            )?;
        }
        // Only runs that actually used the macromodel mention it: signoff
        // output stays byte-identical to the pre-macromodel engine.
        if self.table_hits > 0 {
            write!(
                f,
                "   [{} table, {} fallback, residual <= {:.1} ps]",
                self.table_hits,
                self.table_fallbacks,
                self.table_residual * 1e12
            )?;
        }
        // Only a degraded run mentions diagnostics: clean output stays
        // byte-identical to the diagnostics-free engine.
        if !self.diagnostics.is_empty() {
            write!(f, "   [{} diagnostics]", self.diagnostics.len())?;
        }
        writeln!(f)
    }
}

/// Sensitizing side voltages for a cell-level arc through `pin`.
///
/// Returns one voltage per input pin (the `pin` entry is a placeholder 0);
/// `None` when the cell has no single-pin sensitization (sequential cells).
pub fn cell_side_values(cell: &Cell, pin: usize, vdd: f64) -> Option<Vec<f64>> {
    cell.sensitizing_side_values(pin, vdd)
}

/// Reconstructs the gate-level critical path ending at `endpoint`.
pub(crate) fn build_path(
    netlist: &Netlist,
    library: &Library,
    graph: &TimingGraph,
    states: &[NodeState],
    endpoint: TNodeId,
    endpoint_rising: bool,
) -> Vec<PathStep> {
    let mut steps_rev: Vec<PathStep> = Vec::new();
    let mut node = endpoint;
    let mut rising = endpoint_rising;

    #[allow(clippy::while_let_loop)] // two-level break structure reads better
    loop {
        let Some(info) = states[node.index()].get(rising) else {
            break;
        };
        let Some(pred) = info.pred else {
            break; // reached a startpoint
        };
        let stage_inst = &graph.stages[pred.stage];
        let gate_id = stage_inst.gate;
        let gate = netlist.gate(gate_id);
        let cell = library.cell(&gate.cell);

        // If the current node is this gate's *output net*, a new gate-level
        // step begins here; walk back through the gate's internal stages to
        // find the entry pin.
        if let TNodeKind::Net(net) = graph.nodes[node.index()].kind {
            // Walk to the cell boundary.
            let mut walk_node = node;
            let mut walk_rising = rising;
            let mut entry_pin = usize::MAX;
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(winfo) = states[walk_node.index()].get(walk_rising) else {
                    break;
                };
                let Some(wpred) = winfo.pred else {
                    break;
                };
                let wsi = &graph.stages[wpred.stage];
                if wsi.gate != gate_id {
                    break;
                }
                let wgate = netlist.gate(wsi.gate);
                let wcell = library.cell(&wgate.cell).expect("validated cell");
                let wstage = &wcell.stages[wsi.stage];
                match wstage.inputs[wpred.slot] {
                    StageSignal::Pin(p) => {
                        entry_pin = p;
                        walk_node = wsi.inputs[wpred.slot].node;
                        walk_rising = wpred.input_rising;
                        break;
                    }
                    StageSignal::Launch => {
                        entry_pin = usize::MAX;
                        walk_node = wsi.inputs[wpred.slot].node;
                        walk_rising = wpred.input_rising;
                        break;
                    }
                    StageSignal::Internal(_) => {
                        walk_node = wsi.inputs[wpred.slot].node;
                        walk_rising = if wsi.is_launch
                            && matches!(wstage.inputs[wpred.slot], StageSignal::Launch)
                        {
                            true
                        } else {
                            wpred.input_rising
                        };
                    }
                }
            }
            let side_values = cell
                .and_then(|c| {
                    if entry_pin == usize::MAX {
                        None
                    } else {
                        cell_side_values(c, entry_pin, 3.3)
                    }
                })
                .unwrap_or_default();
            steps_rev.push(PathStep {
                gate: gate_id,
                cell: gate.cell.clone(),
                pin: entry_pin,
                net,
                rising,
                arrival: info.crossing,
                side_values,
            });
            node = walk_node;
            rising = walk_rising;
        } else {
            // Internal node: keep walking backwards.
            node = stage_inst.inputs[pred.slot].node;
            rising = pred.input_rising;
        }
        if steps_rev.len() > graph.stages.len() {
            break; // defensive: avoid infinite loops on corrupt state
        }
    }
    steps_rev.reverse();
    steps_rev
}

/// Setup-slack table: for a max-delay report and a clock period, lists the
/// `n` endpoints with the smallest slack (`period - latest arrival`),
/// worst first.
pub fn slack_table(netlist: &Netlist, report: &ModeReport, period: f64, n: usize) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<(f64, NetId)> = report
        .endpoints
        .iter()
        .map(|e| (period - e.latest(), e.net))
        .collect();
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12}   (period {:.3} ns, {} endpoints)",
        "Endpoint",
        "Slack [ns]",
        period * 1e9,
        rows.len()
    );
    for (slack, net) in rows.into_iter().take(n) {
        let _ = writeln!(
            out,
            "{:<24} {:>12.3}{}",
            netlist.net(net).name,
            slack * 1e9,
            if slack < 0.0 { "  VIOLATED" } else { "" }
        );
    }
    out
}

/// Labels of the per-solve Newton-iteration histogram buckets, matching
/// [`PassStat::iter_hist`]: doubling bands from `<64` to the `>=4096` tail.
pub const ITER_HIST_LABELS: [&str; 8] =
    ["<64", "<128", "<256", "<512", "<1k", "<2k", "<4k", ">=4k"];

/// Formats the solver/cache work of a report as one aligned table across
/// passes: per pass the logical calls, Newton integrations and iterations,
/// the reuse hit rate as a percentage (warm-memo subset called out), and
/// the labeled iteration histogram. A `total` row sums the run.
///
/// This replaces the earlier ad-hoc per-pass lines whose columns drifted
/// between passes (hit counts vs ratios, unlabeled histogram buckets).
pub fn solver_table(report: &ModeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{:>5} {:>8} {:>8} {:>9} {:>5} {:>6} {:>7}",
        "pass", "calls", "newton", "iters", "hit%", "warm", "table"
    );
    for label in ITER_HIST_LABELS {
        let _ = write!(out, " {label:>5}");
    }
    let _ = writeln!(out);
    let mut row = |tag: &str, s: &PassStat| {
        let _ = write!(
            out,
            "{:>5} {:>8} {:>8} {:>9} {:>4.0}% {:>6} {:>7}",
            tag,
            s.solver_calls,
            s.newton_solves,
            s.newton_iters,
            100.0 * s.hit_ratio(),
            s.warm_hits,
            s.table_hits
        );
        for count in s.iter_hist {
            let _ = write!(out, " {count:>5}");
        }
        let _ = writeln!(out);
    };
    let mut total = PassStat::default();
    for (i, s) in report.pass_stats.iter().enumerate() {
        row(&(i + 1).to_string(), s);
        total.solver_calls += s.solver_calls;
        total.newton_solves += s.newton_solves;
        total.cache_hits += s.cache_hits;
        total.warm_hits += s.warm_hits;
        total.newton_iters += s.newton_iters;
        total.table_hits += s.table_hits;
        total.table_fallbacks += s.table_fallbacks;
        total.table_residual = total.table_residual.max(s.table_residual);
        for (t, c) in total.iter_hist.iter_mut().zip(s.iter_hist) {
            *t += c;
        }
    }
    if report.pass_stats.len() > 1 {
        row("total", &total);
    }
    out
}

/// Formats the paper-style comparison table for a set of reports.
pub fn comparison_table(circuit: &str, cells: usize, reports: &[ModeReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Table: {circuit} ({cells} cells)");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>10} {:>10}",
        "Analysis", "Delay [ns]", "Passes", "CPU [s]"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>10} {:>10.2}",
            r.mode.to_string(),
            r.longest_delay * 1e9,
            r.passes,
            r.runtime.as_secs_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn side_values_nand3() {
        let l = lib();
        let c = l.cell("NAND3X1").expect("nand3");
        let v = cell_side_values(c, 1, 3.3).expect("sensitizable");
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 3.3);
        assert_eq!(v[2], 3.3);
    }

    #[test]
    fn side_values_nor_low() {
        let l = lib();
        let c = l.cell("NOR2X1").expect("nor2");
        let v = cell_side_values(c, 0, 3.3).expect("sensitizable");
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn side_values_mux_select() {
        let l = lib();
        let c = l.cell("MUX2X1").expect("mux");
        let v = cell_side_values(c, 2, 3.3).expect("sensitizable");
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 3.3);
    }

    #[test]
    fn side_values_aoi_oai() {
        let l = lib();
        let aoi = l.cell("AOI21X1").expect("aoi");
        let v = cell_side_values(aoi, 0, 3.3).expect("sensitizable");
        assert_eq!(v[1], 3.3);
        assert_eq!(v[2], 0.0);
        let oai = l.cell("OAI21X1").expect("oai");
        let v = cell_side_values(oai, 2, 3.3).expect("sensitizable");
        assert_eq!(v[0], 3.3);
    }

    #[test]
    fn side_values_reject_bad_pin_and_dff() {
        let l = lib();
        let inv = l.cell("INVX1").expect("inv");
        assert!(cell_side_values(inv, 4, 3.3).is_none());
        let dff = l.cell("DFFX1").expect("dff");
        assert!(cell_side_values(dff, 0, 3.3).is_none());
    }

    #[test]
    fn solver_table_aligns_passes_with_labeled_buckets() {
        let pass = |calls: usize, hits: usize, iters: usize| PassStat {
            delay: 1e-9,
            solver_calls: calls,
            newton_solves: calls - hits,
            cache_hits: hits,
            warm_hits: hits / 2,
            newton_iters: iters,
            iter_hist: [calls - hits, 0, 0, 0, 0, 0, 0, 1],
            table_hits: hits / 4,
            table_fallbacks: 1,
            table_residual: 2.5e-12,
        };
        let report = ModeReport {
            mode: AnalysisMode::Iterative { esperance: false },
            longest_delay: 1e-9,
            endpoints: Vec::new(),
            net_quiet: Vec::new(),
            endpoint_net: None,
            endpoint_rising: true,
            critical_path: Vec::new(),
            passes: 2,
            pass_delays: vec![1e-9, 1e-9],
            stage_solves: 300,
            newton_solves: 230,
            cache_hits: 70,
            warm_hits: 35,
            newton_iters: 9000,
            table_hits: 17,
            table_fallbacks: 2,
            table_residual: 2.5e-12,
            pass_stats: vec![pass(200, 20, 6000), pass(100, 50, 3000)],
            diagnostics: Vec::new(),
            runtime: Duration::from_millis(5),
        };
        let t = solver_table(&report);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 passes + total:\n{t}");
        // One aligned table: every row has the same width.
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "rows drifted out of alignment:\n{t}"
        );
        assert!(lines[0].contains("hit%"), "{t}");
        for label in ITER_HIST_LABELS {
            assert!(lines[0].contains(label), "missing bucket label {label}");
        }
        assert!(lines[1].trim_start().starts_with('1'), "{t}");
        assert!(lines[2].contains("50%"), "hit rate rendered as %:\n{t}");
        assert!(lines[3].trim_start().starts_with("total"), "{t}");
        // A single-pass report needs no total row.
        let single = ModeReport {
            pass_stats: vec![pass(10, 0, 100)],
            ..report
        };
        assert_eq!(solver_table(&single).lines().count(), 2);
    }

    #[test]
    fn comparison_table_formats() {
        let r = ModeReport {
            mode: AnalysisMode::BestCase,
            longest_delay: 10.5e-9,
            endpoints: Vec::new(),
            net_quiet: Vec::new(),
            endpoint_net: None,
            endpoint_rising: true,
            critical_path: Vec::new(),
            passes: 1,
            pass_delays: vec![10.5e-9],
            stage_solves: 123,
            newton_solves: 100,
            cache_hits: 23,
            warm_hits: 7,
            newton_iters: 4200,
            table_hits: 0,
            table_fallbacks: 0,
            table_residual: 0.0,
            pass_stats: vec![PassStat {
                delay: 10.5e-9,
                solver_calls: 123,
                newton_solves: 100,
                cache_hits: 23,
                warm_hits: 7,
                newton_iters: 4200,
                iter_hist: [100, 0, 0, 0, 0, 0, 0, 0],
                table_hits: 0,
                table_fallbacks: 0,
                table_residual: 0.0,
            }],
            diagnostics: Vec::new(),
            runtime: Duration::from_millis(12),
        };
        let t = comparison_table("s27", 13, std::slice::from_ref(&r));
        assert!(t.contains("s27 (13 cells)"));
        assert!(t.contains("Best case"));
        assert!(t.contains("10.500"));
        // The Display form surfaces the cache breakdown when hits occurred.
        let shown = r.to_string();
        assert!(shown.contains("123 solves"));
        assert!(shown.contains("23 cached (7 warm)"));
        let ps = r.pass_stats[0];
        assert!((ps.hit_ratio() - 23.0 / 123.0).abs() < 1e-12);
    }
}
