//! The waveform-propagation engine and the five coupling analyses.
//!
//! Propagation is the paper's §4 breadth-first scheme over the expanded
//! stage graph: one worst-case waveform per node and transition direction,
//! visited in topological order (linear in arcs). Coupling treatment per
//! [`AnalysisMode`] follows §5:
//!
//! - the **one-step** algorithm (§5.1) computes a best-case (all-quiet)
//!   waveform per victim transition to lower-bound the victim's earliest
//!   activity `t_bcs`, then marks each coupling cap active only when the
//!   aggressor's latest opposite activity `t_a` can still overlap
//!   (`t_a > t_bcs`) or the aggressor has not been calculated yet;
//! - the **iterative** algorithm (§5.2) stores every net's quiescent times
//!   after each full pass and re-runs the one-step analysis against that
//!   table while the longest-path delay keeps decreasing — optionally
//!   recomputing only stages that can lie on long paths (Esperance).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use xtalk_layout::Parasitics;
use xtalk_netlist::{Netlist, NetlistError};
use xtalk_tech::cell::{Stage, StageSignal};
use xtalk_tech::{Library, Process};
use xtalk_wave::pwl::Waveform;
use xtalk_wave::stage::{Coupling, CouplingMode, Load, StageError, StageSolver};

use crate::diag::{Diagnostic, FaultClass, Severity};
use crate::exec::cache::{Lookup, SolveKey};
use crate::exec::pool::WorkerPool;
use crate::exec::{wavefront, CacheStats, ExecConfig, Executor};
use crate::graph::{StageInst, TNodeId, TNodeKind, TimingGraph};
use crate::mode::AnalysisMode;
use crate::report::{build_path, ModeReport, PassStat};

/// Extra arrival-time penalty of a conservative fallback waveform, seconds.
/// Far beyond any real stage delay of the supported designs, so a degraded
/// arrival can never be optimistic — and is obvious in a report.
const FALLBACK_PENALTY: f64 = 1e-7;

/// Errors from [`Sta`].
#[derive(Debug)]
#[non_exhaustive]
pub enum StaError {
    /// Graph construction failed.
    Netlist(NetlistError),
    /// A stage solution failed.
    Stage {
        /// Name of the gate whose stage failed.
        gate: String,
        /// The underlying error.
        source: StageError,
    },
    /// No endpoint received a waveform — nothing to time.
    NoArrivals,
    /// A worker panicked while evaluating a stage (strict mode only; the
    /// default degrade path converts panics into diagnostics).
    Panic {
        /// Name of the gate whose stage task panicked.
        gate: String,
    },
    /// The iterative coupling refinement diverged (strict mode only; the
    /// default degrade path clamps to the previous safe pass).
    Unstable {
        /// Longest-path delay of the diverging pass, seconds.
        delay: f64,
    },
}

impl std::fmt::Display for StaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaError::Netlist(e) => write!(f, "timing graph construction failed: {e}"),
            StaError::Stage { gate, source } => {
                write!(f, "stage solution failed in `{gate}`: {source}")
            }
            StaError::NoArrivals => write!(f, "no endpoint received an arrival"),
            StaError::Panic { gate } => {
                write!(f, "stage evaluation panicked in `{gate}`")
            }
            StaError::Unstable { delay } => write!(
                f,
                "iterative refinement diverged (pass delay rose to {:.4} ns)",
                delay * 1e9
            ),
        }
    }
}

impl std::error::Error for StaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StaError::Netlist(e) => Some(e),
            StaError::Stage { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Failure-taxonomy class of a stage error (DESIGN.md D8).
fn fault_class_of(e: &StageError) -> FaultClass {
    match e {
        StageError::MissingSideValue { .. } | StageError::BadSlot { .. } => {
            FaultClass::TruncatedModel
        }
        StageError::NonFiniteInput => FaultClass::NonFiniteValue,
        StageError::Waveform(_) => FaultClass::NonMonotoneWaveform,
        // DidNotConverge, NumericalBlowup, and any future variant of the
        // non_exhaustive enum: the solver failed to produce a result.
        _ => FaultClass::SolverDivergence,
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::Netlist(e)
    }
}

/// Arrival information for one node and direction.
#[derive(Debug, Clone)]
pub(crate) struct WaveInfo {
    /// The worst-case waveform.
    pub wave: Waveform,
    /// Crossing time of the delay threshold (Vdd/2), seconds.
    pub crossing: f64,
    /// Time after which the node is quiet in this direction (waveform has
    /// passed the coupling threshold band), seconds.
    pub quiescent: f64,
    /// Predecessor arc, for path reconstruction.
    pub pred: Option<Pred>,
}

/// Predecessor record of a worst-case arrival.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pred {
    /// Stage-instance index.
    pub stage: usize,
    /// Input slot within the stage.
    pub slot: usize,
    /// Direction of the input transition.
    pub input_rising: bool,
}

/// Per-node arrival state (index 0 = falling, 1 = rising).
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeState {
    pub dirs: [Option<WaveInfo>; 2],
}

impl NodeState {
    pub(crate) fn get(&self, rising: bool) -> Option<&WaveInfo> {
        self.dirs[rising as usize].as_ref()
    }
}

/// Quiescence classification of a net in one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Quiet {
    /// The net never makes this transition.
    Never,
    /// The net is quiet after this time.
    Until(f64),
}

/// Work counters of one pass or stage evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SolveCounters {
    /// Logical stage-solver calls — the paper's work metric (its mode
    /// comparisons count solver invocations). A call answered by the
    /// stage-solve cache still counts here.
    pub calls: usize,
    /// Newton integrations actually performed (cache misses or cache off).
    pub solves: usize,
    /// Calls answered by the stage-solve cache.
    pub hits: usize,
}

impl SolveCounters {
    pub(crate) fn absorb(&mut self, other: SolveCounters) {
        self.calls += other.calls;
        self.solves += other.solves;
        self.hits += other.hits;
    }
}

/// Result of one full propagation pass.
pub(crate) struct PassOutput {
    pub states: Vec<NodeState>,
    pub counters: SolveCounters,
}

/// Result of evaluating one stage: waveforms to merge into its output.
pub(crate) struct StageEval {
    pub(crate) merges: Vec<(bool, WaveInfo)>,
    pub(crate) counters: SolveCounters,
}

/// Read-only view of in-flight pass state, shared by the serial level loop
/// (a plain slice) and the wavefront scheduler (write-once cells committed
/// by each node's unique producer task).
pub(crate) enum StateView<'x> {
    /// The serial/incremental representation.
    Slice(&'x [NodeState]),
    /// The wavefront representation.
    Cells(&'x [OnceLock<NodeState>]),
}

impl StateView<'_> {
    fn get(&self, node: usize, rising: bool) -> Option<&WaveInfo> {
        match self {
            StateView::Slice(states) => states[node].get(rising),
            StateView::Cells(cells) => cells[node].get().and_then(|st| st.get(rising)),
        }
    }
}

/// Coupling treatment of one propagation pass.
pub(crate) enum Policy<'p> {
    /// Every coupling cap gets the same fixed treatment.
    Uniform(CouplingMode),
    /// The paper's one-step decision per coupling cap; `prev` supplies the
    /// previous pass's quiescent-time table during iterative refinement.
    QuietAware { prev: Option<&'p Vec<[Quiet; 2]>> },
}

/// The crosstalk-aware static timing analyzer.
pub struct Sta<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    process: &'a Process,
    parasitics: &'a Parasitics,
    graph: TimingGraph,
    exec: Executor,
}

impl<'a> Sta<'a> {
    /// Builds the analyzer (expands the timing graph) with the environment
    /// execution configuration ([`ExecConfig::from_env`]).
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a DAG or
    /// references unknown cells.
    pub fn new(
        netlist: &'a Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: &'a Parasitics,
    ) -> Result<Self, StaError> {
        Self::with_config(
            netlist,
            library,
            process,
            parasitics,
            ExecConfig::from_env(),
        )
    }

    /// Builds the analyzer with an explicit execution configuration.
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a DAG or
    /// references unknown cells.
    pub fn with_config(
        netlist: &'a Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: &'a Parasitics,
        config: ExecConfig,
    ) -> Result<Self, StaError> {
        let graph = TimingGraph::build(netlist, library, process, parasitics)?;
        Ok(Sta {
            netlist,
            library,
            process,
            parasitics,
            graph,
            exec: Executor::new(config),
        })
    }

    /// The execution configuration in effect.
    pub fn exec_config(&self) -> &ExecConfig {
        self.exec.config()
    }

    /// Stage-solve cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.exec.cache_stats()
    }

    /// Drops every stage-solve cache entry (counters keep accumulating).
    /// Purely a memory/diagnostic control: cached entries are exact-match,
    /// so clearing never changes any reported arrival.
    pub fn clear_solve_cache(&self) {
        self.exec.clear_cache();
    }

    /// Installs (or clears, with `None`) a deterministic fault plan for the
    /// next analyses. Available only in fault-injection builds.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&self, plan: Option<crate::fault::FaultPlan>) {
        self.exec.set_fault_plan(plan);
    }

    /// The expanded timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The analysed netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The cell library in use.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// The process in use.
    pub fn process(&self) -> &Process {
        self.process
    }

    /// The extracted parasitics in use.
    pub fn parasitics(&self) -> &Parasitics {
        self.parasitics
    }

    /// Borrowed engine context over this analyzer's inputs and graph.
    pub(crate) fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            netlist: self.netlist,
            library: self.library,
            process: self.process,
            parasitics: self.parasitics,
            graph: &self.graph,
            exec: &self.exec,
        }
    }

    /// Runs the requested analysis and reports the longest path.
    ///
    /// # Errors
    ///
    /// See [`StaError`].
    pub fn analyze(&self, mode: AnalysisMode) -> Result<ModeReport, StaError> {
        self.ctx().analyze(mode)
    }

    /// Runs the passes of `mode` and returns the final node states.
    pub(crate) fn compute_states(
        &self,
        mode: AnalysisMode,
        pass_stats: &mut Vec<PassStat>,
    ) -> Result<Vec<NodeState>, StaError> {
        self.ctx().compute_states(mode, pass_stats)
    }
}

/// Borrowed view of one analysis's inputs and expanded graph: the reusable
/// engine core shared by the batch [`Sta`] facade and the incremental (ECO)
/// engine, which owns its design data and graph and so cannot use [`Sta`]'s
/// borrowed form directly.
pub(crate) struct EngineCtx<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) library: &'a Library,
    pub(crate) process: &'a Process,
    pub(crate) parasitics: &'a Parasitics,
    pub(crate) graph: &'a TimingGraph,
    pub(crate) exec: &'a Executor,
}

/// Per-stage fault-injection decision. In builds without the harness this
/// is a zero-sized no-op the optimizer removes entirely; with it, the
/// active [`crate::fault::FaultPlan`] decides at construction.
struct Inject {
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<crate::fault::Fault>,
}

impl Inject {
    /// Forces a typed stage error (or panics, for the mid-job-panic class)
    /// at the solver choke point when the plan selects this stage.
    fn forced_error(&self, _slot: usize) -> Option<StageError> {
        #[cfg(any(test, feature = "fault-injection"))]
        match self.fault {
            Some(crate::fault::Fault::TruncatedTable) => {
                return Some(StageError::MissingSideValue { slot: _slot });
            }
            Some(crate::fault::Fault::DivergentStage) => {
                return Some(StageError::DidNotConverge);
            }
            Some(crate::fault::Fault::MidJobPanic) => {
                panic!("fault injection: mid-job panic");
            }
            _ => {}
        }
        None
    }

    /// Corrupts the load with NaN when the plan selects this stage.
    fn doctor_load(&self, load: Load) -> Load {
        #[cfg(any(test, feature = "fault-injection"))]
        if self.fault == Some(crate::fault::Fault::NanLoad) {
            return Load {
                cground: f64::NAN,
                ..load
            };
        }
        load
    }

    /// Whether the freshly solved cache entry should be poisoned.
    #[cfg(any(test, feature = "fault-injection"))]
    fn poisons_cache(&self) -> bool {
        self.fault == Some(crate::fault::Fault::PoisonedCache)
    }
}

impl EngineCtx<'_> {
    /// Runs the requested analysis and reports the longest path.
    pub(crate) fn analyze(&self, mode: AnalysisMode) -> Result<ModeReport, StaError> {
        let started = Instant::now();
        // Diagnostics accumulate per analysis; drop leftovers from an
        // earlier run that errored out before assembling its report.
        drop(self.exec.drain_diagnostics());
        let mut pass_stats: Vec<PassStat> = Vec::new();
        let final_states = self.compute_states(mode, &mut pass_stats)?;
        self.assemble_report(mode, final_states, pass_stats, started)
    }

    /// The fault-injection decision for the stage driven by `_gate`.
    fn inject_for(&self, _gate: &str) -> Inject {
        Inject {
            #[cfg(any(test, feature = "fault-injection"))]
            fault: self.exec.fault_for(_gate),
        }
    }

    fn pass_stat(&self, out: &PassOutput, earliest: bool) -> PassStat {
        PassStat {
            delay: self
                .extreme(&out.states, earliest)
                .map(|(_, _, d)| d)
                .unwrap_or(0.0),
            solver_calls: out.counters.calls,
            newton_solves: out.counters.solves,
            cache_hits: out.counters.hits,
        }
    }

    /// Runs the passes of `mode` and returns the final node states,
    /// recording one [`PassStat`] per propagation pass.
    pub(crate) fn compute_states(
        &self,
        mode: AnalysisMode,
        pass_stats: &mut Vec<PassStat>,
    ) -> Result<Vec<NodeState>, StaError> {
        let final_states = match mode {
            AnalysisMode::BestCase => {
                let out = self.run_pass(&Policy::Uniform(CouplingMode::Grounded), None, None)?;
                pass_stats.push(self.pass_stat(&out, false));
                out.states
            }
            AnalysisMode::StaticDoubled => {
                let out = self.run_pass(&Policy::Uniform(CouplingMode::Doubled), None, None)?;
                pass_stats.push(self.pass_stat(&out, false));
                out.states
            }
            AnalysisMode::WorstCase => {
                let out = self.run_pass(&Policy::Uniform(CouplingMode::Active), None, None)?;
                pass_stats.push(self.pass_stat(&out, false));
                out.states
            }
            AnalysisMode::OneStep => {
                let out = self.run_pass(&Policy::QuietAware { prev: None }, None, None)?;
                pass_stats.push(self.pass_stat(&out, false));
                out.states
            }
            AnalysisMode::MinDelay => {
                let out = self.run_pass_with(
                    &Policy::Uniform(CouplingMode::Assisting),
                    None,
                    None,
                    true,
                )?;
                pass_stats.push(self.pass_stat(&out, true));
                out.states
            }
            AnalysisMode::Iterative { esperance } => {
                // Pass 1: the plain one-step analysis.
                let mut out = self.run_pass(&Policy::QuietAware { prev: None }, None, None)?;
                let mut delay = self
                    .longest(&out.states)
                    .map(|(_, _, d)| d)
                    .ok_or(StaError::NoArrivals)?;
                pass_stats.push(self.pass_stat(&out, false));
                // Refinement passes against the stored quiescent times,
                // under a divergence watchdog: the pass cap bounds the
                // loop, and a pass whose delay *rises* beyond the
                // convergence tolerance (oscillation — §5.2 assumes the
                // refinement settles, a production run cannot) is
                // discarded in favour of the previous pass, which is
                // already a guaranteed-conservative one-step bound.
                let mut capped = true;
                for _ in 0..10 {
                    let quiet = self.quiet_table(&out.states);
                    let recompute = if esperance {
                        Some(self.long_path_stages(&out.states, delay))
                    } else {
                        None
                    };
                    let next = self.run_pass(
                        &Policy::QuietAware { prev: Some(&quiet) },
                        Some(&out.states),
                        recompute.as_deref(),
                    )?;
                    let next_delay = self
                        .longest(&next.states)
                        .map(|(_, _, d)| d)
                        .ok_or(StaError::NoArrivals)?;
                    pass_stats.push(self.pass_stat(&next, false));
                    let tolerance = 1e-13 + 1e-3 * delay;
                    if next_delay > delay + tolerance {
                        if self.exec.config().strict {
                            return Err(StaError::Unstable { delay: next_delay });
                        }
                        self.exec.push_diagnostic(Diagnostic {
                            severity: Severity::Warning,
                            node: "(iterative refinement)".to_string(),
                            fault: FaultClass::FixedPointDivergence,
                            substituted_bound: Some(delay),
                            detail: format!(
                                "pass delay rose from {:.4} ns to {:.4} ns; \
                                 keeping the previous conservative pass",
                                delay * 1e9,
                                next_delay * 1e9
                            ),
                        });
                        capped = false;
                        break;
                    }
                    // Converged when the improvement drops below 0.1% —
                    // the paper's refinement settles within a few passes.
                    let improved = next_delay < delay - tolerance;
                    out = next;
                    delay = next_delay.min(delay);
                    if !improved {
                        capped = false;
                        break;
                    }
                }
                if capped {
                    self.exec.push_diagnostic(Diagnostic {
                        severity: Severity::Warning,
                        node: "(iterative refinement)".to_string(),
                        fault: FaultClass::FixedPointDivergence,
                        substituted_bound: Some(delay),
                        detail: "pass cap (10) reached before convergence".to_string(),
                    });
                }
                out.states
            }
        };
        Ok(final_states)
    }

    /// Builds a [`ModeReport`] from completed states.
    pub(crate) fn assemble_report(
        &self,
        mode: AnalysisMode,
        final_states: Vec<NodeState>,
        pass_stats: Vec<PassStat>,
        started: Instant,
    ) -> Result<ModeReport, StaError> {
        let earliest = mode == AnalysisMode::MinDelay;
        let (endpoint, rising, longest_delay) = self
            .extreme(&final_states, earliest)
            .ok_or(StaError::NoArrivals)?;
        let endpoints = self.endpoint_arrivals(&final_states);
        // Per-net quiescent times (fall, rise) for downstream analyses
        // (glitch/noise checks, window debugging).
        let net_quiet = (0..self.netlist.net_count())
            .map(|ni| {
                let node = self.graph.net_node[ni];
                let st = &final_states[node.index()];
                (
                    st.get(false).map(|i| i.quiescent),
                    st.get(true).map(|i| i.quiescent),
                )
            })
            .collect();
        let critical_path = build_path(
            self.netlist,
            self.library,
            self.graph,
            &final_states,
            endpoint,
            rising,
        );
        let diagnostics = self.exec.drain_diagnostics();
        Ok(ModeReport {
            mode,
            longest_delay,
            endpoints,
            net_quiet,
            endpoint_net: match self.graph.nodes[endpoint.index()].kind {
                TNodeKind::Net(n) => Some(n),
                TNodeKind::Internal { .. } => None,
            },
            endpoint_rising: rising,
            critical_path,
            passes: pass_stats.len(),
            pass_delays: pass_stats.iter().map(|p| p.delay).collect(),
            stage_solves: pass_stats.iter().map(|p| p.solver_calls).sum(),
            newton_solves: pass_stats.iter().map(|p| p.newton_solves).sum(),
            cache_hits: pass_stats.iter().map(|p| p.cache_hits).sum(),
            pass_stats,
            diagnostics,
            runtime: started.elapsed(),
        })
    }

    /// The latest endpoint arrival: `(node, rising, delay)`.
    pub(crate) fn longest(&self, states: &[NodeState]) -> Option<(TNodeId, bool, f64)> {
        self.extreme(states, false)
    }

    /// The latest (or, with `earliest`, the earliest) endpoint arrival.
    pub(crate) fn extreme(
        &self,
        states: &[NodeState],
        earliest: bool,
    ) -> Option<(TNodeId, bool, f64)> {
        let mut best: Option<(TNodeId, bool, f64)> = None;
        for node in self.graph.endpoints() {
            for rising in [false, true] {
                if let Some(info) = states[node.index()].get(rising) {
                    let better = best
                        .map(|(_, _, d)| {
                            if earliest {
                                info.crossing < d
                            } else {
                                info.crossing > d
                            }
                        })
                        .unwrap_or(true);
                    if better {
                        best = Some((node, rising, info.crossing));
                    }
                }
            }
        }
        best
    }

    /// Per-endpoint arrival summary from a completed pass.
    fn endpoint_arrivals(&self, states: &[NodeState]) -> Vec<crate::report::EndpointArrival> {
        self.graph
            .endpoints()
            .filter_map(|node| {
                let net = match self.graph.nodes[node.index()].kind {
                    TNodeKind::Net(n) => n,
                    TNodeKind::Internal { .. } => return None,
                };
                let st = &states[node.index()];
                if st.get(false).is_none() && st.get(true).is_none() {
                    return None;
                }
                Some(crate::report::EndpointArrival {
                    net,
                    rise: st.get(true).map(|i| i.crossing),
                    fall: st.get(false).map(|i| i.crossing),
                })
            })
            .collect()
    }

    /// Quiescent-time table per net and direction, from a completed pass.
    pub(crate) fn quiet_table(&self, states: &[NodeState]) -> Vec<[Quiet; 2]> {
        (0..self.netlist.net_count())
            .map(|ni| {
                let node = self.graph.net_node[ni];
                let mut entry = [Quiet::Never; 2];
                for rising in [false, true] {
                    if let Some(info) = states[node.index()].get(rising) {
                        entry[rising as usize] = Quiet::Until(info.quiescent);
                    }
                }
                entry
            })
            .collect()
    }

    /// Esperance: stages whose output can still lie on a long path.
    fn long_path_stages(&self, states: &[NodeState], longest: f64) -> Vec<bool> {
        // Remaining downstream delay per node and direction, reverse topo.
        let n = self.graph.nodes.len();
        let mut remaining = vec![[0.0f64; 2]; n];
        for &si in self.graph.topo.iter().rev() {
            let stage = &self.graph.stages[si];
            let out = stage.output.index();
            for (slot, input) in stage.inputs.iter().enumerate() {
                let _ = slot;
                for in_rising in [false, true] {
                    let out_rising = !in_rising;
                    let (Some(wi), Some(wo)) = (
                        states[input.node.index()].get(in_rising),
                        states[out].get(out_rising),
                    ) else {
                        continue;
                    };
                    let arc_delay = (wo.crossing - wi.crossing).max(0.0);
                    let cand = arc_delay + remaining[out][out_rising as usize];
                    let slot_rem = &mut remaining[input.node.index()][in_rising as usize];
                    if cand > *slot_rem {
                        *slot_rem = cand;
                    }
                }
            }
        }
        // A stage must be recomputed when its output's potential path length
        // is within 10% of the current longest delay.
        let margin = 0.9 * longest;
        self.graph
            .stages
            .iter()
            .map(|stage| {
                let out = stage.output.index();
                [false, true].into_iter().any(|rising| {
                    states[out]
                        .get(rising)
                        .map(|wi| wi.crossing + remaining[out][rising as usize] >= margin)
                        .unwrap_or(false)
                })
            })
            .collect()
    }

    /// Runs one full propagation pass (latest-arrival merging).
    pub(crate) fn run_pass(
        &self,
        policy: &Policy<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
    ) -> Result<PassOutput, StaError> {
        self.run_pass_with(policy, prev, recompute, false)
    }

    /// Runs one full propagation pass; `earliest` selects min-delay
    /// semantics (earliest merging, fastest sensitization). Dispatches to
    /// the wavefront scheduler when the configuration allows parallelism
    /// and the design is big enough; both paths are bit-identical (see the
    /// scheduler notes in `DESIGN.md`).
    pub(crate) fn run_pass_with(
        &self,
        policy: &Policy<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<PassOutput, StaError> {
        match self.exec.pool_for(self.graph.stages.len()) {
            Some(pool) => self.run_pass_wavefront(pool, policy, prev, recompute, earliest),
            None => self.run_pass_serial(policy, prev, recompute, earliest),
        }
    }

    /// The serial (and small-design) pass: the paper's breadth-first level
    /// loop, one stage at a time.
    fn run_pass_serial(
        &self,
        policy: &Policy<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<PassOutput, StaError> {
        let solver = StageSolver::new(self.process);
        let n = self.graph.nodes.len();
        let mut states: Vec<NodeState> = vec![NodeState::default(); n];
        let mut counters = SolveCounters::default();

        self.init_start_states(&mut states);

        for level in &self.graph.levels {
            let results = self.eval_stages(
                &solver,
                level,
                policy,
                &StateView::Slice(&states),
                prev,
                recompute,
                earliest,
            )?;
            for (si, ev) in results {
                let out_idx = self.graph.stages[si].output.index();
                counters.absorb(ev.counters);
                for (out_rising, info) in ev.merges {
                    merge_with(&mut states[out_idx], out_rising, info, earliest);
                }
            }
        }

        Ok(PassOutput { states, counters })
    }

    /// The parallel pass: dependency-counter wavefront propagation over the
    /// persistent worker pool. Every node has a unique producer stage, so
    /// each task commits exactly its own output cell and the result is
    /// bit-identical to the serial level loop.
    fn run_pass_wavefront(
        &self,
        pool: &WorkerPool,
        policy: &Policy<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<PassOutput, StaError> {
        let solver = StageSolver::new(self.process);
        let n = self.graph.nodes.len();
        let cells: Vec<OnceLock<NodeState>> =
            std::iter::repeat_with(OnceLock::new).take(n).collect();
        let proto = self.start_node_state();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if node.is_start {
                let _ = cells[i].set(proto.clone());
            }
        }
        // The one-step policy reads finalized aggressor states, so those
        // become dependency edges too (acyclic by the static level rule).
        let aggressor_aware = matches!(policy, Policy::QuietAware { prev: None });
        let deps = wavefront::DepGraph::build(self.graph, aggressor_aware);

        let calls = AtomicUsize::new(0);
        let solves = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, StaError)>> = Mutex::new(None);
        let view = StateView::Cells(&cells);

        wavefront::execute(pool, &deps, &|si: usize| {
            // After a failure the pass result is discarded; remaining tasks
            // only tick the scheduler's counters down.
            if failed.load(Ordering::Relaxed) {
                return;
            }
            match self.eval_stage_contained(si, &solver, policy, &view, prev, recompute, earliest) {
                Ok(ev) => {
                    calls.fetch_add(ev.counters.calls, Ordering::Relaxed);
                    solves.fetch_add(ev.counters.solves, Ordering::Relaxed);
                    hits.fetch_add(ev.counters.hits, Ordering::Relaxed);
                    let mut out = NodeState::default();
                    for (out_rising, info) in ev.merges {
                        merge_with(&mut out, out_rising, info, earliest);
                    }
                    // Unique producer: this task alone writes this cell.
                    let _ = cells[self.graph.stages[si].output.index()].set(out);
                }
                Err(err) => {
                    failed.store(true, Ordering::Relaxed);
                    let mut slot = first_error.lock().unwrap_or_else(PoisonError::into_inner);
                    // Keep the lowest stage index for a deterministic error.
                    match &*slot {
                        Some((prev_si, _)) if *prev_si <= si => {}
                        _ => *slot = Some((si, err)),
                    }
                }
            }
        });

        if let Some((_, err)) = first_error
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(err);
        }
        let states = cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_default())
            .collect();
        Ok(PassOutput {
            states,
            counters: SolveCounters {
                calls: calls.into_inner(),
                solves: solves.into_inner(),
                hits: hits.into_inner(),
            },
        })
    }

    /// The state of every startpoint node: full-swing ramps at `t = 0`.
    fn start_node_state(&self) -> NodeState {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let slew = process.default_input_slew;
        let rise = Waveform::ramp(0.0, slew, 0.0, vdd).expect("valid ramp");
        let fall = Waveform::ramp(0.0, slew, vdd, 0.0).expect("valid ramp");
        NodeState {
            dirs: [
                Some(self.wave_info(fall, th, vth, vdd, None)),
                Some(self.wave_info(rise, th, vth, vdd, None)),
            ],
        }
    }

    /// Seeds startpoint nodes (primary-input nets) with full-swing ramps at
    /// `t = 0`.
    pub(crate) fn init_start_states(&self, states: &mut [NodeState]) {
        let proto = self.start_node_state();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if node.is_start {
                states[i] = proto.clone();
            }
        }
    }

    /// The batch propagation step: evaluates an explicit set of stages
    /// against a read-only snapshot of the pass state and returns their
    /// output merges, in input order. The caller guarantees every stage in
    /// the set is ready (its inputs final), so the set fans out over the
    /// worker pool without internal ordering; the caller applies the merges
    /// serially. The serial level loop and the incremental engine's dirty
    /// sweep drive propagation through this function.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_stages(
        &self,
        solver: &StageSolver<'_>,
        stage_ids: &[usize],
        policy: &Policy<'_>,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<Vec<(usize, StageEval)>, StaError> {
        let results: Vec<(usize, Result<StageEval, StaError>)> =
            match self.exec.pool_for(stage_ids.len()) {
                None => stage_ids
                    .iter()
                    .map(|&si| {
                        (
                            si,
                            self.eval_stage_contained(
                                si, solver, policy, view, prev, recompute, earliest,
                            ),
                        )
                    })
                    .collect(),
                Some(pool) => {
                    let slots: Vec<OnceLock<(usize, Result<StageEval, StaError>)>> =
                        std::iter::repeat_with(OnceLock::new)
                            .take(stage_ids.len())
                            .collect();
                    wavefront::execute_flat(pool, stage_ids.len(), &|pos: usize| {
                        let si = stage_ids[pos];
                        let result = self.eval_stage_contained(
                            si, solver, policy, view, prev, recompute, earliest,
                        );
                        let _ = slots[pos].set((si, result));
                    });
                    slots
                        .into_iter()
                        .map(|slot| slot.into_inner().expect("every slot evaluated"))
                        .collect()
                }
            };
        results
            .into_iter()
            .map(|(si, result)| result.map(|ev| (si, ev)))
            .collect()
    }

    /// Evaluates one stage against the current (read-only) pass state,
    /// returning the output merges to apply.
    #[allow(clippy::too_many_arguments)]
    fn eval_stage(
        &self,
        si: usize,
        solver: &StageSolver<'_>,
        policy: &Policy<'_>,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<StageEval, StageError> {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let stage_inst = &self.graph.stages[si];
        let out_idx = stage_inst.output.index();
        let mut ev = StageEval {
            merges: Vec::new(),
            counters: SolveCounters::default(),
        };

        // Esperance: reuse the previous pass's result for off-path stages
        // (still a safe upper bound).
        if let (Some(mask), Some(prev_states)) = (recompute, prev) {
            if !mask[si] {
                for rising in [false, true] {
                    if let Some(pi) = prev_states[out_idx].get(rising) {
                        ev.merges.push((rising, pi.clone()));
                    }
                }
                return Ok(ev);
            }
        }

        let gate = self.netlist.gate(stage_inst.gate);
        let cell = self
            .library
            .cell(&gate.cell)
            .expect("graph construction verified cells");
        let stage: &Stage = &cell.stages[stage_inst.stage];
        let inject = self.inject_for(&gate.name);

        for (slot, input) in stage_inst.inputs.iter().enumerate() {
            let launch = stage_inst.is_launch && matches!(stage.inputs[slot], StageSignal::Launch);
            for in_rising in [false, true] {
                // Launch stages fire on the clock's rising edge only; the
                // falling launch transition is the mirrored clock rise
                // (Q falls at the same clock edge).
                let source_rising = if launch { true } else { in_rising };
                let Some(info) = view.get(input.node.index(), source_rising) else {
                    continue;
                };
                let out_rising = !in_rising;
                let side_table = if earliest {
                    &stage_inst.sides_fast
                } else {
                    &stage_inst.sides
                };
                let Some(side) = side_table[slot][out_rising as usize].as_ref() else {
                    continue;
                };

                // Wire-adjusted input waveform at this sink.
                let mut in_wave = self.wire_adjusted(info, input.node, input.sink, th);
                if launch && !in_rising {
                    in_wave = mirror(&in_wave, vdd);
                }

                // Coupling treatment. A failed solve degrades to the
                // conservative fallback waveform under a diagnostic unless
                // strict mode asks for the error itself.
                let wave = match self.solve_arc(
                    solver,
                    &gate.cell,
                    stage,
                    slot,
                    &in_wave,
                    side,
                    si,
                    policy,
                    view,
                    in_rising,
                    earliest,
                    &mut ev.counters,
                    &inject,
                ) {
                    Ok(wave) => wave,
                    Err(e) => {
                        if self.exec.config().strict {
                            return Err(e);
                        }
                        let fb = self.fallback_wave(&in_wave, out_rising, earliest);
                        let crossing = fb.crossing(th).unwrap_or_else(|| fb.end_time());
                        self.exec.push_diagnostic(Diagnostic {
                            severity: Severity::Error,
                            node: gate.name.clone(),
                            fault: fault_class_of(&e),
                            substituted_bound: Some(crossing),
                            detail: e.to_string(),
                        });
                        fb
                    }
                };
                let winfo = self.wave_info(
                    wave,
                    th,
                    vth,
                    vdd,
                    Some(Pred {
                        stage: si,
                        slot,
                        input_rising: in_rising,
                    }),
                );
                ev.merges.push((out_rising, winfo));
            }
        }
        Ok(ev)
    }

    /// A conservative substitute waveform for a degraded arc: a full-swing
    /// ramp placed so the reported arrival can never be optimistic — for
    /// max-delay analyses far *later* than any real stage response (the
    /// input's end plus [`FALLBACK_PENALTY`]), and for min-delay at the
    /// input's start, *earlier* than any real response.
    fn fallback_wave(&self, in_wave: &Waveform, out_rising: bool, earliest: bool) -> Waveform {
        let vdd = self.process.vdd;
        let (v0, v1) = if out_rising { (0.0, vdd) } else { (vdd, 0.0) };
        let slew = self.process.default_input_slew;
        if earliest {
            Waveform::ramp(in_wave.start_time(), slew, v0, v1).expect("fallback ramp is finite")
        } else {
            Waveform::ramp(in_wave.end_time() + FALLBACK_PENALTY, 10.0 * slew, v0, v1)
                .expect("fallback ramp is finite")
        }
    }

    /// The whole-stage conservative substitute used when a stage task
    /// panics: every arc that would have been solved gets the fallback
    /// waveform instead. Mirrors `eval_stage`'s arc walk (Esperance reuse,
    /// launch mirroring, side-table gating) without touching the solver.
    fn fallback_eval(
        &self,
        si: usize,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> StageEval {
        let process = self.process;
        let vdd = process.vdd;
        let th = process.delay_threshold();
        let vth = process.coupling_vth;
        let stage_inst = &self.graph.stages[si];
        let out_idx = stage_inst.output.index();
        let mut ev = StageEval {
            merges: Vec::new(),
            counters: SolveCounters::default(),
        };
        if let (Some(mask), Some(prev_states)) = (recompute, prev) {
            if !mask[si] {
                for rising in [false, true] {
                    if let Some(pi) = prev_states[out_idx].get(rising) {
                        ev.merges.push((rising, pi.clone()));
                    }
                }
                return ev;
            }
        }
        let gate = self.netlist.gate(stage_inst.gate);
        let cell = self
            .library
            .cell(&gate.cell)
            .expect("graph construction verified cells");
        let stage: &Stage = &cell.stages[stage_inst.stage];
        for (slot, input) in stage_inst.inputs.iter().enumerate() {
            let launch = stage_inst.is_launch && matches!(stage.inputs[slot], StageSignal::Launch);
            for in_rising in [false, true] {
                let source_rising = if launch { true } else { in_rising };
                let Some(info) = view.get(input.node.index(), source_rising) else {
                    continue;
                };
                let out_rising = !in_rising;
                let side_table = if earliest {
                    &stage_inst.sides_fast
                } else {
                    &stage_inst.sides
                };
                if side_table[slot][out_rising as usize].is_none() {
                    continue;
                }
                let fb = self.fallback_wave(&info.wave, out_rising, earliest);
                let winfo = self.wave_info(
                    fb,
                    th,
                    vth,
                    vdd,
                    Some(Pred {
                        stage: si,
                        slot,
                        input_rising: in_rising,
                    }),
                );
                ev.merges.push((out_rising, winfo));
            }
        }
        ev
    }

    /// Evaluates one stage with panic containment: a panicking task is
    /// converted into a conservative fallback evaluation plus a
    /// [`FaultClass::WorkerPanic`] diagnostic (or, in strict mode, into
    /// [`StaError::Panic`]) instead of tearing down the pass. Solver errors
    /// are tagged with the gate name here.
    #[allow(clippy::too_many_arguments)]
    fn eval_stage_contained(
        &self,
        si: usize,
        solver: &StageSolver<'_>,
        policy: &Policy<'_>,
        view: &StateView<'_>,
        prev: Option<&[NodeState]>,
        recompute: Option<&[bool]>,
        earliest: bool,
    ) -> Result<StageEval, StaError> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.eval_stage(si, solver, policy, view, prev, recompute, earliest)
        })) {
            Ok(Ok(ev)) => Ok(ev),
            Ok(Err(e)) => Err(StaError::Stage {
                gate: self.netlist.gate(self.graph.stages[si].gate).name.clone(),
                source: e,
            }),
            Err(payload) => {
                let gate = self.netlist.gate(self.graph.stages[si].gate).name.clone();
                if self.exec.config().strict {
                    return Err(StaError::Panic { gate });
                }
                let ev = self.fallback_eval(si, view, prev, recompute, earliest);
                let bound = ev
                    .merges
                    .iter()
                    .map(|(_, info)| info.crossing)
                    .fold(f64::NEG_INFINITY, f64::max);
                self.exec.push_diagnostic(Diagnostic {
                    severity: Severity::Error,
                    node: gate,
                    fault: FaultClass::WorkerPanic,
                    substituted_bound: bound.is_finite().then_some(bound),
                    detail: panic_message(payload.as_ref()),
                });
                Ok(ev)
            }
        }
    }

    /// One stage solve routed through the stage-solve cache. `calls` counts
    /// the logical invocation either way; only a miss (or a disabled cache)
    /// pays the Newton integration. The key covers every input the solver
    /// result depends on — see `exec::cache` — so a hit is bit-identical to
    /// the solve it replaces.
    ///
    /// This is the engine's solver choke point, so it also hosts the fault
    /// harness (`inject`) and the cache guardrails: a load that refuses a
    /// key (non-finite capacitance) solves uncached under a diagnostic, and
    /// a corrupt cache entry is reported, never served.
    #[allow(clippy::too_many_arguments)]
    fn solve_cached(
        &self,
        solver: &StageSolver<'_>,
        cell_name: &str,
        stage_in_cell: usize,
        stage: &Stage,
        slot: usize,
        in_wave: &Waveform,
        side: &[f64],
        load: Load,
        out_rising: bool,
        earliest: bool,
        counters: &mut SolveCounters,
        inject: &Inject,
    ) -> Result<Waveform, StageError> {
        counters.calls += 1;
        if let Some(e) = inject.forced_error(slot) {
            return Err(e);
        }
        let load = inject.doctor_load(load);
        let cache = self.exec.cache();
        if !cache.enabled() {
            counters.solves += 1;
            return solver
                .solve(stage, slot, in_wave, side, load)
                .map(|r| r.wave);
        }
        let Some(key) = SolveKey::new(
            cell_name,
            stage_in_cell,
            slot,
            out_rising,
            earliest,
            in_wave,
            &load,
        ) else {
            // A non-finite load has no canonical key; solve uncached and
            // let the stage solver's own input validation classify it.
            self.exec.push_diagnostic(Diagnostic {
                severity: Severity::Warning,
                node: cell_name.to_string(),
                fault: FaultClass::NonFiniteValue,
                substituted_bound: None,
                detail: "non-finite load capacitance rejected by the solve cache".to_string(),
            });
            counters.solves += 1;
            return solver
                .solve(stage, slot, in_wave, side, load)
                .map(|r| r.wave);
        };
        match cache.get(&key) {
            Lookup::Hit(wave) => {
                counters.hits += 1;
                return Ok(wave);
            }
            Lookup::Corrupt => {
                self.exec.push_diagnostic(Diagnostic {
                    severity: Severity::Warning,
                    node: cell_name.to_string(),
                    fault: FaultClass::CacheCorruption,
                    substituted_bound: None,
                    detail: "cache entry failed its integrity check; evicted and re-solved"
                        .to_string(),
                });
            }
            Lookup::Miss => {}
        }
        counters.solves += 1;
        let wave = solver.solve(stage, slot, in_wave, side, load)?.wave;
        #[cfg(any(test, feature = "fault-injection"))]
        if inject.poisons_cache() {
            cache.put_poisoned(key, wave.clone());
            return Ok(wave);
        }
        cache.put(key, wave.clone());
        Ok(wave)
    }

    /// Solves one arc under the given coupling policy, counting the work
    /// into `counters`.
    #[allow(clippy::too_many_arguments)]
    fn solve_arc(
        &self,
        solver: &StageSolver<'_>,
        cell_name: &str,
        stage: &Stage,
        slot: usize,
        in_wave: &Waveform,
        side: &[f64],
        si: usize,
        policy: &Policy<'_>,
        view: &StateView<'_>,
        in_rising: bool,
        earliest: bool,
        counters: &mut SolveCounters,
        inject: &Inject,
    ) -> Result<Waveform, StageError> {
        let out_rising = !in_rising;
        let vdd = self.process.vdd;
        let vth = self.process.coupling_vth;
        let stage_inst: &StageInst = &self.graph.stages[si];

        let grounded_load = |mode: CouplingMode| Load {
            cground: stage_inst.cground,
            couplings: stage_inst
                .couplings
                .iter()
                .map(|&(_, c)| Coupling::new(c, mode))
                .collect(),
        };
        let solve = |load: Load, counters: &mut SolveCounters| {
            self.solve_cached(
                solver,
                cell_name,
                stage_inst.stage,
                stage,
                slot,
                in_wave,
                side,
                load,
                out_rising,
                earliest,
                counters,
                inject,
            )
        };

        match policy {
            Policy::Uniform(mode) => solve(grounded_load(*mode), counters),
            Policy::QuietAware { prev } => {
                if stage_inst.couplings.is_empty() {
                    return solve(Load::grounded(stage_inst.cground), counters);
                }
                // Best-case waveform: all aggressors quiet.
                let bcs = solve(grounded_load(CouplingMode::Grounded), counters)?;
                // Earliest possible victim activity: the best-case waveform
                // entering the coupling threshold band.
                let start_th = if out_rising { vth } else { vdd - vth };
                let t_bcs = bcs.crossing(start_th).unwrap_or_else(|| bcs.start_time());

                // Per-aggressor decision (paper §5.1 pseudo code).
                let agg_rising = !out_rising;
                let mut any_active = false;
                let level = self.graph.stage_level[si];
                let couplings: Vec<Coupling> = stage_inst
                    .couplings
                    .iter()
                    .map(|&(other, c)| {
                        let quiet = match prev {
                            Some(table) => table[other.index()][agg_rising as usize],
                            None => {
                                let node = self.graph.net_node[other.index()];
                                if !self.graph.calculated_at(node, level) {
                                    // "line i is not calculated": worst case.
                                    any_active = true;
                                    return Coupling::new(c, CouplingMode::Active);
                                }
                                match view.get(node.index(), agg_rising) {
                                    Some(info) => Quiet::Until(info.quiescent),
                                    None => Quiet::Never,
                                }
                            }
                        };
                        let mode = match quiet {
                            Quiet::Never => CouplingMode::Grounded,
                            Quiet::Until(t_a) if t_a > t_bcs => {
                                any_active = true;
                                CouplingMode::Active
                            }
                            Quiet::Until(_) => CouplingMode::Grounded,
                        };
                        Coupling::new(c, mode)
                    })
                    .collect();

                if !any_active {
                    // The best-case solve already used exactly this load.
                    return Ok(bcs);
                }
                let load = Load {
                    cground: stage_inst.cground,
                    couplings,
                };
                solve(load, counters)
            }
        }
    }

    fn wave_info(
        &self,
        wave: Waveform,
        th: f64,
        vth: f64,
        vdd: f64,
        pred: Option<Pred>,
    ) -> WaveInfo {
        let crossing = wave.crossing(th).unwrap_or_else(|| wave.end_time());
        let quiescent = if wave.is_rising() {
            wave.crossing(vdd - vth).unwrap_or_else(|| wave.end_time())
        } else {
            wave.crossing(vth).unwrap_or_else(|| wave.end_time())
        };
        WaveInfo {
            wave,
            crossing,
            quiescent,
            pred,
        }
    }

    /// Applies Elmore delay and PERI slew degradation for the wire between
    /// a net's driver and the given sink.
    fn wire_adjusted(
        &self,
        info: &WaveInfo,
        node: TNodeId,
        sink: Option<usize>,
        th: f64,
    ) -> Waveform {
        let (TNodeKind::Net(net), Some(k)) = (self.graph.nodes[node.index()].kind, sink) else {
            return info.wave.clone();
        };
        let np = &self.parasitics.nets[net.index()];
        // Downstream pin cap of this sink.
        let pin_c = self
            .netlist
            .net(net)
            .loads
            .get(k)
            .and_then(|&(g, pin)| {
                self.library
                    .cell(&self.netlist.gate(g).cell)
                    .and_then(|c| c.input_cap.get(pin).copied())
            })
            .unwrap_or(0.0);
        let elmore = np.elmore(k, pin_c);
        if elmore < 1e-15 {
            return info.wave.clone();
        }
        let (lo, hi) = self.process.slew_thresholds();
        let wave = match info.wave.slew(lo, hi) {
            Some(s) if s > 1e-15 => {
                // PERI: slew_out^2 = slew_in^2 + (ln9 * elmore)^2.
                let ln9 = 9.0f64.ln();
                let out = (s * s + (ln9 * elmore).powi(2)).sqrt();
                info.wave.stretched_around(th, out / s)
            }
            _ => info.wave.clone(),
        };
        wave.shifted(elmore)
    }
}

/// Keeps the worst waveform per direction: latest-crossing for max-delay
/// analysis, earliest-crossing when `earliest` is set (min-delay).
pub(crate) fn merge_with(state: &mut NodeState, rising: bool, info: WaveInfo, earliest: bool) {
    let slot = &mut state.dirs[rising as usize];
    match slot {
        Some(existing)
            if (!earliest && existing.crossing >= info.crossing)
                || (earliest && existing.crossing <= info.crossing) => {}
        _ => *slot = Some(info),
    }
}

/// Mirror a waveform across mid-rail (rising clock edge -> falling launch).
fn mirror(wave: &Waveform, vdd: f64) -> Waveform {
    let pts: Vec<(f64, f64)> = wave.points().iter().map(|&(t, v)| (t, vdd - v)).collect();
    Waveform::new(pts).expect("mirror of a monotone waveform is monotone")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::{extract, place, route, Parasitics};
    use xtalk_netlist::{bench, data, generator, generator::GeneratorConfig};
    use xtalk_tech::{Library, Process};

    struct Fixture {
        process: Process,
        library: Library,
        netlist: Netlist,
        parasitics: Parasitics,
    }

    fn fixture_from_text(text: &str) -> Fixture {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = bench::parse(text, &library).expect("parse");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        Fixture {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    fn fixture_small(seed: u64) -> Fixture {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = generator::generate(&GeneratorConfig::small(seed), &library).expect("gen");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        Fixture {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    impl Fixture {
        fn sta(&self) -> Sta<'_> {
            Sta::new(
                &self.netlist,
                &self.library,
                &self.process,
                &self.parasitics,
            )
            .expect("sta")
        }
    }

    #[test]
    fn inverter_chain_delay_scales_with_length() {
        let f3 = fixture_from_text("INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\ny = NOT(w2)\n");
        let f6 = fixture_from_text(
            "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\nw3 = NOT(w2)\n\
             w4 = NOT(w3)\nw5 = NOT(w4)\ny = NOT(w5)\n",
        );
        let d3 = f3.sta().analyze(AnalysisMode::BestCase).expect("3");
        let d6 = f6.sta().analyze(AnalysisMode::BestCase).expect("6");
        assert!(d6.longest_delay > 1.5 * d3.longest_delay);
        assert_eq!(d3.critical_path.len(), 3);
        assert_eq!(d6.critical_path.len(), 6);
    }

    #[test]
    fn s27_all_modes_run_and_order_correctly() {
        let f = fixture_from_text(data::S27_BENCH);
        let sta = f.sta();
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let doubled = sta.analyze(AnalysisMode::StaticDoubled).expect("doubled");
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst");
        let one = sta.analyze(AnalysisMode::OneStep).expect("one");
        let iter = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter");
        // Paper orderings.
        assert!(best.longest_delay <= doubled.longest_delay + 1e-15);
        assert!(best.longest_delay <= one.longest_delay + 1e-15);
        assert!(one.longest_delay <= worst.longest_delay + 1e-12);
        assert!(iter.longest_delay <= one.longest_delay + 1e-12);
        assert!(best.longest_delay > 0.0);
    }

    #[test]
    fn synthetic_circuit_mode_ordering() {
        let f = fixture_small(17);
        let sta = f.sta();
        let best = sta
            .analyze(AnalysisMode::BestCase)
            .expect("best")
            .longest_delay;
        let one = sta
            .analyze(AnalysisMode::OneStep)
            .expect("one")
            .longest_delay;
        let worst = sta
            .analyze(AnalysisMode::WorstCase)
            .expect("worst")
            .longest_delay;
        let iter = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter")
            .longest_delay;
        assert!(best <= one + 1e-15, "best {best} <= one-step {one}");
        assert!(one <= worst + 1e-12, "one-step {one} <= worst {worst}");
        assert!(iter <= one + 1e-12, "iterative {iter} <= one-step {one}");
        assert!(worst > best, "coupling must matter on a routed circuit");
    }

    #[test]
    fn iterative_converges_monotonically() {
        let f = fixture_small(5);
        let sta = f.sta();
        let r = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iterative");
        assert!(r.passes >= 2, "at least one refinement pass");
        for w in r.pass_delays.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "pass delays must not increase: {:?}",
                r.pass_delays
            );
        }
    }

    #[test]
    fn esperance_reaches_same_fixpoint() {
        let f = fixture_small(23);
        let sta = f.sta();
        let plain = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("plain");
        let esp = sta
            .analyze(AnalysisMode::Iterative { esperance: true })
            .expect("esperance");
        // Esperance skips work but must stay a safe bound and land close.
        assert!(esp.longest_delay >= plain.longest_delay - 1e-12);
        assert!(
            esp.longest_delay <= plain.longest_delay * 1.05 + 1e-12,
            "esperance {} vs plain {}",
            esp.longest_delay,
            plain.longest_delay
        );
        assert!(esp.stage_solves <= plain.stage_solves);
    }

    #[test]
    fn one_step_costs_about_twice_plain() {
        let f = fixture_small(29);
        let sta = f.sta();
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let one = sta.analyze(AnalysisMode::OneStep).expect("one");
        assert!(one.stage_solves > best.stage_solves);
        assert!(one.stage_solves <= 2 * best.stage_solves);
    }

    #[test]
    fn critical_path_is_connected() {
        let f = fixture_small(31);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::OneStep).expect("analyze");
        assert!(!r.critical_path.is_empty());
        // Arrivals along the path must not decrease.
        for w in r.critical_path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival - 1e-12);
        }
        // Every step's gate output must feed the next step's gate.
        for w in r.critical_path.windows(2) {
            let out = f.netlist.gate(w[0].gate).output;
            let next_inputs = &f.netlist.gate(w[1].gate).inputs;
            assert!(
                next_inputs.contains(&out),
                "path steps must be electrically connected"
            );
        }
    }

    #[test]
    fn endpoint_is_reported() {
        let f = fixture_from_text(data::C17_BENCH);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::BestCase).expect("analyze");
        let net = r.endpoint_net.expect("endpoint is a net");
        assert!(f.netlist.net(net).is_primary_output);
    }

    #[test]
    fn min_delay_is_a_lower_bound() {
        let f = fixture_small(41);
        let sta = f.sta();
        let min = sta.analyze(AnalysisMode::MinDelay).expect("min");
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst");
        assert!(min.longest_delay > 0.0);
        assert!(
            min.longest_delay <= best.longest_delay,
            "min {} <= best-case longest {}",
            min.longest_delay,
            best.longest_delay
        );
        assert!(min.longest_delay <= worst.longest_delay);
        assert!(!min.critical_path.is_empty(), "shortest path reported");
        // Shortest-path arrivals are non-decreasing along the path too.
        for w in min.critical_path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival - 1e-12);
        }
    }

    #[test]
    fn endpoint_arrivals_cover_all_endpoints() {
        let f = fixture_small(43);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::BestCase).expect("analysis");
        assert!(!r.endpoints.is_empty());
        // The reported longest delay is attained by some endpoint summary.
        let max = r
            .endpoints
            .iter()
            .map(|e| e.latest())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - r.longest_delay).abs() < 1e-15);
        for e in &r.endpoints {
            assert!(e.earliest() <= e.latest());
        }
    }

    #[test]
    fn launch_stages_give_dff_q_both_directions() {
        let f = fixture_from_text(data::S27_BENCH);
        let sta = f.sta();
        let out = sta
            .ctx()
            .run_pass(&Policy::Uniform(CouplingMode::Grounded), None, None)
            .expect("pass");
        let q = f.netlist.net_by_name("G5").expect("ff output");
        let node = sta.graph.net_node[q.index()];
        let st = &out.states[node.index()];
        assert!(st.get(true).is_some(), "Q rise arrival");
        assert!(st.get(false).is_some(), "Q fall arrival");
        // Q launches after the clock (buffer-free here, small but positive).
        assert!(st.get(true).expect("rise").crossing > 0.0);
    }
}
