//! The analyzer facade and mode dispatch.
//!
//! This module is deliberately thin. The propagation machinery — arrival
//! store, stage evaluation, pass scheduling, caching, fallbacks — lives in
//! [`crate::kernel`] as the [`PropagationCore`] shared by every analysis
//! surface; the per-mode coupling treatments live in [`crate::policy`].
//! What remains here is the public [`Sta`] entry point, the [`StaError`]
//! taxonomy, and `PropagationCore::compute_states`: the one place an
//! [`AnalysisMode`] is mapped onto a policy and a pass sequence.
//!
//! Coupling treatment per mode follows the paper's §5:
//!
//! - the **one-step** algorithm (§5.1) computes a best-case (all-quiet)
//!   waveform per victim transition to lower-bound the victim's earliest
//!   activity `t_bcs`, then marks each coupling cap active only when the
//!   aggressor's latest opposite activity `t_a` can still overlap
//!   (`t_a > t_bcs`) or the aggressor has not been calculated yet;
//! - the **iterative** algorithm (§5.2) stores every net's quiescent times
//!   after each full pass and re-runs the one-step analysis against that
//!   table while the longest-path delay keeps decreasing — optionally
//!   recomputing only stages that can lie on long paths (Esperance).

use xtalk_layout::Parasitics;
use xtalk_netlist::{Netlist, NetlistError};
use xtalk_tech::{Library, Process};
use xtalk_wave::stage::StageError;

use crate::exec::{CacheStats, ExecConfig, Executor};
use crate::graph::TimingGraph;
use crate::kernel::{NodeState, PropagationCore};
use crate::mode::AnalysisMode;
use crate::policy;
use crate::report::{ModeReport, PassStat};

/// Errors from [`Sta`].
#[derive(Debug)]
#[non_exhaustive]
pub enum StaError {
    /// Graph construction failed.
    Netlist(NetlistError),
    /// A stage solution failed.
    Stage {
        /// Name of the gate whose stage failed.
        gate: String,
        /// The underlying error.
        source: StageError,
    },
    /// No endpoint received a waveform — nothing to time.
    NoArrivals,
    /// A worker panicked while evaluating a stage (strict mode only; the
    /// default degrade path converts panics into diagnostics).
    Panic {
        /// Name of the gate whose stage task panicked.
        gate: String,
    },
    /// The iterative coupling refinement diverged (strict mode only; the
    /// default degrade path clamps to the previous safe pass).
    Unstable {
        /// Longest-path delay of the diverging pass, seconds.
        delay: f64,
    },
    /// An execution-configuration environment variable held a malformed
    /// value (see [`crate::exec::ConfigError`]).
    Config(crate::exec::ConfigError),
}

impl std::fmt::Display for StaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaError::Netlist(e) => write!(f, "timing graph construction failed: {e}"),
            StaError::Stage { gate, source } => {
                write!(f, "stage solution failed in `{gate}`: {source}")
            }
            StaError::NoArrivals => write!(f, "no endpoint received an arrival"),
            StaError::Panic { gate } => {
                write!(f, "stage evaluation panicked in `{gate}`")
            }
            StaError::Unstable { delay } => write!(
                f,
                "iterative refinement diverged (pass delay rose to {:.4} ns)",
                delay * 1e9
            ),
            StaError::Config(e) => write!(f, "execution configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for StaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StaError::Netlist(e) => Some(e),
            StaError::Stage { source, .. } => Some(source),
            StaError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::Netlist(e)
    }
}

impl From<crate::exec::ConfigError> for StaError {
    fn from(e: crate::exec::ConfigError) -> Self {
        StaError::Config(e)
    }
}

/// The crosstalk-aware static timing analyzer.
pub struct Sta<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    process: &'a Process,
    parasitics: &'a Parasitics,
    graph: TimingGraph,
    exec: Executor,
}

impl<'a> Sta<'a> {
    /// Builds the analyzer (expands the timing graph) with the environment
    /// execution configuration ([`ExecConfig::from_env`]).
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a DAG or
    /// references unknown cells; [`StaError::Config`] when an `XTALK_*`
    /// environment override holds a malformed value.
    pub fn new(
        netlist: &'a Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: &'a Parasitics,
    ) -> Result<Self, StaError> {
        Self::with_config(
            netlist,
            library,
            process,
            parasitics,
            ExecConfig::from_env()?,
        )
    }

    /// Builds the analyzer with an explicit execution configuration.
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a DAG or
    /// references unknown cells.
    pub fn with_config(
        netlist: &'a Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: &'a Parasitics,
        config: ExecConfig,
    ) -> Result<Self, StaError> {
        let graph = TimingGraph::build(netlist, library, process, parasitics)?;
        // Characterize the macromodel tables up front (a no-op when the
        // process-global store already holds this library): build time, not
        // solve time, so the fast path never blocks a pass mid-flight.
        if !config.signoff {
            xtalk_wave::macromodel::prewarm_library(process, library, config.threads);
        }
        Ok(Sta {
            netlist,
            library,
            process,
            parasitics,
            graph,
            exec: Executor::new(config),
        })
    }

    /// The execution configuration in effect.
    pub fn exec_config(&self) -> &ExecConfig {
        self.exec.config()
    }

    /// Stage-solve cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.exec.cache_stats()
    }

    /// Drops every stage-solve cache entry (counters keep accumulating).
    /// Purely a memory/diagnostic control: cached entries are exact-match,
    /// so clearing never changes any reported arrival.
    pub fn clear_solve_cache(&self) {
        self.exec.clear_cache();
    }

    /// Installs (or clears, with `None`) a deterministic fault plan for the
    /// next analyses. Available only in fault-injection builds.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&self, plan: Option<crate::fault::FaultPlan>) {
        self.exec.set_fault_plan(plan);
    }

    /// The expanded timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The analysed netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The cell library in use.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// The process in use.
    pub fn process(&self) -> &Process {
        self.process
    }

    /// The extracted parasitics in use.
    pub fn parasitics(&self) -> &Parasitics {
        self.parasitics
    }

    /// Borrowed propagation core over this analyzer's inputs and graph.
    pub(crate) fn ctx(&self) -> PropagationCore<'_> {
        PropagationCore {
            netlist: self.netlist,
            library: self.library,
            process: self.process,
            parasitics: self.parasitics,
            graph: &self.graph,
            exec: &self.exec,
        }
    }

    /// Runs the requested analysis and reports the longest path.
    ///
    /// # Errors
    ///
    /// See [`StaError`].
    pub fn analyze(&self, mode: AnalysisMode) -> Result<ModeReport, StaError> {
        self.ctx().analyze(mode)
    }

    /// Runs the passes of `mode` and returns the final node states.
    pub(crate) fn compute_states(
        &self,
        mode: AnalysisMode,
        pass_stats: &mut Vec<PassStat>,
    ) -> Result<Vec<NodeState>, StaError> {
        self.ctx().compute_states(mode, pass_stats)
    }
}

impl PropagationCore<'_> {
    /// Runs the passes of `mode` and returns the final node states,
    /// recording one [`PassStat`] per propagation pass.
    ///
    /// This is the mode dispatch: a single-pass mode resolves to its
    /// [`policy::CouplingPolicy`] and runs one kernel pass; the iterative
    /// mode runs the shared §5.2 refinement driver over one-step passes.
    pub(crate) fn compute_states(
        &self,
        mode: AnalysisMode,
        pass_stats: &mut Vec<PassStat>,
    ) -> Result<Vec<NodeState>, StaError> {
        match mode {
            AnalysisMode::Iterative { esperance } => {
                policy::iterative::refine_batch(self, esperance, pass_stats)
            }
            _ => {
                let policy = policy::for_single_pass(mode);
                let out = self.run_pass(policy.as_ref(), None, None)?;
                pass_stats.push(self.pass_stat(&out, policy.earliest()));
                Ok(out.states)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::{extract, place, route, Parasitics};
    use xtalk_netlist::{bench, data, generator, generator::GeneratorConfig};
    use xtalk_tech::{Library, Process};

    struct Fixture {
        process: Process,
        library: Library,
        netlist: Netlist,
        parasitics: Parasitics,
    }

    fn fixture_from_text(text: &str) -> Fixture {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = bench::parse(text, &library).expect("parse");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        Fixture {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    fn fixture_small(seed: u64) -> Fixture {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = generator::generate(&GeneratorConfig::small(seed), &library).expect("gen");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        Fixture {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    impl Fixture {
        fn sta(&self) -> Sta<'_> {
            Sta::new(
                &self.netlist,
                &self.library,
                &self.process,
                &self.parasitics,
            )
            .expect("sta")
        }
    }

    #[test]
    fn inverter_chain_delay_scales_with_length() {
        let f3 = fixture_from_text("INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\ny = NOT(w2)\n");
        let f6 = fixture_from_text(
            "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\nw3 = NOT(w2)\n\
             w4 = NOT(w3)\nw5 = NOT(w4)\ny = NOT(w5)\n",
        );
        let d3 = f3.sta().analyze(AnalysisMode::BestCase).expect("3");
        let d6 = f6.sta().analyze(AnalysisMode::BestCase).expect("6");
        assert!(d6.longest_delay > 1.5 * d3.longest_delay);
        assert_eq!(d3.critical_path.len(), 3);
        assert_eq!(d6.critical_path.len(), 6);
    }

    #[test]
    fn s27_all_modes_run_and_order_correctly() {
        let f = fixture_from_text(data::S27_BENCH);
        let sta = f.sta();
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let doubled = sta.analyze(AnalysisMode::StaticDoubled).expect("doubled");
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst");
        let one = sta.analyze(AnalysisMode::OneStep).expect("one");
        let iter = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter");
        // Paper orderings.
        assert!(best.longest_delay <= doubled.longest_delay + 1e-15);
        assert!(best.longest_delay <= one.longest_delay + 1e-15);
        assert!(one.longest_delay <= worst.longest_delay + 1e-12);
        assert!(iter.longest_delay <= one.longest_delay + 1e-12);
        assert!(best.longest_delay > 0.0);
    }

    #[test]
    fn synthetic_circuit_mode_ordering() {
        let f = fixture_small(17);
        let sta = f.sta();
        let best = sta
            .analyze(AnalysisMode::BestCase)
            .expect("best")
            .longest_delay;
        let one = sta
            .analyze(AnalysisMode::OneStep)
            .expect("one")
            .longest_delay;
        let worst = sta
            .analyze(AnalysisMode::WorstCase)
            .expect("worst")
            .longest_delay;
        let iter = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iter")
            .longest_delay;
        assert!(best <= one + 1e-15, "best {best} <= one-step {one}");
        assert!(one <= worst + 1e-12, "one-step {one} <= worst {worst}");
        assert!(iter <= one + 1e-12, "iterative {iter} <= one-step {one}");
        assert!(worst > best, "coupling must matter on a routed circuit");
    }

    #[test]
    fn iterative_converges_monotonically() {
        let f = fixture_small(5);
        let sta = f.sta();
        let r = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("iterative");
        assert!(r.passes >= 2, "at least one refinement pass");
        for w in r.pass_delays.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "pass delays must not increase: {:?}",
                r.pass_delays
            );
        }
    }

    #[test]
    fn esperance_reaches_same_fixpoint() {
        let f = fixture_small(23);
        let sta = f.sta();
        let plain = sta
            .analyze(AnalysisMode::Iterative { esperance: false })
            .expect("plain");
        let esp = sta
            .analyze(AnalysisMode::Iterative { esperance: true })
            .expect("esperance");
        // Esperance skips work but must stay a safe bound and land close.
        assert!(esp.longest_delay >= plain.longest_delay - 1e-12);
        assert!(
            esp.longest_delay <= plain.longest_delay * 1.05 + 1e-12,
            "esperance {} vs plain {}",
            esp.longest_delay,
            plain.longest_delay
        );
        assert!(esp.stage_solves <= plain.stage_solves);
    }

    #[test]
    fn one_step_costs_about_twice_plain() {
        let f = fixture_small(29);
        let sta = f.sta();
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let one = sta.analyze(AnalysisMode::OneStep).expect("one");
        assert!(one.stage_solves > best.stage_solves);
        assert!(one.stage_solves <= 2 * best.stage_solves);
    }

    #[test]
    fn critical_path_is_connected() {
        let f = fixture_small(31);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::OneStep).expect("analyze");
        assert!(!r.critical_path.is_empty());
        // Arrivals along the path must not decrease.
        for w in r.critical_path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival - 1e-12);
        }
        // Every step's gate output must feed the next step's gate.
        for w in r.critical_path.windows(2) {
            let out = f.netlist.gate(w[0].gate).output;
            let next_inputs = &f.netlist.gate(w[1].gate).inputs;
            assert!(
                next_inputs.contains(&out),
                "path steps must be electrically connected"
            );
        }
    }

    #[test]
    fn endpoint_is_reported() {
        let f = fixture_from_text(data::C17_BENCH);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::BestCase).expect("analyze");
        let net = r.endpoint_net.expect("endpoint is a net");
        assert!(f.netlist.net(net).is_primary_output);
    }

    #[test]
    fn min_delay_is_a_lower_bound() {
        let f = fixture_small(41);
        let sta = f.sta();
        let min = sta.analyze(AnalysisMode::MinDelay).expect("min");
        let best = sta.analyze(AnalysisMode::BestCase).expect("best");
        let worst = sta.analyze(AnalysisMode::WorstCase).expect("worst");
        assert!(min.longest_delay > 0.0);
        assert!(
            min.longest_delay <= best.longest_delay,
            "min {} <= best-case longest {}",
            min.longest_delay,
            best.longest_delay
        );
        assert!(min.longest_delay <= worst.longest_delay);
        assert!(!min.critical_path.is_empty(), "shortest path reported");
        // Shortest-path arrivals are non-decreasing along the path too.
        for w in min.critical_path.windows(2) {
            assert!(w[1].arrival >= w[0].arrival - 1e-12);
        }
    }

    #[test]
    fn endpoint_arrivals_cover_all_endpoints() {
        let f = fixture_small(43);
        let sta = f.sta();
        let r = sta.analyze(AnalysisMode::BestCase).expect("analysis");
        assert!(!r.endpoints.is_empty());
        // The reported longest delay is attained by some endpoint summary.
        let max = r
            .endpoints
            .iter()
            .map(|e| e.latest())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - r.longest_delay).abs() < 1e-15);
        for e in &r.endpoints {
            assert!(e.earliest() <= e.latest());
        }
    }

    #[test]
    fn launch_stages_give_dff_q_both_directions() {
        let f = fixture_from_text(data::S27_BENCH);
        let sta = f.sta();
        let out = sta
            .ctx()
            .run_pass(&crate::policy::quiet::AllQuiet, None, None)
            .expect("pass");
        let q = f.netlist.net_by_name("G5").expect("ff output");
        let node = sta.graph.net_node[q.index()];
        let st = &out.states[node.index()];
        assert!(st.get(true).is_some(), "Q rise arrival");
        assert!(st.get(false).is_some(), "Q fall arrival");
        // Q launches after the clock (buffer-free here, small but positive).
        assert!(st.get(true).expect("rise").crossing > 0.0);
    }
}
