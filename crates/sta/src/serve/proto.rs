//! Wire protocol of the timing service: framing, request/response shapes,
//! and the severity/exit-code mapping.
//!
//! # Framing
//!
//! Every message — request or response — is one JSON document framed as
//!
//! ```text
//! [len: u32 little-endian][payload: len bytes of UTF-8 JSON]
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are rejected before allocation, so a
//! corrupt peer cannot make the daemon allocate gigabytes off a garbage
//! length word.
//!
//! # Requests
//!
//! Objects with a `cmd` field; everything else is command-specific:
//!
//! | `cmd` | fields | effect |
//! |-------|--------|--------|
//! | `load` | `design`, `netlist`, `spef?` | load a design into a resident session |
//! | `analyze` | `design`, `mode?` | run (or replay) an analysis |
//! | `eco` | `design`, `edits` (array of script lines) | apply typed edits |
//! | `what-if` | `design`, `edits`, `mode?` | apply → analyze → roll back |
//! | `query` | `design`, `net`, `mode?`, `period_ns?` | one endpoint's arrivals/slack |
//! | `stats` | — | daemon, session, cache and store counters |
//! | `shutdown` | — | answer, then stop accepting and exit |
//!
//! # Responses
//!
//! Objects with `ok: true` plus command-specific payload, or `ok: false`
//! with `error`, `severity` and `exit_code`. Successful analyses also carry
//! `severity`/`exit_code` keyed to the worst contained diagnostic, mirroring
//! the batch CLI (0 clean, 2 warnings, 3 conservative bounds substituted).
//! Delays cross the wire twice: human-readable `delay_ns` (a JSON number)
//! and bit-exact `delay_bits` (the IEEE-754 bits as 16 hex digits), so
//! clients can assert bit-identity against a batch run without a lossy
//! decimal round-trip.

use std::io::{Read, Write};

use crate::diag::Severity;
use crate::mode::AnalysisMode;
use crate::serve::json::Json;

/// Upper bound on one frame, requests and responses alike (16 MiB — a full
/// endpoint dump of the largest generated design fits with margin).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects documents over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, doc: &Json) -> std::io::Result<()> {
    let payload = doc.write();
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. `Ok(None)` is a clean EOF (the
/// peer closed between frames); a mid-frame EOF, an oversized length or
/// malformed JSON is an `InvalidData` error.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` on framing or JSON violations.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let doc =
        Json::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some(doc))
}

/// Exit code for the worst contained-fault severity — the same mapping the
/// batch CLI uses: 0 clean (or info only), 2 warnings contained, 3
/// conservative bounds substituted.
#[must_use]
pub fn exit_code_for(severity: Option<Severity>) -> i32 {
    match severity {
        None | Some(Severity::Info) => 0,
        Some(Severity::Warning) => 2,
        Some(Severity::Error) => 3,
    }
}

/// The protocol token of a severity (`"info"` / `"warning"` / `"error"`).
#[must_use]
pub fn severity_token(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Parses a protocol mode token — same vocabulary as the batch CLI's
/// `--mode` flag: `best`, `doubled`, `worst`, `onestep`, `iterative`,
/// `esperance`, `min`.
#[must_use]
pub fn parse_mode(token: &str) -> Option<AnalysisMode> {
    Some(match token {
        "best" => AnalysisMode::BestCase,
        "doubled" => AnalysisMode::StaticDoubled,
        "worst" => AnalysisMode::WorstCase,
        "onestep" => AnalysisMode::OneStep,
        "iterative" => AnalysisMode::Iterative { esperance: false },
        "esperance" => AnalysisMode::Iterative { esperance: true },
        "min" => AnalysisMode::MinDelay,
        _ => return None,
    })
}

/// The protocol token of a mode (inverse of [`parse_mode`]).
#[must_use]
pub fn mode_token(mode: AnalysisMode) -> &'static str {
    match mode {
        AnalysisMode::BestCase => "best",
        AnalysisMode::StaticDoubled => "doubled",
        AnalysisMode::WorstCase => "worst",
        AnalysisMode::OneStep => "onestep",
        AnalysisMode::Iterative { esperance: false } => "iterative",
        AnalysisMode::Iterative { esperance: true } => "esperance",
        AnalysisMode::MinDelay => "min",
    }
}

/// Renders an `f64` as its 16-hex-digit IEEE-754 bit pattern — the
/// bit-exact transport for delays (JSON numbers round-trip through decimal
/// text and cannot be trusted to the last ulp).
#[must_use]
pub fn f64_bits_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses a [`f64_bits_hex`] string back to the exact `f64`.
#[must_use]
pub fn f64_from_bits_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Builds an `ok: false` response: `error` text, optional `severity`
/// token, and the matching `exit_code`.
#[must_use]
pub fn error_response(message: &str, severity: Option<Severity>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(false)), ("error", Json::str(message))];
    if let Some(s) = severity {
        pairs.push(("severity", Json::str(severity_token(s))));
    }
    pairs.push(("exit_code", Json::num(exit_code_for(severity) as f64)));
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let doc = Json::obj(vec![
            ("cmd", Json::str("analyze")),
            ("design", Json::str("d")),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).expect("write");
        write_frame(&mut buf, &Json::Bool(true)).expect("write 2");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("frame 1"), Some(doc));
        assert_eq!(read_frame(&mut r).expect("frame 2"), Some(Json::Bool(true)));
        assert_eq!(read_frame(&mut r).expect("eof"), None, "clean EOF");
    }

    #[test]
    fn corrupt_frames_are_errors_not_hangs() {
        // Oversized length word.
        let mut bad = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(b"xx");
        assert!(read_frame(&mut &bad[..]).is_err());
        // Truncated payload.
        let mut trunc = 10u32.to_le_bytes().to_vec();
        trunc.extend_from_slice(b"abc");
        assert!(read_frame(&mut &trunc[..]).is_err());
        // Valid framing, invalid JSON.
        let mut badjson = 3u32.to_le_bytes().to_vec();
        badjson.extend_from_slice(b"{{{");
        assert!(read_frame(&mut &badjson[..]).is_err());
    }

    #[test]
    fn exit_codes_match_the_batch_cli() {
        assert_eq!(exit_code_for(None), 0);
        assert_eq!(exit_code_for(Some(Severity::Info)), 0);
        assert_eq!(exit_code_for(Some(Severity::Warning)), 2);
        assert_eq!(exit_code_for(Some(Severity::Error)), 3);
        let resp = error_response("bounds substituted", Some(Severity::Error));
        assert_eq!(resp.get("exit_code").and_then(Json::as_u64), Some(3));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn mode_tokens_round_trip() {
        for token in [
            "best",
            "doubled",
            "worst",
            "onestep",
            "iterative",
            "esperance",
            "min",
        ] {
            let mode = parse_mode(token).expect(token);
            assert_eq!(mode_token(mode), token);
        }
        assert!(parse_mode("warp").is_none());
    }

    #[test]
    fn delay_bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.234e-9, f64::MIN_POSITIVE, 123.456] {
            let hex = f64_bits_hex(x);
            let back = f64_from_bits_hex(&hex).expect("parse");
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert!(f64_from_bits_hex("zzzz").is_none());
        assert!(f64_from_bits_hex("abc").is_none());
    }
}
