//! A blocking client for the timing-service daemon.
//!
//! Wraps one Unix-domain connection and the request/response framing;
//! callers build requests as [`Json`] documents (or use the typed
//! convenience methods) and get the daemon's response document back.

use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::serve::json::Json;
use crate::serve::proto;

/// One connection to a running daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket at `path`.
    ///
    /// # Errors
    ///
    /// Standard connection errors (`NotFound` before the daemon has bound,
    /// `ConnectionRefused` against a stale socket file).
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Connects, retrying until `timeout` elapses — for callers that just
    /// started the daemon and race its bind.
    ///
    /// # Errors
    ///
    /// The last connection error once the timeout is exhausted.
    pub fn connect_retry(path: &Path, timeout: Duration) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(path) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request document and reads the response document.
    ///
    /// # Errors
    ///
    /// I/O errors, including `UnexpectedEof` when the daemon closed the
    /// connection without answering.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        proto::write_frame(&mut self.stream, request)?;
        proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without a response",
            )
        })
    }

    /// `load`: installs `netlist` (with optional SPEF parasitics) as the
    /// session named `design`.
    ///
    /// # Errors
    ///
    /// Transport errors only; a rejected load is an `ok: false` response.
    pub fn load(
        &mut self,
        design: &str,
        netlist: &str,
        spef: Option<&str>,
    ) -> std::io::Result<Json> {
        let mut fields = vec![
            ("cmd", Json::str("load")),
            ("design", Json::str(design)),
            ("netlist", Json::str(netlist)),
        ];
        if let Some(spef) = spef {
            fields.push(("spef", Json::str(spef)));
        }
        self.request(&Json::obj(fields))
    }

    /// `analyze`: runs (or replays) the session's analysis under `mode`
    /// (a protocol mode token; `None` = iterative).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn analyze(&mut self, design: &str, mode: Option<&str>) -> std::io::Result<Json> {
        let mut fields = vec![("cmd", Json::str("analyze")), ("design", Json::str(design))];
        if let Some(mode) = mode {
            fields.push(("mode", Json::str(mode)));
        }
        self.request(&Json::obj(fields))
    }

    /// `eco`: applies edit-script lines to the session.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn eco(&mut self, design: &str, edits: &[&str]) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![
            ("cmd", Json::str("eco")),
            ("design", Json::str(design)),
            (
                "edits",
                Json::Arr(edits.iter().map(|e| Json::str(*e)).collect()),
            ),
        ]))
    }

    /// `what-if`: applies edits, analyzes, and rolls the session back.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn what_if(
        &mut self,
        design: &str,
        edits: &[&str],
        mode: Option<&str>,
    ) -> std::io::Result<Json> {
        let mut fields = vec![
            ("cmd", Json::str("what-if")),
            ("design", Json::str(design)),
            (
                "edits",
                Json::Arr(edits.iter().map(|e| Json::str(*e)).collect()),
            ),
        ];
        if let Some(mode) = mode {
            fields.push(("mode", Json::str(mode)));
        }
        self.request(&Json::obj(fields))
    }

    /// `query`: one endpoint's arrivals (and slack against `period_ns`).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn query(
        &mut self,
        design: &str,
        net: &str,
        mode: Option<&str>,
        period_ns: Option<f64>,
    ) -> std::io::Result<Json> {
        let mut fields = vec![
            ("cmd", Json::str("query")),
            ("design", Json::str(design)),
            ("net", Json::str(net)),
        ];
        if let Some(mode) = mode {
            fields.push(("mode", Json::str(mode)));
        }
        if let Some(p) = period_ns {
            fields.push(("period_ns", Json::num(p)));
        }
        self.request(&Json::obj(fields))
    }

    /// `stats`: daemon, session, cache and store counters.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("cmd", Json::str("stats"))]))
    }

    /// `shutdown`: asks the daemon to stop after answering.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj(vec![("cmd", Json::str("shutdown"))]))
    }
}
