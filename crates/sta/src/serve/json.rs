//! A minimal JSON value type with a strict parser and writer.
//!
//! The serve protocol ([`crate::serve::proto`]) frames JSON documents over
//! a Unix-domain socket. The workspace builds fully offline with no
//! third-party dependencies, so this module provides the small JSON subset
//! the protocol needs: objects, arrays, strings (with escapes), finite
//! numbers, booleans and null. Two deliberate choices:
//!
//! - **Objects preserve insertion order** (a `Vec` of pairs, not a map):
//!   responses render deterministically, which the tests and the CI smoke
//!   script rely on. Duplicate keys are rejected at parse time.
//! - **Numbers are `f64`** — every counter the protocol carries fits in
//!   the 53-bit exact-integer range. Values that must cross the wire
//!   bit-exactly (waveform arrivals) travel as hex strings of their
//!   IEEE-754 bits instead, never as JSON numbers.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order and keys are unique.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, when it is an exact non-negative
    /// integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: the string at object field `key`.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Parses a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err_at(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes the document to compact JSON text.
    #[must_use]
    pub fn write(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.write())
    }
}

fn err_at(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err_at(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err_at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err_at(start, "invalid number bytes"))?;
    let n: f64 = text
        .parse()
        .map_err(|_| err_at(start, format!("invalid number `{text}`")))?;
    if !n.is_finite() {
        return Err(err_at(start, "non-finite numbers are not JSON"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err_at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, pos)?;
                        // Combine a surrogate pair when one follows;
                        // otherwise accept the unit (lone surrogates map to
                        // the replacement character).
                        let ch = if (0xd800..0xdc00).contains(&unit)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let save = *pos;
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if (0xdc00..0xe000).contains(&low) {
                                let c = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(c).unwrap_or('\u{fffd}')
                            } else {
                                *pos = save;
                                '\u{fffd}'
                            }
                        } else {
                            char::from_u32(unit).unwrap_or('\u{fffd}')
                        };
                        out.push(ch);
                    }
                    _ => return Err(err_at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err_at(*pos, "raw control character in string")),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are
                // valid by construction).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| err_at(*pos, "invalid utf-8"))?;
                let ch = text.chars().next().ok_or_else(|| err_at(*pos, "empty"))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Parses the `XXXX` of a `\uXXXX` escape; `pos` is left on the last hex
/// digit (the caller's shared `+= 1` steps past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let hex = bytes
        .get(start..start + 4)
        .ok_or_else(|| err_at(start, "truncated \\u escape"))?;
    let text = std::str::from_utf8(hex).map_err(|_| err_at(start, "invalid \\u escape bytes"))?;
    let unit = u32::from_str_radix(text, 16).map_err(|_| err_at(start, "invalid \\u escape"))?;
    *pos += 4;
    Ok(unit)
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err_at(*pos, "expected object key string"));
        }
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(err_at(key_at, format!("duplicate key `{key}`")));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err_at(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err_at(*pos, "expected `,` or `}`")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err_at(*pos, "expected `,` or `]`")),
        }
    }
}

fn write_value(value: &Json, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            // Integers in the exact range print without a fraction.
            if n.fract() == 0.0 && n.abs() < 9.1e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let doc = Json::obj(vec![
            ("cmd", Json::str("analyze")),
            ("design", Json::str("s38417")),
            ("threads", Json::num(4.0)),
            ("ok", Json::Bool(true)),
            ("spef", Json::Null),
            (
                "edits",
                Json::Arr(vec![Json::str("resize u42 INVX4"), Json::str("buffer n3")]),
            ),
        ]);
        let text = doc.write();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(back.str_field("cmd"), Some("analyze"));
        assert_eq!(back.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(
            back.get("edits").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn escapes_survive_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t control \u{1} unicode \u{e9}";
        let doc = Json::obj(vec![("s", Json::str(nasty))]);
        let back = Json::parse(&doc.write()).expect("round trip");
        assert_eq!(back.str_field("s"), Some(nasty));
        // Standard escapes parse too.
        let parsed = Json::parse(r#"{"s": "aéA\/b"}"#).expect("escapes");
        assert_eq!(parsed.str_field("s"), Some("a\u{e9}A/b"));
        // Surrogate pairs combine into one scalar.
        let pair = Json::parse(r#""😀""#).expect("surrogate pair");
        assert_eq!(pair.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "tru",
            "{\"a\": 1} junk",
            "\"unterminated",
            "{\"a\": 1, \"a\": 2}",
            "nan",
            "1e999",
            "\"bad \u{7}\"",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len(), "{bad}: offset out of range");
        }
    }

    #[test]
    fn numbers_preserve_exact_integers() {
        let doc = Json::parse("[0, -3, 9007199254740992, 1.5, 2e3]").expect("numbers");
        let items = doc.as_arr().expect("array");
        assert_eq!(items[0].as_u64(), Some(0));
        assert_eq!(items[1].as_f64(), Some(-3.0));
        assert_eq!(items[2].as_u64(), Some(9_007_199_254_740_992));
        assert_eq!(items[3].as_u64(), None, "fractions are not u64s");
        assert_eq!(items[4].as_f64(), Some(2000.0));
        assert_eq!(Json::Num(42.0).write(), "42");
    }
}
