//! The persistent cross-process solve store: a checksummed append-only
//! log of stage-solve cache entries.
//!
//! The daemon writes solved (key, waveform) pairs behind each request; on
//! startup the log is replayed into every fresh session's stage-solve
//! cache, so the first analysis after a daemon restart begins warm and
//! performs strictly fewer Newton integrations than a cold batch run.
//! Because the cache is exact-match on the solver's full bit-canonical
//! inputs, a replayed entry can change *work*, never *results* — disk-warm
//! analyses are bit-identical to cold ones.
//!
//! # Format
//!
//! ```text
//! [magic: 17 bytes "XTALKSOLVESTORE1\n"]
//! record*:
//!   [len: u32 LE]          payload length
//!   [checksum: u64 LE]     FNV-1a over the payload bytes
//!   [payload: len bytes]   one (SolveKey, Waveform) pair, see below
//! ```
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! u16 cell_len, cell bytes            — library cell name
//! u32 stage, u32 slot, u8 flags      — stage identity within the cell
//! u32 n, n × (u64, u64)              — input waveform canonical bit pairs
//! u64 cground                        — grounded load, canonical bits
//! u32 m, m × (u64, u8)               — coupling caps (bits, mode byte)
//! u32 k, k × (u64, u64)              — result waveform raw f64 bits
//! ```
//!
//! # Corruption policy
//!
//! The store is written behind a live daemon, so a crash can leave a torn
//! tail, and disks flip bits. Replay therefore trusts nothing:
//!
//! - a record whose checksum does not match its payload is **skipped** and
//!   counted — the frame structure is still intact, so replay continues
//!   with the next record;
//! - an implausible length word (zero, over [`MAX_RECORD`], or pointing
//!   past EOF) means the framing itself is gone; replay **stops** there,
//!   dropping the unreadable tail;
//! - a payload that fails structural parsing or waveform validation is
//!   skipped like a checksum mismatch.
//!
//! In every case the store loads fewer entries, never a wrong one: a
//! corrupt entry can cost warmth, not correctness.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use xtalk_wave::signature::StableHasher;
use xtalk_wave::Waveform;

use crate::exec::cache::{SolveCache, SolveKey};

/// Leading magic of a store file (version-bumped on format changes).
pub const MAGIC: &[u8] = b"XTALKSOLVESTORE1\n";

/// Upper bound on one record's payload; length words above this are
/// treated as framing corruption.
pub const MAX_RECORD: usize = 1 << 20;

/// Counters describing a store's lifetime (replay + appends).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Entries successfully replayed into session caches.
    pub replayed: u64,
    /// Corrupt records skipped during replay (checksum, parse or waveform
    /// failures), plus one for a truncated/unframed tail if hit.
    pub corrupt_skipped: u64,
    /// Records appended by this process (after dedup).
    pub appended: u64,
    /// Journal entries dropped as duplicates of already-stored records.
    pub deduped: u64,
}

/// The append-only on-disk solve store. All methods take `&self`; the
/// writer and dedup set are internally locked, so the daemon's connection
/// threads share one instance.
pub struct SolveStore {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// Payload hashes of every record on disk (loaded + appended), for
    /// write-behind dedup across daemon restarts.
    seen: Mutex<HashSet<u64>>,
    stats: Mutex<StoreStats>,
}

impl std::fmt::Debug for SolveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveStore")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SolveStore {
    /// Opens (creating if absent) the store file at `path`. A new file gets
    /// the magic header; an existing one keeps its records for
    /// `replay`. The parent directory must exist.
    ///
    /// # Errors
    ///
    /// I/O errors from open/create; `InvalidData` when an existing file
    /// does not start with the store magic (wrong file — refusing to
    /// append garbage to it).
    pub fn open(path: &Path) -> std::io::Result<SolveStore> {
        let mut seen = HashSet::new();
        // An empty existing file (a crash between create and header write)
        // counts as fresh and gets its magic (re)written.
        let fresh = !path.exists() || std::fs::metadata(path)?.len() == 0;
        if !fresh {
            // Pre-scan the intact prefix so appends dedup against it.
            let bytes = std::fs::read(path)?;
            if !bytes.starts_with(MAGIC) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not a solve store (bad magic)", path.display()),
                ));
            }
            let mut cursor = MAGIC.len();
            while let Some((payload, next)) = next_record(&bytes, cursor) {
                if let Some(payload) = payload {
                    seen.insert(payload_hash(payload));
                }
                cursor = next;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut writer = BufWriter::new(file);
        if fresh {
            writer.write_all(MAGIC)?;
            writer.flush()?;
        }
        Ok(SolveStore {
            path: path.to_path_buf(),
            writer: Mutex::new(writer),
            seen: Mutex::new(seen),
            stats: Mutex::new(StoreStats::default()),
        })
    }

    /// The store file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime counters so far.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        *lock(&self.stats)
    }

    /// Replays every intact record into `cache` (via
    /// [`SolveCache::preload`]), skipping corrupt ones per the module-level
    /// policy. Returns `(replayed, corrupt_skipped)` for this call; the
    /// lifetime totals accumulate in [`stats`](Self::stats).
    ///
    /// # Errors
    ///
    /// Only on failing to read the file itself; corruption inside the file
    /// is never an error.
    pub(crate) fn replay(&self, cache: &SolveCache) -> std::io::Result<(u64, u64)> {
        // Take the writer lock across the read so a concurrent append
        // cannot interleave a half-written record into our view.
        let mut writer = lock(&self.writer);
        writer.flush()?;
        let bytes = std::fs::read(&self.path)?;
        drop(writer);
        let mut replayed = 0u64;
        let mut corrupt = 0u64;
        if !bytes.starts_with(MAGIC) {
            // The header itself was damaged after open(): everything below
            // it is unreadable. Start cold.
            let mut stats = lock(&self.stats);
            stats.corrupt_skipped += 1;
            return Ok((0, 1));
        }
        let mut cursor = MAGIC.len();
        loop {
            match next_record(&bytes, cursor) {
                None if cursor == bytes.len() => break, // clean end
                None => {
                    // Truncated or unframed tail: stop, count once.
                    corrupt += 1;
                    break;
                }
                Some((payload, next)) => {
                    match payload.and_then(decode_payload) {
                        Some((key, wave)) => {
                            cache.preload(key, wave);
                            replayed += 1;
                        }
                        None => corrupt += 1,
                    }
                    cursor = next;
                }
            }
        }
        let mut stats = lock(&self.stats);
        stats.replayed += replayed;
        stats.corrupt_skipped += corrupt;
        Ok((replayed, corrupt))
    }

    /// Appends journal entries (deduplicating against everything already on
    /// disk) and flushes. Returns how many records were actually written.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying file.
    pub(crate) fn append(&self, entries: &[(SolveKey, Waveform)]) -> std::io::Result<u64> {
        if entries.is_empty() {
            return Ok(0);
        }
        let mut written = 0u64;
        let mut deduped = 0u64;
        let mut writer = lock(&self.writer);
        let mut seen = lock(&self.seen);
        for (key, wave) in entries {
            let payload = encode_payload(key, wave);
            let hash = payload_hash(&payload);
            if !seen.insert(hash) {
                deduped += 1;
                continue;
            }
            let mut h = StableHasher::new();
            h.write_bytes(&payload);
            writer.write_all(&(payload.len() as u32).to_le_bytes())?;
            writer.write_all(&h.finish().to_le_bytes())?;
            writer.write_all(&payload)?;
            written += 1;
        }
        writer.flush()?;
        drop(writer);
        drop(seen);
        let mut stats = lock(&self.stats);
        stats.appended += written;
        stats.deduped += deduped;
        Ok(written)
    }
}

/// Poison-tolerant lock: the store must keep serving after a panicked
/// connection thread.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV over a payload, as the dedup identity of a record.
fn payload_hash(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Walks one record starting at `cursor`. Returns `None` when the framing
/// is unusable from here on (truncated header/payload or implausible
/// length — including the clean-EOF case, which the caller distinguishes
/// by `cursor == bytes.len()`). Otherwise returns the payload —
/// `Some(bytes)` if its checksum matched, `None` if not — and the offset
/// of the next record.
#[allow(clippy::type_complexity)]
fn next_record(bytes: &[u8], cursor: usize) -> Option<(Option<&[u8]>, usize)> {
    let head = bytes.get(cursor..cursor + 12)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len == 0 || len > MAX_RECORD {
        return None;
    }
    let checksum = u64::from_le_bytes([
        head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
    ]);
    let start = cursor + 12;
    let payload = bytes.get(start..start + len)?;
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    let ok = h.finish() == checksum;
    Some((ok.then_some(payload), start + len))
}

fn encode_payload(key: &SolveKey, wave: &Waveform) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        2 + key.cell.len()
            + 9
            + 4
            + key.wave.len() * 16
            + 8
            + 4
            + key.couplings.len() * 9
            + 4
            + wave.points().len() * 16,
    );
    out.extend_from_slice(&(key.cell.len() as u16).to_le_bytes());
    out.extend_from_slice(key.cell.as_bytes());
    out.extend_from_slice(&key.stage.to_le_bytes());
    out.extend_from_slice(&key.slot.to_le_bytes());
    out.push(key.flags);
    out.extend_from_slice(&(key.wave.len() as u32).to_le_bytes());
    for &(t, v) in &key.wave {
        out.extend_from_slice(&t.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&key.cground.to_le_bytes());
    out.extend_from_slice(&(key.couplings.len() as u32).to_le_bytes());
    for &(c, mode) in &key.couplings {
        out.extend_from_slice(&c.to_le_bytes());
        out.push(mode);
    }
    let points = wave.points();
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for &(t, v) in points {
        out.extend_from_slice(&t.to_bits().to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decodes one payload back into a cache entry. `None` on any structural
/// violation or when the stored waveform fails validation — a checksum
/// collision over a damaged record must not preload garbage.
fn decode_payload(payload: &[u8]) -> Option<(SolveKey, Waveform)> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let cell_len = r.u16()? as usize;
    let cell = String::from_utf8(r.take(cell_len)?.to_vec()).ok()?;
    let stage = r.u32()?;
    let slot = r.u32()?;
    let flags = r.u8()?;
    let n = r.u32()? as usize;
    if n > MAX_RECORD / 16 {
        return None;
    }
    let mut wave = Vec::with_capacity(n);
    for _ in 0..n {
        wave.push((r.u64()?, r.u64()?));
    }
    let cground = r.u64()?;
    let m = r.u32()? as usize;
    if m > MAX_RECORD / 9 {
        return None;
    }
    let mut couplings = Vec::with_capacity(m);
    for _ in 0..m {
        couplings.push((r.u64()?, r.u8()?));
    }
    let k = r.u32()? as usize;
    if k > MAX_RECORD / 16 {
        return None;
    }
    let mut points = Vec::with_capacity(k);
    for _ in 0..k {
        points.push((f64::from_bits(r.u64()?), f64::from_bits(r.u64()?)));
    }
    if r.pos != payload.len() {
        return None; // trailing bytes: not a record we wrote
    }
    let result = Waveform::new(points).ok()?;
    Some((
        SolveKey::from_parts(cell, stage, slot, flags, wave, cground, couplings),
        result,
    ))
}

/// A bounds-checked little-endian cursor over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CacheAdmission;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xtalk_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn entry(tag: u32) -> (SolveKey, Waveform) {
        let key = SolveKey::from_parts(
            "INVX1".into(),
            0,
            tag,
            1,
            vec![(1, 2), (3, u64::from(tag))],
            42,
            vec![(7, 1)],
        );
        let wave = Waveform::new(vec![(0.0, 0.0), (1e-9 * f64::from(tag + 1), 3.3)])
            .expect("valid waveform");
        (key, wave)
    }

    fn cache() -> SolveCache {
        SolveCache::new(true, 1 << 12, CacheAdmission::All)
    }

    #[test]
    fn round_trips_entries_across_reopen() {
        let path = tmp("roundtrip.log");
        let _ = std::fs::remove_file(&path);
        let store = SolveStore::open(&path).expect("open");
        let entries: Vec<_> = (0..5).map(entry).collect();
        assert_eq!(store.append(&entries).expect("append"), 5);
        drop(store);

        let store = SolveStore::open(&path).expect("reopen");
        let c = cache();
        let (replayed, corrupt) = store.replay(&c).expect("replay");
        assert_eq!((replayed, corrupt), (5, 0));
        assert_eq!(c.len(), 5);
        // Reopen deduplicates: appending the same entries writes nothing.
        assert_eq!(store.append(&entries).expect("re-append"), 0);
        assert_eq!(store.stats().deduped, 5);
    }

    #[test]
    fn duplicate_entries_are_written_once() {
        let path = tmp("dedup.log");
        let _ = std::fs::remove_file(&path);
        let store = SolveStore::open(&path).expect("open");
        let e = entry(1);
        let twice = vec![e.clone(), e];
        assert_eq!(store.append(&twice).expect("append"), 1);
        assert_eq!(store.stats().deduped, 1);
    }

    #[test]
    fn checksum_corruption_skips_one_record_and_continues() {
        let path = tmp("corrupt_mid.log");
        let _ = std::fs::remove_file(&path);
        let store = SolveStore::open(&path).expect("open");
        store
            .append(&(0..3).map(entry).collect::<Vec<_>>())
            .expect("append");
        drop(store);

        // Flip one payload byte inside the *second* record.
        let mut bytes = std::fs::read(&path).expect("read");
        let first_len =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().expect("len"))
                as usize;
        let second_payload_at = MAGIC.len() + 12 + first_len + 12 + 3;
        bytes[second_payload_at] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write corrupted");

        let store = SolveStore::open(&path).expect("reopen");
        let c = cache();
        let (replayed, corrupt) = store.replay(&c).expect("replay");
        assert_eq!(corrupt, 1, "exactly the damaged record is skipped");
        assert_eq!(replayed, 2, "records before and after it survive");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn truncated_tail_stops_replay_without_error() {
        let path = tmp("truncated.log");
        let _ = std::fs::remove_file(&path);
        let store = SolveStore::open(&path).expect("open");
        store
            .append(&(0..2).map(entry).collect::<Vec<_>>())
            .expect("append");
        drop(store);

        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");

        let store = SolveStore::open(&path).expect("reopen");
        let c = cache();
        let (replayed, corrupt) = store.replay(&c).expect("replay");
        assert_eq!(replayed, 1, "the intact first record loads");
        assert_eq!(corrupt, 1, "the torn tail counts once");
    }

    #[test]
    fn implausible_length_word_stops_replay() {
        let path = tmp("badlen.log");
        let _ = std::fs::remove_file(&path);
        let store = SolveStore::open(&path).expect("open");
        store
            .append(&(0..2).map(entry).collect::<Vec<_>>())
            .expect("append");
        drop(store);

        // Smash the second record's length word to a huge value.
        let mut bytes = std::fs::read(&path).expect("read");
        let first_len =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().expect("len"))
                as usize;
        let second_at = MAGIC.len() + 12 + first_len;
        bytes[second_at..second_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");

        let store = SolveStore::open(&path).expect("reopen");
        let c = cache();
        let (replayed, corrupt) = store.replay(&c).expect("replay");
        assert_eq!(replayed, 1);
        assert_eq!(corrupt, 1);
    }

    #[test]
    fn non_store_file_is_rejected_at_open() {
        let path = tmp("notastore.log");
        std::fs::write(&path, b"hello world, definitely not a store").expect("write");
        let e = SolveStore::open(&path).expect_err("bad magic must be rejected");
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }
}
