//! The persistent timing service: a resident daemon, its wire protocol,
//! and the cross-process on-disk solve store.
//!
//! The batch CLI pays the full cost of its state on every invocation:
//! parse, place/route/extract, graph build, and — dominating everything —
//! cold transistor-level stage solves. This module keeps that state alive
//! instead:
//!
//! - [`daemon`] — `xtalk serve`: a long-lived process holding loaded
//!   designs and their [`crate::IncrementalSta`] sessions, answering
//!   concurrent clients over a Unix-domain socket;
//! - [`proto`] — the length-prefixed JSON protocol (`load`, `analyze`,
//!   `eco`, `what-if`, `query`, `stats`, `shutdown`) and the
//!   severity/exit-code mapping shared with the batch CLI;
//! - [`store`] — the checksummed append-only solve log: written behind
//!   live requests, replayed (skipping corrupt entries) into fresh
//!   sessions, so even a restarted daemon starts warm;
//! - [`client`] — a blocking client used by `xtalk client`, the tests and
//!   the benches;
//! - [`json`] — the dependency-free JSON value type under all of it.
//!
//! The invariant the whole subsystem leans on: the stage-solve cache is
//! exact-match on bit-canonical solver inputs, so *nothing here changes
//! numbers*. Resident sessions, replayed stores and concurrent clients
//! reproduce the batch CLI's results bit for bit; the service only changes
//! how much work producing them takes.

pub mod client;
pub mod daemon;
pub mod json;
pub mod proto;
pub mod store;

pub use client::Client;
pub use daemon::{Daemon, ServeConfig, ServeSummary};
pub use json::Json;
pub use store::{SolveStore, StoreStats};
