//! The resident timing-service daemon.
//!
//! `xtalk serve` binds a Unix-domain socket and keeps everything that is
//! expensive to build **resident across requests**: parsed netlists,
//! extracted parasitics, CSR timing graphs, per-mode arrival caches and
//! the keyed stage-solve cache — the state a batch CLI run rebuilds from
//! scratch every invocation. Clients speak the length-prefixed JSON
//! protocol of [`crate::serve::proto`]; concurrent connections each get a
//! handler thread, and per-design sessions serialize on their own mutex,
//! so two clients can analyze two designs in parallel but never race one
//! design's incremental state.
//!
//! # Sessions
//!
//! A `load` request parses a design and installs an [`IncrementalSta`]
//! session under a client-chosen name. Subsequent `analyze` / `eco` /
//! `what-if` / `query` requests address the session by that name and hit
//! its warm caches: a repeated analysis replays cached passes (zero stage
//! evaluations), an ECO re-times only its dirty cone, and a what-if runs
//! against a [`IncrementalSta::checkpoint`] and rolls back, leaving the
//! session's timing state exactly as before.
//!
//! # The persistent solve store
//!
//! With a store directory configured, every solved stage result is
//! journaled by the session's stage-solve cache and appended — checksummed
//! and deduplicated — to an on-disk log ([`crate::serve::store`]) after
//! the request that produced it (write-behind: the client's response is
//! not delayed by disk I/O for entries it already has). On `load`, the log
//! is replayed into the fresh session's cache with corrupt entries
//! skipped, so a daemon restarted on a populated store answers its first
//! analysis with strictly fewer Newton integrations than a cold batch run
//! — and, because the cache is exact-match on bit-canonical solver inputs,
//! with bit-identical arrivals.

use std::collections::HashMap;
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use xtalk_layout::Parasitics;
use xtalk_netlist::Netlist;
use xtalk_tech::{Library, Process};

use crate::diag::Severity;
use crate::exec::ExecConfig;
use crate::incremental::{Edit, IncrementalSta};
use crate::mode::AnalysisMode;
use crate::report::ModeReport;
use crate::serve::json::Json;
use crate::serve::proto::{
    self, error_response, exit_code_for, f64_bits_hex, mode_token, severity_token,
};
use crate::serve::store::SolveStore;

/// The technology singletons backing every session. Sessions are
/// `'static` (they outlive any one request), so the library and process
/// they borrow must be too; both are immutable after construction.
fn tech() -> &'static (Process, Library) {
    static TECH: OnceLock<(Process, Library)> = OnceLock::new();
    TECH.get_or_init(|| {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        (process, library)
    })
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix-domain socket to bind. A stale file at this path
    /// (from a crashed daemon) is removed before binding.
    pub socket: PathBuf,
    /// Path of the on-disk solve store; `None` runs memory-only.
    pub store: Option<PathBuf>,
    /// Execution configuration inherited by every session.
    pub exec: ExecConfig,
}

/// What a finished daemon run served.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Requests answered over the daemon's lifetime.
    pub requests: u64,
    /// Sessions resident at shutdown.
    pub sessions: usize,
}

/// One resident design session.
struct Session {
    sta: IncrementalSta<'static>,
    netlist_path: String,
}

/// State shared between the accept loop and every connection thread.
struct Shared {
    exec: ExecConfig,
    store: Option<SolveStore>,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    requests: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running daemon. [`Daemon::bind`] then [`Daemon::run`];
/// the socket file is removed again on clean shutdown.
pub struct Daemon {
    listener: UnixListener,
    socket: PathBuf,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the service socket and opens the solve store (if configured).
    ///
    /// # Errors
    ///
    /// I/O errors from socket binding or store opening (including a store
    /// file with bad magic — refusing to serve off garbage).
    pub fn bind(config: ServeConfig) -> std::io::Result<Daemon> {
        // A leftover socket file from a crashed daemon would fail the bind
        // with AddrInUse; connecting clients would have failed against it
        // anyway, so replacing it is safe.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        if let Some(parent) = config.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let store = match &config.store {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(SolveStore::open(path)?)
            }
            None => None,
        };
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Daemon {
            listener,
            socket: config.socket,
            shared: Arc::new(Shared {
                exec: config.exec,
                store,
                sessions: Mutex::new(HashMap::new()),
                requests: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// Serves requests until a `shutdown` request arrives, then joins the
    /// connection threads and removes the socket file.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors only; per-connection and per-request
    /// failures are answered as protocol error responses instead.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        serve_connection(stream, &shared)
                    }));
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        // Flush any journal entries the last requests produced.
        flush_journals(&self.shared);
        let _ = std::fs::remove_file(&self.socket);
        Ok(ServeSummary {
            requests: self.shared.requests.load(Ordering::Acquire),
            sessions: lock_sessions(&self.shared).len(),
        })
    }
}

/// Poison-tolerant session-map lock.
fn lock_sessions(
    shared: &Shared,
) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Mutex<Session>>>> {
    shared
        .sessions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One connection: read frames, answer them, until EOF or shutdown.
fn serve_connection(stream: UnixStream, shared: &Shared) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let request = match proto::read_frame(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => break, // client hung up cleanly
            Err(e) => {
                // Framing is unrecoverable mid-stream: answer and drop.
                let resp = error_response(&format!("bad frame: {e}"), None);
                let _ = proto::write_frame(&mut writer, &resp);
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::AcqRel);
        let response = handle_request(shared, &request);
        let stop = request.str_field("cmd") == Some("shutdown")
            && response.get("ok").and_then(Json::as_bool) == Some(true);
        if proto::write_frame(&mut writer, &response).is_err() {
            break;
        }
        let _ = writer.flush();
        // Persist what this request solved before accepting the next one.
        flush_journals(shared);
        if stop {
            shared.shutdown.store(true, Ordering::Release);
            break;
        }
    }
}

/// Write-behind: drains every session's solve journal into the store.
/// Sessions busy under another request are skipped — their entries flush
/// after that request completes.
fn flush_journals(shared: &Shared) {
    let Some(store) = &shared.store else {
        return;
    };
    let sessions: Vec<Arc<Mutex<Session>>> = lock_sessions(shared).values().cloned().collect();
    for session in sessions {
        if let Ok(guard) = session.try_lock() {
            let entries = guard.sta.executor().cache().drain_journal();
            if !entries.is_empty() {
                // A full disk costs persistence, not service: the daemon
                // keeps answering from memory.
                let _ = store.append(&entries);
            }
        }
    }
}

/// Dispatches one request to its command handler. Never panics a
/// connection thread: every failure becomes an `ok: false` response.
fn handle_request(shared: &Shared, request: &Json) -> Json {
    let Some(cmd) = request.str_field("cmd") else {
        return error_response("request has no `cmd` field", None);
    };
    match cmd {
        "load" => cmd_load(shared, request),
        "analyze" => cmd_analyze(shared, request),
        "eco" => cmd_eco(shared, request),
        "what-if" => cmd_what_if(shared, request),
        "query" => cmd_query(shared, request),
        "stats" => cmd_stats(shared),
        "shutdown" => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("bye", Json::Bool(true)),
            ("exit_code", Json::num(0.0)),
        ]),
        other => error_response(&format!("unknown command `{other}`"), None),
    }
}

/// Parses a netlist file plus parasitics (SPEF or place/route/extract),
/// exactly like the batch CLI's design loading.
fn load_design(netlist_path: &str, spef: Option<&str>) -> Result<(Netlist, Parasitics), String> {
    let (process, library) = {
        let t = tech();
        (&t.0, &t.1)
    };
    let text = std::fs::read_to_string(netlist_path).map_err(|e| format!("{netlist_path}: {e}"))?;
    let ext = std::path::Path::new(netlist_path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let netlist = match ext {
        "bench" => xtalk_netlist::bench::parse(&text, library)
            .map_err(|e| format!("{netlist_path}: {e}"))?,
        "v" => xtalk_netlist::verilog::parse(&text, library)
            .map_err(|e| format!("{netlist_path}: {e}"))?,
        other => {
            return Err(format!(
                "unsupported netlist extension `.{other}` (use .bench or .v)"
            ))
        }
    };
    netlist
        .validate(library)
        .map_err(|e| format!("{netlist_path}: {e}"))?;
    let parasitics = match spef {
        Some(spef_path) => {
            let text =
                std::fs::read_to_string(spef_path).map_err(|e| format!("{spef_path}: {e}"))?;
            // SPEF carries no per-sink resistances; recover them from a
            // fresh routing of the same netlist (same rule as the CLI).
            let mut para = xtalk_layout::spef::parse(&text, &netlist)
                .map_err(|e| format!("{spef_path}: {e}"))?;
            let placement = xtalk_layout::place::place(&netlist, library, process);
            let routes = xtalk_layout::route::route(&netlist, &placement, process);
            let routed = xtalk_layout::extract::extract(&netlist, &routes, process);
            for (a, b) in para.nets.iter_mut().zip(&routed.nets) {
                a.sinks = b.sinks.clone();
            }
            para
        }
        None => {
            let placement = xtalk_layout::place::place(&netlist, library, process);
            let routes = xtalk_layout::route::route(&netlist, &placement, process);
            xtalk_layout::extract::extract(&netlist, &routes, process)
        }
    };
    Ok((netlist, parasitics))
}

fn cmd_load(shared: &Shared, request: &Json) -> Json {
    let Some(design) = request.str_field("design") else {
        return error_response("load needs a `design` session name", None);
    };
    let Some(netlist_path) = request.str_field("netlist") else {
        return error_response("load needs a `netlist` file path", None);
    };
    let spef = request.str_field("spef");
    let (netlist, parasitics) = match load_design(netlist_path, spef) {
        Ok(pair) => pair,
        Err(msg) => return error_response(&msg, None),
    };
    let (process, library) = {
        let t = tech();
        (&t.0, &t.1)
    };
    let sta = match IncrementalSta::with_config(
        netlist,
        library,
        process,
        parasitics,
        shared.exec.clone(),
    ) {
        Ok(sta) => sta,
        Err(e) => return error_response(&e.to_string(), None),
    };
    let mut replayed = 0u64;
    let mut corrupt = 0u64;
    if let Some(store) = &shared.store {
        let cache = sta.executor().cache();
        cache.enable_journal();
        match store.replay(cache) {
            Ok((r, c)) => {
                replayed = r;
                corrupt = c;
            }
            Err(e) => {
                // A vanished store file costs warmth, not the load.
                let _ = e;
            }
        }
    }
    let gates = sta.netlist().gate_count();
    let nets = sta.netlist().net_count();
    let couplings = sta.parasitics().coupling_count() / 2;
    let session = Session {
        sta,
        netlist_path: netlist_path.to_string(),
    };
    let replaced = lock_sessions(shared)
        .insert(design.to_string(), Arc::new(Mutex::new(session)))
        .is_some();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("design", Json::str(design)),
        ("gates", Json::num(gates as f64)),
        ("nets", Json::num(nets as f64)),
        ("coupling_caps", Json::num(couplings as f64)),
        ("store_replayed", Json::num(replayed as f64)),
        ("store_corrupt_skipped", Json::num(corrupt as f64)),
        ("replaced", Json::Bool(replaced)),
        ("exit_code", Json::num(0.0)),
    ])
}

/// Looks up the session named in `request`, or an error response.
fn session_for(shared: &Shared, request: &Json) -> Result<Arc<Mutex<Session>>, Json> {
    let Some(design) = request.str_field("design") else {
        return Err(error_response(
            "request needs a `design` session name",
            None,
        ));
    };
    lock_sessions(shared)
        .get(design)
        .cloned()
        .ok_or_else(|| error_response(&format!("no session `{design}` (load it first)"), None))
}

/// The requested analysis mode (default: iterative without Esperance).
fn mode_for(request: &Json) -> Result<AnalysisMode, Json> {
    match request.str_field("mode") {
        None => Ok(AnalysisMode::Iterative { esperance: false }),
        Some(token) => proto::parse_mode(token)
            .ok_or_else(|| error_response(&format!("unknown mode `{token}`"), None)),
    }
}

/// The shared success payload of an analysis: delay (decimal and
/// bit-exact), work counters, and the diagnostics/severity/exit-code
/// block mirroring the batch CLI.
fn report_fields(report: &ModeReport) -> Vec<(&'static str, Json)> {
    let severity = report.worst_severity();
    let mut fields = vec![
        ("mode", Json::str(mode_token(report.mode))),
        ("delay_ns", Json::num(report.longest_delay * 1e9)),
        ("delay_bits", Json::str(f64_bits_hex(report.longest_delay))),
        ("passes", Json::num(report.passes as f64)),
        ("stage_solves", Json::num(report.stage_solves as f64)),
        ("newton_solves", Json::num(report.newton_solves as f64)),
        ("newton_iters", Json::num(report.newton_iters as f64)),
        ("cache_hits", Json::num(report.cache_hits as f64)),
        ("warm_hits", Json::num(report.warm_hits as f64)),
        ("runtime_s", Json::num(report.runtime.as_secs_f64())),
    ];
    if !report.diagnostics.is_empty() {
        fields.push((
            "diagnostics",
            Json::Arr(
                report
                    .diagnostics
                    .iter()
                    .map(|d| Json::str(d.to_string()))
                    .collect(),
            ),
        ));
    }
    if let Some(s) = severity {
        fields.push(("severity", Json::str(severity_token(s))));
    }
    fields.push(("exit_code", Json::num(exit_code_for(severity) as f64)));
    fields
}

fn cmd_analyze(shared: &Shared, request: &Json) -> Json {
    let session = match session_for(shared, request) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let mode = match mode_for(request) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let report = match guard.sta.analyze(mode) {
        Ok(r) => r,
        Err(e) => return error_response(&e.to_string(), Some(Severity::Error)),
    };
    let stats = guard.sta.last_stats();
    let endpoint = report
        .endpoint_net
        .map(|net| guard.sta.netlist().net(net).name.clone());
    drop(guard);
    let mut fields = vec![("ok", Json::Bool(true))];
    fields.extend(report_fields(&report));
    fields.push(("full", Json::Bool(stats.full)));
    fields.push(("stages_evaluated", Json::num(stats.stages_evaluated as f64)));
    if let Some(name) = endpoint {
        fields.push(("endpoint", Json::str(name)));
    }
    Json::obj(fields)
}

/// Parses the request's `edits` array into typed edits (1-based line
/// numbers for error messages, matching the script grammar).
fn edits_for(request: &Json) -> Result<Vec<Edit>, Json> {
    let Some(lines) = request.get("edits").and_then(Json::as_arr) else {
        return Err(error_response("request needs an `edits` array", None));
    };
    let mut edits = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        let Some(text) = line.as_str() else {
            return Err(error_response("`edits` must hold strings", None));
        };
        match Edit::parse_line(text, i + 1) {
            Ok(edit) => edits.push(edit),
            Err(e) => return Err(error_response(&e.to_string(), None)),
        }
    }
    Ok(edits)
}

fn cmd_eco(shared: &Shared, request: &Json) -> Json {
    let session = match session_for(shared, request) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let edits = match edits_for(request) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut applied = 0usize;
    let mut new_gates = 0usize;
    for edit in &edits {
        match guard.sta.apply(edit) {
            Ok(outcome) => {
                applied += 1;
                new_gates += usize::from(outcome.new_gate.is_some());
            }
            Err(e) => {
                // Mirror the batch CLI's script semantics: stop at the
                // first failing edit, earlier ones stay applied.
                return error_response(
                    &format!("edit {} failed after {applied} applied: {e}", applied + 1),
                    None,
                );
            }
        }
    }
    let total = guard.sta.edits_applied();
    drop(guard);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("applied", Json::num(applied as f64)),
        ("new_gates", Json::num(new_gates as f64)),
        ("edits_total", Json::num(total as f64)),
        ("exit_code", Json::num(0.0)),
    ])
}

fn cmd_what_if(shared: &Shared, request: &Json) -> Json {
    let session = match session_for(shared, request) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let edits = match edits_for(request) {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let mode = match mode_for(request) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let checkpoint = guard.sta.checkpoint();
    for (i, edit) in edits.iter().enumerate() {
        if let Err(e) = guard.sta.apply(edit) {
            let msg = format!("what-if edit {} rejected: {e}", i + 1);
            return match guard.sta.rollback(checkpoint) {
                Ok(()) => error_response(&msg, None),
                Err(r) => error_response(
                    &format!("{msg}; rollback also failed: {r}"),
                    Some(Severity::Error),
                ),
            };
        }
    }
    let result = guard.sta.analyze(mode);
    let rollback = guard.sta.rollback(checkpoint);
    drop(guard);
    let report = match result {
        Ok(r) => r,
        Err(e) => return error_response(&e.to_string(), Some(Severity::Error)),
    };
    if let Err(e) = rollback {
        return error_response(
            &format!("what-if analysis done but rollback failed: {e}"),
            Some(Severity::Error),
        );
    }
    let mut fields = vec![("ok", Json::Bool(true))];
    fields.extend(report_fields(&report));
    fields.push(("edits", Json::num(edits.len() as f64)));
    fields.push(("rolled_back", Json::Bool(true)));
    Json::obj(fields)
}

fn cmd_query(shared: &Shared, request: &Json) -> Json {
    let session = match session_for(shared, request) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let Some(net_name) = request.str_field("net") else {
        return error_response("query needs a `net` endpoint name", None);
    };
    let mode = match mode_for(request) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let period = request.get("period_ns").and_then(Json::as_f64);
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A warm session replays this from its arrival caches (zero stage
    // evaluations), so per-endpoint queries are cheap after the first.
    let report = match guard.sta.analyze(mode) {
        Ok(r) => r,
        Err(e) => return error_response(&e.to_string(), Some(Severity::Error)),
    };
    let endpoint = report
        .endpoints
        .iter()
        .find(|e| guard.sta.netlist().net(e.net).name == net_name)
        .copied();
    drop(guard);
    let Some(endpoint) = endpoint else {
        return error_response(
            &format!("`{net_name}` is not an endpoint of this design"),
            None,
        );
    };
    let severity = report.worst_severity();
    let latest = endpoint.latest();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("net", Json::str(net_name)),
        ("mode", Json::str(mode_token(mode))),
        ("arrival_ns", Json::num(latest * 1e9)),
        ("arrival_bits", Json::str(f64_bits_hex(latest))),
    ];
    if let Some(rise) = endpoint.rise {
        fields.push(("rise_ns", Json::num(rise * 1e9)));
    }
    if let Some(fall) = endpoint.fall {
        fields.push(("fall_ns", Json::num(fall * 1e9)));
    }
    if let Some(period_ns) = period {
        let slack_ns = period_ns - latest * 1e9;
        fields.push(("slack_ns", Json::num(slack_ns)));
        fields.push(("violated", Json::Bool(slack_ns < 0.0)));
    }
    fields.push(("diagnostics_n", Json::num(report.diagnostics.len() as f64)));
    if let Some(s) = severity {
        fields.push(("severity", Json::str(severity_token(s))));
    }
    fields.push(("exit_code", Json::num(exit_code_for(severity) as f64)));
    Json::obj(fields)
}

fn cmd_stats(shared: &Shared) -> Json {
    let sessions: Vec<(String, Arc<Mutex<Session>>)> = lock_sessions(shared)
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    let mut rows = Vec::with_capacity(sessions.len());
    for (name, session) in sessions {
        let guard = session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cache = guard.sta.cache_stats();
        rows.push(Json::obj(vec![
            ("design", Json::str(name)),
            ("netlist", Json::str(guard.netlist_path.clone())),
            ("gates", Json::num(guard.sta.netlist().gate_count() as f64)),
            ("edits", Json::num(guard.sta.edits_applied() as f64)),
            ("cache_hits", Json::num(cache.hits as f64)),
            ("cache_misses", Json::num(cache.misses as f64)),
            ("cache_admitted", Json::num(cache.admitted as f64)),
            ("cache_skipped", Json::num(cache.skipped as f64)),
        ]));
    }
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        (
            "requests",
            Json::num(shared.requests.load(Ordering::Acquire) as f64),
        ),
        ("sessions", Json::Arr(rows)),
        ("macromodel", {
            let m = xtalk_wave::macromodel::stats();
            Json::obj(vec![
                ("models", Json::num(m.models as f64)),
                ("usable", Json::num(m.usable as f64)),
                ("table_hits", Json::num(m.table_hits as f64)),
                ("table_fallbacks", Json::num(m.table_fallbacks as f64)),
            ])
        }),
    ];
    if let Some(store) = &shared.store {
        let s = store.stats();
        fields.push((
            "store",
            Json::obj(vec![
                ("path", Json::str(store.path().display().to_string())),
                ("replayed", Json::num(s.replayed as f64)),
                ("corrupt_skipped", Json::num(s.corrupt_skipped as f64)),
                ("appended", Json::num(s.appended as f64)),
                ("deduped", Json::num(s.deduped as f64)),
            ]),
        ));
    }
    fields.push(("exit_code", Json::num(0.0)));
    Json::obj(fields)
}
