//! Typed ECO edits: validation, netlist/parasitic mutation and dirty seeds.
//!
//! Each edit is resolved by name against the current design, applied to the
//! owned netlist and parasitics, and reduced to a set of *seed gates* — the
//! gates whose stage solutions are invalidated directly by the edit (their
//! load, parasitics or cell changed). Everything downstream of a seed is
//! found dynamically during re-propagation, so seeds only need to cover
//! first-order effects:
//!
//! - **resize**: the gate itself (new transistors, new pin caps on its
//!   arcs) and the drivers of its input nets (their load changed);
//! - **reroute**: the net's driver (wire cap changed), its consumers
//!   (Elmore wire delay changed) and the drivers of every coupling partner
//!   (their coupling caps were patched symmetrically);
//! - **buffer**: the split net's old driver, the new buffer and the moved
//!   consumers;
//! - **uncouple**: both nets' drivers.

use std::collections::BTreeSet;
use std::fmt;

use xtalk_layout::Parasitics;
use xtalk_netlist::{GateId, NetId, Netlist, NetlistError};
use xtalk_tech::Library;

/// Default cell for [`Edit::InsertBuffer`] when none is given.
pub const DEFAULT_BUFFER_CELL: &str = "BUFX2";

/// One engineering change order against the analysed design.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Swap the library cell of a gate instance (same pin interface).
    ResizeCell {
        /// Instance name of the gate to resize.
        gate: String,
        /// New library cell name; must have the same input count.
        cell: String,
    },
    /// Scale all wire parasitics of a net (ground cap, resistance, coupling
    /// caps on both sides) by a factor, modelling a reroute.
    RerouteNet {
        /// Net name.
        net: String,
        /// Scale factor (`>= 0`, finite); `1.0` is a no-op.
        scale: f64,
    },
    /// Split a net by inserting a buffer: the net keeps its driver, a new
    /// net takes over all its loads.
    InsertBuffer {
        /// Net name.
        net: String,
        /// Buffer cell; defaults to [`DEFAULT_BUFFER_CELL`].
        cell: Option<String>,
    },
    /// Delete the coupling capacitance between two nets (both directions),
    /// modelling shielding or spacing.
    RemoveCoupling {
        /// First net name.
        a: String,
        /// Second net name.
        b: String,
    },
}

/// What an applied edit touched.
#[derive(Debug, Clone, Default)]
pub struct EditOutcome {
    /// Gates whose cached stage solutions were invalidated directly.
    pub seed_gates: usize,
    /// The buffer gate created by [`Edit::InsertBuffer`].
    pub new_gate: Option<GateId>,
    /// The net created by [`Edit::InsertBuffer`].
    pub new_net: Option<NetId>,
}

/// Errors from resolving or applying an [`Edit`].
#[derive(Debug)]
#[non_exhaustive]
pub enum EditError {
    /// No gate instance with this name.
    UnknownGate(String),
    /// No net with this name.
    UnknownNet(String),
    /// No cell with this name in the library.
    UnknownCell(String),
    /// The replacement cell's input count differs from the instance's.
    PinCountMismatch {
        /// Offending cell name.
        cell: String,
        /// Inputs the instance has.
        expected: usize,
        /// Inputs the cell wants.
        got: usize,
    },
    /// The buffer cell is not a single-input combinational cell.
    NotABuffer(String),
    /// The reroute scale is negative, NaN or infinite.
    BadScale(f64),
    /// An edit script line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The mutated netlist no longer expands to a timing graph.
    Netlist(NetlistError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownGate(g) => write!(f, "unknown gate `{g}`"),
            EditError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            EditError::UnknownCell(c) => write!(f, "unknown cell `{c}`"),
            EditError::PinCountMismatch {
                cell,
                expected,
                got,
            } => write!(f, "cell `{cell}` has {got} inputs, instance has {expected}"),
            EditError::NotABuffer(c) => {
                write!(f, "cell `{c}` is not a single-input combinational cell")
            }
            EditError::BadScale(s) => write!(f, "bad reroute scale {s}"),
            EditError::Parse { line, message } => {
                write!(f, "edit script line {line}: {message}")
            }
            EditError::Netlist(e) => write!(f, "edit broke the netlist: {e}"),
        }
    }
}

impl std::error::Error for EditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for EditError {
    fn from(e: NetlistError) -> Self {
        EditError::Netlist(e)
    }
}

impl Edit {
    /// Parses one edit-script line. Grammar (whitespace separated):
    ///
    /// ```text
    /// resize   <gate> <cell>
    /// reroute  <net> <scale>
    /// buffer   <net> [cell]
    /// uncouple <netA> <netB>
    /// ```
    ///
    /// # Errors
    ///
    /// [`EditError::Parse`] with `line` as reported line number.
    pub fn parse_line(text: &str, line: usize) -> Result<Edit, EditError> {
        let err = |message: String| EditError::Parse { line, message };
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens.as_slice() {
            ["resize", gate, cell] => Ok(Edit::ResizeCell {
                gate: gate.to_string(),
                cell: cell.to_string(),
            }),
            ["reroute", net, scale] => Ok(Edit::RerouteNet {
                net: net.to_string(),
                scale: scale
                    .parse()
                    .map_err(|_| err(format!("bad scale `{scale}`")))?,
            }),
            ["buffer", net] => Ok(Edit::InsertBuffer {
                net: net.to_string(),
                cell: None,
            }),
            ["buffer", net, cell] => Ok(Edit::InsertBuffer {
                net: net.to_string(),
                cell: Some(cell.to_string()),
            }),
            ["uncouple", a, b] => Ok(Edit::RemoveCoupling {
                a: a.to_string(),
                b: b.to_string(),
            }),
            ["resize", ..] => Err(err("resize takes <gate> <cell>".to_string())),
            ["reroute", ..] => Err(err("reroute takes <net> <scale>".to_string())),
            ["buffer", ..] => Err(err("buffer takes <net> [cell]".to_string())),
            ["uncouple", ..] => Err(err("uncouple takes <a> <b>".to_string())),
            [cmd, ..] => Err(err(format!("unknown edit `{cmd}`"))),
            [] => Err(err("empty edit".to_string())),
        }
    }

    /// Parses a whole edit script: one edit per line, `#` comments and blank
    /// lines ignored.
    ///
    /// # Errors
    ///
    /// [`EditError::Parse`] for the first bad line.
    pub fn parse_script(text: &str) -> Result<Vec<Edit>, EditError> {
        let mut edits = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            edits.push(Edit::parse_line(line, i + 1)?);
        }
        Ok(edits)
    }
}

fn gate_by_name(netlist: &Netlist, name: &str) -> Result<GateId, EditError> {
    netlist
        .gates()
        .iter()
        .position(|g| g.name == name)
        .map(|i| GateId(i as u32))
        .ok_or_else(|| EditError::UnknownGate(name.to_string()))
}

fn net_by_name(netlist: &Netlist, name: &str) -> Result<NetId, EditError> {
    netlist
        .net_by_name(name)
        .ok_or_else(|| EditError::UnknownNet(name.to_string()))
}

/// Applies `edit` to the owned design data and returns the dirty seed gates
/// plus a summary. Validation happens before any mutation, so an `Err`
/// leaves the design untouched.
pub(crate) fn apply_edit(
    netlist: &mut Netlist,
    parasitics: &mut Parasitics,
    library: &Library,
    edit: &Edit,
) -> Result<(BTreeSet<GateId>, EditOutcome), EditError> {
    let mut seeds: BTreeSet<GateId> = BTreeSet::new();
    let mut outcome = EditOutcome::default();
    match edit {
        Edit::ResizeCell { gate, cell } => {
            let gid = gate_by_name(netlist, gate)?;
            let new_cell = library
                .cell(cell)
                .ok_or_else(|| EditError::UnknownCell(cell.clone()))?;
            let expected = netlist.gate(gid).inputs.len();
            if new_cell.inputs.len() != expected {
                return Err(EditError::PinCountMismatch {
                    cell: cell.clone(),
                    expected,
                    got: new_cell.inputs.len(),
                });
            }
            seeds.insert(gid);
            for &input in &netlist.gate(gid).inputs.clone() {
                // The resized pins present new input caps to their drivers.
                if let Some(driver) = netlist.net(input).driver {
                    seeds.insert(driver);
                }
            }
            netlist.set_gate_cell(gid, cell.clone());
        }
        Edit::RerouteNet { net, scale } => {
            if !scale.is_finite() || *scale < 0.0 {
                return Err(EditError::BadScale(*scale));
            }
            let nid = net_by_name(netlist, net)?;
            if let Some(driver) = netlist.net(nid).driver {
                seeds.insert(driver);
            }
            for &(gate, _) in &netlist.net(nid).loads {
                // Their Elmore wire delay changed.
                seeds.insert(gate);
            }
            for cc in &parasitics.nets[nid.index()].couplings {
                // Coupling caps are patched on both sides: the partner
                // nets' drivers see a different load too.
                if let Some(driver) = netlist.net(cc.other).driver {
                    seeds.insert(driver);
                }
            }
            parasitics.patch_net(nid, *scale);
        }
        Edit::InsertBuffer { net, cell } => {
            let nid = net_by_name(netlist, net)?;
            let cell_name = cell.as_deref().unwrap_or(DEFAULT_BUFFER_CELL);
            let buf_cell = library
                .cell(cell_name)
                .ok_or_else(|| EditError::UnknownCell(cell_name.to_string()))?;
            if buf_cell.inputs.len() != 1 || buf_cell.is_sequential() {
                return Err(EditError::NotABuffer(cell_name.to_string()));
            }
            if netlist.net(nid).loads.is_empty() {
                return Err(EditError::Netlist(NetlistError::Undriven {
                    net: net.clone(),
                }));
            }
            if let Some(driver) = netlist.net(nid).driver {
                seeds.insert(driver);
            }
            for &(gate, _) in &netlist.net(nid).loads {
                seeds.insert(gate);
            }
            let name = format!("eco_buf{}", netlist.gate_count());
            let (buf, new_net) = netlist.insert_buffer(nid, name, cell_name)?;
            seeds.insert(buf);
            // The buffer sits at the split point: the original net keeps
            // its parasitics and its first sink's wire, the new net starts
            // as an ideal stub.
            parasitics.nets[nid.index()].sinks.truncate(1);
            parasitics.grow_to(netlist.net_count());
            outcome.new_gate = Some(buf);
            outcome.new_net = Some(new_net);
        }
        Edit::RemoveCoupling { a, b } => {
            let na = net_by_name(netlist, a)?;
            let nb = net_by_name(netlist, b)?;
            if let Some(driver) = netlist.net(na).driver {
                seeds.insert(driver);
            }
            if let Some(driver) = netlist.net(nb).driver {
                seeds.insert(driver);
            }
            parasitics.remove_coupling(na, nb);
        }
    }
    outcome.seed_gates = seeds.len();
    Ok((seeds, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_forms() {
        assert_eq!(
            Edit::parse_line("resize u1 INVX4", 1).expect("resize"),
            Edit::ResizeCell {
                gate: "u1".into(),
                cell: "INVX4".into()
            }
        );
        assert_eq!(
            Edit::parse_line("reroute n3 0.5", 1).expect("reroute"),
            Edit::RerouteNet {
                net: "n3".into(),
                scale: 0.5
            }
        );
        assert_eq!(
            Edit::parse_line("buffer n3", 1).expect("buffer"),
            Edit::InsertBuffer {
                net: "n3".into(),
                cell: None
            }
        );
        assert_eq!(
            Edit::parse_line("buffer n3 BUFX4", 1).expect("buffer cell"),
            Edit::InsertBuffer {
                net: "n3".into(),
                cell: Some("BUFX4".into())
            }
        );
        assert_eq!(
            Edit::parse_line("uncouple n1 n2", 1).expect("uncouple"),
            Edit::RemoveCoupling {
                a: "n1".into(),
                b: "n2".into()
            }
        );
        assert!(Edit::parse_line("explode n1", 7).is_err());
        assert!(Edit::parse_line("reroute n1 fast", 7).is_err());
    }

    #[test]
    fn parse_script_skips_comments() {
        let script = "# an eco\nresize u1 INVX4\n\nreroute n2 2.0 # longer\n";
        let edits = Edit::parse_script(script).expect("script");
        assert_eq!(edits.len(), 2);
    }
}
