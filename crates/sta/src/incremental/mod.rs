//! Incremental ECO timing: dirty-cone re-analysis over cached arrivals.
//!
//! After an engineering change order (resize, reroute, buffer insertion,
//! coupling removal) only a small cone of the design can time differently.
//! [`IncrementalSta`] owns the mutable design data plus, per
//! [`AnalysisMode`], the node arrival states of every completed propagation
//! pass, and re-analyzes by replaying the batch level schedule while
//! skipping every stage whose result provably matches the cache.
//!
//! # The coupling-aware dirty cone
//!
//! In a conventional STA the dirty cone of an edit is the electrical
//! fan-out: a stage must be re-evaluated when it is directly invalidated by
//! the edit or when one of its *input* nodes changed. With crosstalk that
//! rule is incomplete, because a net's arrival also depends on nets it is
//! merely capacitively coupled to: an edited net dirties its aggressors'
//! **victims**, not just its own fan-out. Concretely, under the paper's
//! one-step policy (§5.1) the coupling decision for a victim arc reads the
//! aggressor net's quiescent time once the aggressor is calculated, so a
//! changed-and-calculated aggressor re-dirties every stage driving one of
//! its victims even though no timing arc connects them. During iterative
//! refinement (§5.2) the same information flows through the previous pass's
//! quiet table instead, so a stage is dirty when any of its aggressors'
//! quiet entries differs from the entry the cached pass consumed. Uniform
//! policies (best case, doubled, worst case, min-delay) treat coupling caps
//! value-independently; for them the extra rule adds nothing and edits to
//! coupling data arrive as seed stages.
//!
//! Equivalence with batch analysis rests on three properties of the batch
//! pass: every node has exactly one producer stage (so a re-evaluated
//! stage's merges fully rebuild its output), levels are evaluated in order
//! against a snapshot (so the calculated set at each level is a static
//! function of the schedule), and stage evaluation is deterministic (so
//! bit-identical inputs reproduce bit-identical outputs, making exact
//! early termination sound). The property test in `tests/incremental.rs`
//! checks incremental == batch over random edit sequences for every mode.
//!
//! Edits rebuild the timing graph wholesale — graph construction is linear
//! and negligible next to waveform propagation — and the caches are
//! remapped onto the new graph by stable identity (net ids, gate ids,
//! cell-internal indices), which edits never renumber.
//!
//! [`AnalysisMode::Iterative`] with `esperance: true` is delegated to the
//! batch engine uncached: the Esperance mask is a global function of the
//! previous pass, which defeats local dirtiness reasoning.

pub mod edit;

pub use edit::{Edit, EditError, EditOutcome, DEFAULT_BUFFER_CELL};

use std::collections::{BTreeSet, HashMap};
use std::mem;
use std::time::Instant;

use xtalk_layout::Parasitics;
use xtalk_netlist::{GateId, Netlist};
use xtalk_tech::{Library, Process};

use crate::engine::{Sta, StaError};
use crate::exec::{CacheStats, ExecConfig, Executor};
use crate::graph::{TNodeKind, TimingGraph};
use crate::kernel::{NodeState, Pred, PropagationCore, Quiet, SolveCounters};
use crate::mode::AnalysisMode;
use crate::policy::iterative::{refine, RefineHost};
use crate::policy::one_step::OneStep;
use crate::policy::{self, CouplingPolicy};
use crate::report::{ModeReport, PassStat};

/// Cached result of one propagation pass of one mode.
struct PassCache {
    /// Final per-node arrival states of the pass.
    states: Vec<NodeState>,
    /// The quiet table this pass consumed (refinement passes only): the
    /// dirtiness reference for the coupling-aware rule.
    quiet_used: Option<Vec<[Quiet; 2]>>,
}

/// All cached passes of one [`AnalysisMode`].
#[derive(Default)]
struct ModeCache {
    /// How many `dirt_log` entries this cache has already consumed.
    synced: usize,
    /// One entry per completed pass, in pass order.
    passes: Vec<PassCache>,
}

/// A design-state snapshot taken by [`IncrementalSta::checkpoint`],
/// restorable with [`IncrementalSta::rollback`]. Holds the netlist and
/// parasitics by value: restoring is a wholesale swap, so rollback is exact
/// regardless of which (or how many) edits were applied in between.
pub struct Checkpoint {
    netlist: Netlist,
    parasitics: Parasitics,
    edits: usize,
}

/// Work counters of the most recent [`IncrementalSta::analyze`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeStats {
    /// `true` when no cache existed (or the mode is uncacheable) and the
    /// analysis ran from scratch.
    pub full: bool,
    /// Propagation passes executed or replayed.
    pub passes: usize,
    /// Stage evaluations actually performed, summed over passes. A fully
    /// clean replay evaluates zero stages.
    pub stages_evaluated: usize,
    /// Transistor-level stage solves consumed (logical solver calls; calls
    /// answered by the stage-solve cache are included).
    pub stage_solves: usize,
    /// Solver calls answered by the cross-pass stage-solve cache.
    pub cache_hits: usize,
}

/// A crosstalk-aware static timing analyzer with persistent caches and
/// typed ECO edits.
///
/// ```no_run
/// # use xtalk_sta::{AnalysisMode, IncrementalSta, Edit};
/// # fn demo(netlist: xtalk_netlist::Netlist, library: &xtalk_tech::Library,
/// #         process: &xtalk_tech::Process, parasitics: xtalk_layout::Parasitics)
/// #         -> Result<(), Box<dyn std::error::Error>> {
/// let mut eco = IncrementalSta::new(netlist, library, process, parasitics)?;
/// let before = eco.analyze(AnalysisMode::OneStep)?; // full, populates cache
/// eco.apply(&Edit::parse_line("resize u42 INVX4", 1)?)?;
/// let after = eco.analyze(AnalysisMode::OneStep)?; // dirty cone only
/// println!("{} -> {}", before.longest_delay, after.longest_delay);
/// # Ok(()) }
/// ```
pub struct IncrementalSta<'a> {
    library: &'a Library,
    process: &'a Process,
    netlist: Netlist,
    parasitics: Parasitics,
    graph: TimingGraph,
    exec: Executor,
    caches: Vec<(AnalysisMode, ModeCache)>,
    /// Seed gates of each applied edit not yet consumed by every cache.
    dirt_log: Vec<BTreeSet<GateId>>,
    /// State-comparison tolerance for early termination; `0.0` = exact.
    epsilon: f64,
    edits: usize,
    last_stats: AnalyzeStats,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the analyzer, taking ownership of the mutable design data.
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a timing
    /// graph; [`StaError::Config`] when an `XTALK_*` environment override
    /// holds a malformed value.
    pub fn new(
        netlist: Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: Parasitics,
    ) -> Result<Self, StaError> {
        Self::with_config(
            netlist,
            library,
            process,
            parasitics,
            ExecConfig::from_env()?,
        )
    }

    /// Builds the analyzer with an explicit execution configuration.
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the netlist does not expand to a timing
    /// graph.
    pub fn with_config(
        netlist: Netlist,
        library: &'a Library,
        process: &'a Process,
        parasitics: Parasitics,
        config: ExecConfig,
    ) -> Result<Self, StaError> {
        let graph = TimingGraph::build(&netlist, library, process, &parasitics)?;
        // Same build-time characterization as the batch engine, so ECO
        // reanalysis and a fresh batch run stay bit-identical (both answer
        // the same queries from the same store).
        if !config.signoff {
            xtalk_wave::macromodel::prewarm_library(process, library, config.threads);
        }
        Ok(Self {
            library,
            process,
            netlist,
            parasitics,
            graph,
            exec: Executor::new(config),
            caches: Vec::new(),
            dirt_log: Vec::new(),
            epsilon: 0.0,
            edits: 0,
            last_stats: AnalyzeStats::default(),
        })
    }

    /// The execution configuration in effect.
    pub fn exec_config(&self) -> &ExecConfig {
        self.exec.config()
    }

    /// Stage-solve cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.exec.cache_stats()
    }

    /// Drops every stage-solve cache entry (the arrival caches are
    /// unaffected; exact-match keys mean results never change).
    pub fn clear_solve_cache(&self) {
        self.exec.clear_cache();
    }

    /// Installs (or clears, with `None`) a deterministic fault plan for the
    /// next analyses. Available only in fault-injection builds.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn set_fault_plan(&self, plan: Option<crate::fault::FaultPlan>) {
        self.exec.set_fault_plan(plan);
    }

    /// The current netlist (reflecting all applied edits).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The current parasitics (reflecting all applied edits).
    pub fn parasitics(&self) -> &Parasitics {
        &self.parasitics
    }

    /// The current timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The cell library.
    pub fn library(&self) -> &'a Library {
        self.library
    }

    /// The process description.
    pub fn process(&self) -> &'a Process {
        self.process
    }

    /// Number of edits applied so far.
    pub fn edits_applied(&self) -> usize {
        self.edits
    }

    /// Work counters of the most recent [`analyze`](Self::analyze) call.
    pub fn last_stats(&self) -> AnalyzeStats {
        self.last_stats
    }

    /// Sets the early-termination tolerance (seconds for times, volts for
    /// waveform values). The default `0.0` keeps incremental results
    /// bit-identical to batch; a small positive value trades exactness for
    /// a smaller re-evaluated cone.
    pub fn set_epsilon(&mut self, epsilon: f64) {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "bad epsilon");
        self.epsilon = epsilon;
    }

    /// A batch analyzer over the current design state, for reference runs.
    pub fn fresh_sta(&self) -> Sta<'_> {
        Sta::new(&self.netlist, self.library, self.process, &self.parasitics)
            .expect("current graph already built from this design")
    }

    fn ctx(&self) -> PropagationCore<'_> {
        PropagationCore {
            netlist: &self.netlist,
            library: self.library,
            process: self.process,
            parasitics: &self.parasitics,
            graph: &self.graph,
            exec: &self.exec,
        }
    }

    /// Applies one ECO edit: validates it, mutates the design, rebuilds the
    /// timing graph and remaps all cached passes onto it. The design is
    /// untouched when an error is returned.
    ///
    /// # Errors
    ///
    /// [`EditError`] for unresolvable names, interface mismatches or edits
    /// that would break the netlist.
    pub fn apply(&mut self, edit: &Edit) -> Result<EditOutcome, EditError> {
        // Mutate copies so a failed validation or rebuild leaves the
        // analyzer consistent.
        let mut netlist = self.netlist.clone();
        let mut parasitics = self.parasitics.clone();
        let (seeds, outcome) = edit::apply_edit(&mut netlist, &mut parasitics, self.library, edit)?;
        let graph = TimingGraph::build(&netlist, self.library, self.process, &parasitics)
            .map_err(EditError::Netlist)?;
        self.netlist = netlist;
        self.parasitics = parasitics;
        let old_graph = mem::replace(&mut self.graph, graph);
        self.remap_caches(&old_graph);
        // The per-stage solve memo keys entries by stage *index*, which the
        // rebuild just reassigned — stale entries would be wrong, not merely
        // useless. The keyed solve cache keys stable identities and survives.
        self.exec.memo().clear();
        // Compact the dirt log whenever every cache has consumed it.
        if self
            .caches
            .iter()
            .all(|(_, c)| c.synced == self.dirt_log.len())
        {
            self.dirt_log.clear();
            for (_, c) in &mut self.caches {
                c.synced = 0;
            }
        }
        self.dirt_log.push(seeds);
        self.edits += 1;
        Ok(outcome)
    }

    /// Parses and applies a whole edit script (see
    /// [`Edit::parse_script`] for the grammar), stopping at the first
    /// failing edit.
    ///
    /// # Errors
    ///
    /// [`EditError`] from parsing or from the first failing edit; edits
    /// before it remain applied.
    pub fn apply_script(&mut self, text: &str) -> Result<Vec<EditOutcome>, EditError> {
        Edit::parse_script(text)?
            .iter()
            .map(|e| self.apply(e))
            .collect()
    }

    /// Snapshots the mutable design state for a later
    /// [`rollback`](Self::rollback) — the primitive behind what-if
    /// evaluation (apply candidate edits, re-time, roll back).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            netlist: self.netlist.clone(),
            parasitics: self.parasitics.clone(),
            edits: self.edits,
        }
    }

    /// Restores the design to a [`checkpoint`](Self::checkpoint), undoing
    /// every edit applied since it was taken.
    ///
    /// The per-mode arrival caches and the per-stage memo are dropped (they
    /// describe the abandoned edited design), but the keyed stage-solve
    /// cache survives: its entries are exact-match on solver inputs, so the
    /// re-analysis after a rollback is bit-identical to one that never saw
    /// the what-if edits — it just re-solves far less. A later
    /// [`analyze`](Self::analyze) therefore reproduces the pre-checkpoint
    /// report exactly (modulo runtime and work counters).
    ///
    /// # Errors
    ///
    /// [`StaError::Netlist`] when the snapshot no longer expands to a
    /// timing graph (impossible unless the library changed under us); the
    /// analyzer is left unchanged in that case.
    pub fn rollback(&mut self, checkpoint: Checkpoint) -> Result<(), StaError> {
        let graph = TimingGraph::build(
            &checkpoint.netlist,
            self.library,
            self.process,
            &checkpoint.parasitics,
        )?;
        self.netlist = checkpoint.netlist;
        self.parasitics = checkpoint.parasitics;
        self.graph = graph;
        self.caches.clear();
        self.dirt_log.clear();
        // Stage indices were reassigned by the rebuild; stale memo entries
        // would be wrong, not merely useless (same rule as `apply`).
        self.exec.memo().clear();
        self.edits = checkpoint.edits;
        self.last_stats = AnalyzeStats::default();
        Ok(())
    }

    /// The execution state, for the serve daemon's cache-persistence hooks.
    pub(crate) fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Analyzes the design under `mode`, reusing cached passes where the
    /// dirty-cone rule allows. The report is equivalent to a fresh
    /// [`Sta::analyze`] on the current design (identical at the default
    /// epsilon, except for runtime and solve counters).
    ///
    /// # Errors
    ///
    /// [`StaError`] as for the batch analysis. On error the mode's cache is
    /// dropped, so the next call recomputes from scratch.
    pub fn analyze(&mut self, mode: AnalysisMode) -> Result<ModeReport, StaError> {
        let started = Instant::now();
        // Diagnostics accumulate per analysis; drop leftovers from an
        // earlier run that errored out before assembling its report.
        drop(self.exec.drain_diagnostics());
        if matches!(mode, AnalysisMode::Iterative { esperance: true }) {
            let report = self.ctx().analyze(mode)?;
            self.last_stats = AnalyzeStats {
                full: true,
                passes: report.passes,
                stages_evaluated: report.passes * self.graph.stages.len(),
                stage_solves: report.stage_solves,
                cache_hits: report.cache_hits,
            };
            return Ok(report);
        }
        let pos = self.caches.iter().position(|(m, _)| *m == mode);
        let mut cache = match pos {
            Some(i) => mem::take(&mut self.caches[i].1),
            None => ModeCache::default(),
        };
        let mut stats = AnalyzeStats {
            full: cache.passes.is_empty(),
            ..AnalyzeStats::default()
        };
        match self.analyze_with_cache(mode, &mut cache, &mut stats, started) {
            Ok(report) => {
                stats.passes = report.passes;
                self.last_stats = stats;
                match pos {
                    Some(i) => self.caches[i].1 = cache,
                    None => self.caches.push((mode, cache)),
                }
                Ok(report)
            }
            Err(e) => {
                // The cache may have been partially updated: poison it.
                if let Some(i) = pos {
                    self.caches.remove(i);
                }
                Err(e)
            }
        }
    }

    /// Runs or replays all passes of `mode` against `cache` and assembles
    /// the report. Mirrors `PropagationCore::compute_states` pass for pass
    /// — single-pass modes resolve their policy through the same
    /// [`policy::for_single_pass`], and the iterative mode runs the same
    /// [`refine`] driver, with each full pass replaced by a cached sweep.
    fn analyze_with_cache(
        &self,
        mode: AnalysisMode,
        cache: &mut ModeCache,
        stats: &mut AnalyzeStats,
        started: Instant,
    ) -> Result<ModeReport, StaError> {
        let ctx = self.ctx();
        let seed = self.seed_mask(cache.synced);
        cache.synced = self.dirt_log.len();
        let mut pass_stats: Vec<PassStat> = Vec::new();
        let pass_stat = |counters: SolveCounters, delay: f64| PassStat {
            delay,
            solver_calls: counters.calls,
            newton_solves: counters.solves,
            cache_hits: counters.hits,
            warm_hits: counters.memo_hits,
            newton_iters: counters.iters,
            iter_hist: counters.hist,
            table_hits: counters.table_hits,
            table_fallbacks: counters.table_fallbacks,
            table_residual: counters.table_residual,
        };

        match mode {
            AnalysisMode::BestCase
            | AnalysisMode::StaticDoubled
            | AnalysisMode::WorstCase
            | AnalysisMode::OneStep
            | AnalysisMode::MinDelay => {
                let earliest = mode == AnalysisMode::MinDelay;
                let policy = policy::for_single_pass(mode);
                let counters = self.sweep_pass(cache, 0, policy.as_ref(), None, &seed, stats)?;
                cache.passes.truncate(1);
                let delay = ctx
                    .extreme(&cache.passes[0].states, earliest)
                    .map(|(_, _, d)| d)
                    .unwrap_or(0.0);
                pass_stats.push(pass_stat(counters, delay));
            }
            AnalysisMode::Iterative { esperance: false } => {
                // The shared §5.2 driver — same convergence test and
                // divergence watchdog as the batch engine — over cached
                // sweeps. A diverged pass is never accepted, so `pass_idx`
                // stays on the previous one and the truncate drops it.
                let mut host = EcoRefine {
                    sta: self,
                    cache: &mut *cache,
                    seed: &seed,
                    stats: &mut *stats,
                    pass_idx: 0,
                    latest: 0,
                };
                refine(&ctx, &mut host, false, &mut pass_stats)?;
                let keep = host.pass_idx + 1;
                // Convergence may come earlier than in the cached run:
                // deeper cached passes are stale, drop them.
                cache.passes.truncate(keep);
            }
            AnalysisMode::Iterative { esperance: true } => {
                unreachable!("esperance is delegated to the batch engine")
            }
        }

        let final_states = cache
            .passes
            .last()
            .expect("every mode runs at least one pass")
            .states
            .clone();
        ctx.assemble_report(mode, final_states, pass_stats, started)
    }

    /// Replays cached pass `idx` incrementally, or runs it in full when the
    /// cache has no pass `idx` yet. Returns the solver work consumed.
    fn sweep_pass(
        &self,
        cache: &mut ModeCache,
        idx: usize,
        policy: &dyn CouplingPolicy,
        quiet_dirty: Option<&[bool]>,
        seed: &[bool],
        stats: &mut AnalyzeStats,
    ) -> Result<SolveCounters, StaError> {
        let ctx = self.ctx();
        if let Some(pass) = cache.passes.get_mut(idx) {
            let swept =
                ctx.repropagate(policy, &mut pass.states, seed, quiet_dirty, self.epsilon)?;
            stats.stages_evaluated += swept.reevaluated;
            stats.stage_solves += swept.counters.calls;
            stats.cache_hits += swept.counters.hits;
            Ok(swept.counters)
        } else {
            let out = ctx.run_pass(policy, None, None)?;
            stats.stages_evaluated += self.graph.stages.len();
            stats.stage_solves += out.counters.calls;
            stats.cache_hits += out.counters.hits;
            cache.passes.push(PassCache {
                states: out.states,
                quiet_used: None,
            });
            Ok(out.counters)
        }
    }

    /// Per-stage seed flags from the dirt-log entries `cache` has not yet
    /// consumed: every stage of every gate named dirty by those edits.
    fn seed_mask(&self, synced: usize) -> Vec<bool> {
        let mut seed = vec![false; self.graph.stages.len()];
        let mut gates: BTreeSet<GateId> = BTreeSet::new();
        for entry in &self.dirt_log[synced..] {
            gates.extend(entry.iter().copied());
        }
        if !gates.is_empty() {
            for (si, stage) in self.graph.stages.iter().enumerate() {
                if gates.contains(&stage.gate) {
                    seed[si] = true;
                }
            }
        }
        seed
    }

    /// Moves every cached pass from `old_graph`'s node space onto the
    /// current graph's, matching nodes and producer stages by stable
    /// identity. Nodes new to the graph start with no arrivals; nodes whose
    /// producer stage disappeared (a cell swap changed the stage structure)
    /// are reset — their gate is in the seed set, so the sweep rebuilds
    /// them.
    fn remap_caches(&mut self, old_graph: &TimingGraph) {
        if self.caches.is_empty() {
            return;
        }
        let n = self.graph.nodes.len();
        let node_map: HashMap<(u8, u32, u32), usize> = self
            .graph
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node_key(node.kind), i))
            .collect();
        let stage_map: HashMap<(u32, u32), usize> = self
            .graph
            .stages
            .iter()
            .enumerate()
            .map(|(i, st)| ((st.gate.0, st.stage as u32), i))
            .collect();
        let net_count = self.netlist.net_count();
        for (_, cache) in &mut self.caches {
            for pass in &mut cache.passes {
                let old_states = mem::take(&mut pass.states);
                let mut new_states = vec![NodeState::default(); n];
                for (old_idx, st) in old_states.into_iter().enumerate() {
                    let Some(old_node) = old_graph.nodes.get(old_idx) else {
                        break;
                    };
                    if let Some(&ni) = node_map.get(&node_key(old_node.kind)) {
                        new_states[ni] = remap_state(st, old_graph, &stage_map);
                    }
                }
                pass.states = new_states;
                if let Some(quiet) = &mut pass.quiet_used {
                    // New nets read as never-quiet references; their real
                    // entries differ, which correctly dirties their victims.
                    quiet.resize(net_count, [Quiet::Never; 2]);
                }
            }
        }
    }
}

/// The incremental engine's refinement host: each pass of the shared §5.2
/// driver is a cached dirty sweep ([`PropagationCore::repropagate`]) over
/// `cache` instead of a full propagation. `pass_idx` is the last accepted
/// pass, `latest` the most recently swept one; both index `cache.passes`.
struct EcoRefine<'h, 'a> {
    sta: &'h IncrementalSta<'a>,
    cache: &'h mut ModeCache,
    seed: &'h [bool],
    stats: &'h mut AnalyzeStats,
    pass_idx: usize,
    latest: usize,
}

impl RefineHost for EcoRefine<'_, '_> {
    fn run_first(&mut self) -> Result<SolveCounters, StaError> {
        let counters = self.sta.sweep_pass(
            self.cache,
            0,
            &OneStep { prev: None },
            None,
            self.seed,
            self.stats,
        )?;
        self.latest = 0;
        Ok(counters)
    }

    fn run_refinement(
        &mut self,
        quiet: &[[Quiet; 2]],
        _esperance_delay: Option<f64>,
    ) -> Result<SolveCounters, StaError> {
        // Esperance is delegated to the batch engine (see `analyze`), so
        // the mask is never requested here.
        let next = self.pass_idx + 1;
        // A net is quiet-dirty when the cached pass consumed a different
        // quiet entry than the one this sweep will.
        let quiet_dirty: Option<Vec<bool>> = self.cache.passes.get(next).map(|pass| {
            let old = pass.quiet_used.as_ref();
            (0..quiet.len())
                .map(|i| old.and_then(|o| o.get(i)) != Some(&quiet[i]))
                .collect()
        });
        let counters = self.sta.sweep_pass(
            self.cache,
            next,
            &OneStep { prev: Some(quiet) },
            quiet_dirty.as_deref(),
            self.seed,
            self.stats,
        )?;
        self.cache.passes[next].quiet_used = Some(quiet.to_vec());
        self.latest = next;
        Ok(counters)
    }

    fn latest(&self) -> &[NodeState] {
        &self.cache.passes[self.latest].states
    }

    fn best(&self) -> &[NodeState] {
        &self.cache.passes[self.pass_idx].states
    }

    fn accept(&mut self) {
        self.pass_idx = self.latest;
    }
}

/// Stable identity of a timing node across graph rebuilds.
fn node_key(kind: TNodeKind) -> (u8, u32, u32) {
    match kind {
        TNodeKind::Net(net) => (0, net.0, 0),
        TNodeKind::Internal { gate, index } => (1, gate.0, index),
    }
}

/// Remaps one node state's predecessor arcs into the new stage numbering.
fn remap_state(
    mut state: NodeState,
    old_graph: &TimingGraph,
    stage_map: &HashMap<(u32, u32), usize>,
) -> NodeState {
    for info in state.dirs.iter_mut().flatten() {
        if let Some(pred) = info.pred {
            let old_stage = &old_graph.stages[pred.stage];
            match stage_map.get(&(old_stage.gate.0, old_stage.stage as u32)) {
                Some(&new_si) => {
                    info.pred = Some(Pred {
                        stage: new_si,
                        ..pred
                    })
                }
                None => return NodeState::default(),
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::{extract, place, route};
    use xtalk_netlist::generator::{self, GeneratorConfig};

    struct Fixture {
        process: Process,
        library: Library,
        netlist: Netlist,
        parasitics: Parasitics,
    }

    fn fixture_small(seed: u64) -> Fixture {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let netlist = generator::generate(&GeneratorConfig::small(seed), &library).expect("gen");
        let placement = place::place(&netlist, &library, &process);
        let routes = route::route(&netlist, &placement, &process);
        let parasitics = extract::extract(&netlist, &routes, &process);
        Fixture {
            process,
            library,
            netlist,
            parasitics,
        }
    }

    /// A net that is driven, loaded and coupled — a worthwhile ECO target.
    fn busy_net(inc: &IncrementalSta<'_>) -> String {
        inc.netlist()
            .nets()
            .iter()
            .enumerate()
            .find(|(ni, net)| {
                net.driver.is_some()
                    && !net.loads.is_empty()
                    && !inc.parasitics().nets[*ni].couplings.is_empty()
            })
            .map(|(_, net)| net.name.clone())
            .expect("generated circuit has coupled nets")
    }

    fn assert_matches_fresh(inc: &IncrementalSta<'_>, report: &ModeReport, mode: AnalysisMode) {
        let fresh = inc.fresh_sta().analyze(mode).expect("fresh");
        assert_eq!(
            report.longest_delay.to_bits(),
            fresh.longest_delay.to_bits(),
            "{mode}: incremental delay diverged from batch"
        );
        assert_eq!(report.endpoint_net, fresh.endpoint_net, "{mode}: endpoint");
        assert_eq!(report.passes, fresh.passes, "{mode}: pass count");
        assert_eq!(
            report.critical_path.len(),
            fresh.critical_path.len(),
            "{mode}: path length"
        );
    }

    #[test]
    fn clean_replay_evaluates_nothing() {
        let f = fixture_small(11);
        let mut inc = IncrementalSta::new(
            f.netlist.clone(),
            &f.library,
            &f.process,
            f.parasitics.clone(),
        )
        .expect("inc");
        let first = inc.analyze(AnalysisMode::OneStep).expect("first");
        assert!(inc.last_stats().full);
        let second = inc.analyze(AnalysisMode::OneStep).expect("second");
        let stats = inc.last_stats();
        assert!(!stats.full);
        assert_eq!(
            stats.stages_evaluated, 0,
            "clean replay must skip all stages"
        );
        assert_eq!(
            first.longest_delay.to_bits(),
            second.longest_delay.to_bits()
        );
    }

    #[test]
    fn reroute_matches_fresh_analysis() {
        let f = fixture_small(12);
        let mut inc = IncrementalSta::new(
            f.netlist.clone(),
            &f.library,
            &f.process,
            f.parasitics.clone(),
        )
        .expect("inc");
        for mode in AnalysisMode::all() {
            inc.analyze(mode).expect("warm");
        }
        let net = busy_net(&inc);
        inc.apply(&Edit::RerouteNet { net, scale: 3.0 })
            .expect("edit");
        for mode in AnalysisMode::all() {
            let report = inc.analyze(mode).expect("re-analyze");
            assert_matches_fresh(&inc, &report, mode);
        }
    }

    #[test]
    fn resize_and_buffer_match_fresh_analysis() {
        let f = fixture_small(13);
        let mut inc = IncrementalSta::new(
            f.netlist.clone(),
            &f.library,
            &f.process,
            f.parasitics.clone(),
        )
        .expect("inc");
        inc.analyze(AnalysisMode::Iterative { esperance: false })
            .expect("warm");
        inc.analyze(AnalysisMode::MinDelay).expect("warm");
        let gate = inc
            .netlist()
            .gates()
            .iter()
            .find(|g| g.cell == "INVX1")
            .map(|g| g.name.clone())
            .expect("an inverter to resize");
        inc.apply(&Edit::ResizeCell {
            gate,
            cell: "INVX4".into(),
        })
        .expect("resize");
        let net = busy_net(&inc);
        let outcome = inc
            .apply(&Edit::InsertBuffer { net, cell: None })
            .expect("buffer");
        assert!(outcome.new_gate.is_some() && outcome.new_net.is_some());
        for mode in [
            AnalysisMode::Iterative { esperance: false },
            AnalysisMode::MinDelay,
        ] {
            let report = inc.analyze(mode).expect("re-analyze");
            assert_matches_fresh(&inc, &report, mode);
        }
    }

    #[test]
    fn uncouple_dirties_coupled_victims() {
        let f = fixture_small(14);
        let mut inc = IncrementalSta::new(
            f.netlist.clone(),
            &f.library,
            &f.process,
            f.parasitics.clone(),
        )
        .expect("inc");
        inc.analyze(AnalysisMode::OneStep).expect("warm");
        let (a, b) = inc
            .parasitics()
            .nets
            .iter()
            .enumerate()
            .find_map(|(ni, np)| np.couplings.first().map(|cc| (ni, cc.other.index())))
            .expect("a coupled pair");
        let a = inc.netlist().nets()[a].name.clone();
        let b = inc.netlist().nets()[b].name.clone();
        inc.apply(&Edit::RemoveCoupling { a, b }).expect("uncouple");
        let report = inc.analyze(AnalysisMode::OneStep).expect("re-analyze");
        assert_matches_fresh(&inc, &report, AnalysisMode::OneStep);
    }

    #[test]
    fn failed_edit_leaves_design_untouched() {
        let f = fixture_small(15);
        let mut inc = IncrementalSta::new(
            f.netlist.clone(),
            &f.library,
            &f.process,
            f.parasitics.clone(),
        )
        .expect("inc");
        let before = inc.analyze(AnalysisMode::BestCase).expect("before");
        assert!(inc
            .apply(&Edit::ResizeCell {
                gate: "no_such_gate".into(),
                cell: "INVX4".into(),
            })
            .is_err());
        assert_eq!(inc.edits_applied(), 0);
        let after = inc.analyze(AnalysisMode::BestCase).expect("after");
        assert_eq!(
            before.longest_delay.to_bits(),
            after.longest_delay.to_bits()
        );
        assert_eq!(inc.last_stats().stages_evaluated, 0);
    }
}
