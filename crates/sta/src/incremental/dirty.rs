//! The dirty-cone re-propagation sweep.
//!
//! One batch pass walks the dependency levels in order and evaluates every
//! stage. The incremental sweep walks the same levels over a *cached* state
//! vector and re-evaluates a stage only when its result can differ from the
//! cache:
//!
//! - the stage is a **seed** (its gate was named dirty by an edit: cell,
//!   load, wire or coupling data changed under it);
//! - an **input node changed** during this sweep (the ordinary electrical
//!   fan-out cone);
//! - a **coupling aggressor changed** — the crosstalk-specific part of the
//!   dirty rule. Under the one-step policy the aggressor's quiescent time
//!   enters the coupling decision only once the aggressor is calculated
//!   (earlier level), so a changed-and-calculated aggressor net dirties
//!   the victim's stage even though no timing arc connects them. During
//!   iterative refinement the decision reads the previous pass's quiet
//!   table instead, so the stage is dirty when any aggressor's quiet entry
//!   differs from the one the cached pass consumed. Under a uniform policy
//!   coupling caps are value-independent and add no dirt.
//!
//! Early termination: a re-evaluated stage whose fresh output matches the
//! cache within epsilon does not mark its output changed, so its clean
//! fan-out is never visited. Because each timing node has exactly one
//! producer stage and levels are applied in order, replaying the dirty
//! subset over the cached states reproduces the batch pass exactly (at
//! epsilon zero).

use xtalk_wave::stage::StageSolver;

use crate::engine::{merge_with, EngineCtx, NodeState, Policy, SolveCounters, StaError, StateView};

/// Outcome of one incremental sweep.
pub(crate) struct SweepOutput {
    /// Per-node flag: the node's cached state was replaced.
    pub changed: Vec<bool>,
    /// Solver work consumed (logical calls, Newton solves, cache hits).
    pub counters: SolveCounters,
    /// Stages re-evaluated (of `graph.stages.len()` total).
    pub reevaluated: usize,
}

/// Re-propagates one cached pass in place. `seed` flags stages invalidated
/// directly by edits; `quiet_dirty` (refinement passes only) flags nets
/// whose quiet-table entry differs from the one the cached pass used.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repropagate(
    ctx: &EngineCtx<'_>,
    policy: &Policy<'_>,
    states: &mut Vec<NodeState>,
    seed: &[bool],
    quiet_dirty: Option<&[bool]>,
    earliest: bool,
    epsilon: f64,
) -> Result<SweepOutput, StaError> {
    let solver = StageSolver::new(ctx.process);
    let n = ctx.graph.nodes.len();
    states.resize(n, NodeState::default());
    let mut out = SweepOutput {
        changed: vec![false; n],
        counters: SolveCounters::default(),
        reevaluated: 0,
    };

    // Start states depend only on the process, but re-derive and compare
    // them so a start node that fell out of the cache remap is repaired.
    let mut starts: Vec<NodeState> = vec![NodeState::default(); n];
    ctx.init_start_states(&mut starts);
    for i in 0..n {
        if ctx.graph.nodes[i].is_start && !state_eq(&states[i], &starts[i], epsilon) {
            states[i] = std::mem::take(&mut starts[i]);
            out.changed[i] = true;
        }
    }
    drop(starts);

    let mut dirty: Vec<usize> = Vec::new();
    for (lvl, level) in ctx.graph.levels.iter().enumerate() {
        dirty.clear();
        for &si in level {
            let stage = &ctx.graph.stages[si];
            let mut is_dirty = seed[si]
                || stage
                    .inputs
                    .iter()
                    .any(|input| out.changed[input.node.index()]);
            if !is_dirty && !stage.couplings.is_empty() {
                is_dirty = match policy {
                    // Uniform policies read coupling caps, never aggressor
                    // state; structural coupling changes arrive via `seed`.
                    Policy::Uniform(_) => false,
                    // One-step: the decision reads a calculated aggressor's
                    // quiescent time (an uncalculated one is pessimistically
                    // active regardless of its value). "Calculated" is the
                    // schedule's static level rule.
                    Policy::QuietAware { prev: None } => {
                        stage.couplings.iter().any(|&(other, _)| {
                            let node = ctx.graph.net_node[other.index()];
                            ctx.graph.calculated_at(node, lvl) && out.changed[node.index()]
                        })
                    }
                    // Refinement: the decision reads the previous pass's
                    // quiet table.
                    Policy::QuietAware { prev: Some(_) } => {
                        let quiet_dirty = quiet_dirty.expect("refinement sweep passes quiet dirt");
                        stage
                            .couplings
                            .iter()
                            .any(|&(other, _)| quiet_dirty[other.index()])
                    }
                };
            }
            if is_dirty {
                dirty.push(si);
            }
        }

        if !dirty.is_empty() {
            let results = ctx.eval_stages(
                &solver,
                &dirty,
                policy,
                &StateView::Slice(states),
                None,
                None,
                earliest,
            )?;
            for (si, ev) in results {
                out.counters.absorb(ev.counters);
                out.reevaluated += 1;
                let out_idx = ctx.graph.stages[si].output.index();
                // Rebuild the output from scratch: this stage is the node's
                // only producer, so its merges are the complete state.
                let mut fresh = NodeState::default();
                for (out_rising, info) in ev.merges {
                    merge_with(&mut fresh, out_rising, info, earliest);
                }
                if !state_eq(&states[out_idx], &fresh, epsilon) {
                    states[out_idx] = fresh;
                    out.changed[out_idx] = true;
                }
            }
        }
    }

    Ok(out)
}

/// Arrival-state equality within `epsilon` (seconds for times, volts for
/// waveform values). At the default `epsilon == 0.0` this is exact, which
/// still terminates early because re-evaluation is deterministic: a stage
/// whose inputs are bit-identical reproduces a bit-identical output.
/// Predecessor arcs are ignored — they are a function of the winning merge
/// and agree whenever the waveforms do.
pub(crate) fn state_eq(a: &NodeState, b: &NodeState, epsilon: f64) -> bool {
    for dir in 0..2 {
        match (&a.dirs[dir], &b.dirs[dir]) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                if !wave_info_eq(x, y, epsilon) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

fn wave_info_eq(a: &crate::engine::WaveInfo, b: &crate::engine::WaveInfo, epsilon: f64) -> bool {
    if !close(a.crossing, b.crossing, epsilon) || !close(a.quiescent, b.quiescent, epsilon) {
        return false;
    }
    let (pa, pb) = (a.wave.points(), b.wave.points());
    pa.len() == pb.len()
        && pa
            .iter()
            .zip(pb)
            .all(|(&(ta, va), &(tb, vb))| close(ta, tb, epsilon) && close(va, vb, epsilon))
}

#[inline]
fn close(a: f64, b: f64, epsilon: f64) -> bool {
    (a - b).abs() <= epsilon
}
