//! Benchmarks of the substrate systems: device tables, network DC solves,
//! netlist parsing, placement/routing/extraction, SPEF I/O, logic and
//! transient simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtalk::prelude::*;
use xtalk::sim::circuit::{Circuit, Drive, NodeRef};
use xtalk::sim::transient::{simulate, SimOptions};
use xtalk::sim::LogicSim;
use xtalk::tech::cell::Network;
use xtalk::tech::mosfet::DeviceType;
use xtalk::wave::network::{NetworkEval, WarmStart};

fn bench_device_table(c: &mut Criterion) {
    let p = Process::c05um();
    let t = p.table(DeviceType::Nmos);
    c.bench_function("table_ids_lookup", |b| {
        let mut x = 0.1f64;
        b.iter(|| {
            x = (x * 1.618).fract();
            black_box(t.ids(3.3 * x, 3.3 * (1.0 - x), 2.0e-6))
        })
    });
    c.bench_function("table_derivs_lookup", |b| {
        let mut x = 0.1f64;
        b.iter(|| {
            x = (x * 1.618).fract();
            black_box(t.derivs(3.3 * x, 3.3 * (1.0 - x), 2.0e-6))
        })
    });
}

fn bench_network_solve(c: &mut Criterion) {
    let p = Process::c05um();
    let ev = NetworkEval::new(&p, DeviceType::Nmos);
    let um = 1.0e-6;
    let stack4 = Network::Series(vec![
        Network::device(0, 8.0 * um, 0.5 * um),
        Network::device(1, 8.0 * um, 0.5 * um),
        Network::device(2, 8.0 * um, 0.5 * um),
        Network::device(3, 8.0 * um, 0.5 * um),
    ]);
    c.bench_function("network_stack4_dc", |b| {
        let mut warm = WarmStart::new();
        let gates = [3.3, 3.3, 3.3, 2.5];
        let mut v = 0.3f64;
        b.iter(|| {
            v = (v * 1.618).fract() * 3.3;
            black_box(ev.current(&stack4, v, 0.0, &gates, &mut warm).i)
        })
    });
}

fn bench_netlist_formats(c: &mut Criterion) {
    let p = Process::c05um();
    let l = Library::c05um(&p);
    let nl =
        xtalk::netlist::generator::generate(&GeneratorConfig::medium(99), &l).expect("generate");
    let bench_text = xtalk::netlist::bench::write(&nl, &l).expect("write");
    let verilog_text = xtalk::netlist::verilog::write(&nl, &l).expect("write");

    let mut group = c.benchmark_group("formats");
    group.sample_size(20);
    group.bench_function("bench_parse_2k_cells", |b| {
        b.iter(|| {
            black_box(
                xtalk::netlist::bench::parse(&bench_text, &l)
                    .expect("parse")
                    .gate_count(),
            )
        })
    });
    group.bench_function("verilog_parse_2k_cells", |b| {
        b.iter(|| {
            black_box(
                xtalk::netlist::verilog::parse(&verilog_text, &l)
                    .expect("parse")
                    .gate_count(),
            )
        })
    });
    group.finish();
}

fn bench_physical_flow(c: &mut Criterion) {
    let p = Process::c05um();
    let l = Library::c05um(&p);
    let nl =
        xtalk::netlist::generator::generate(&GeneratorConfig::medium(98), &l).expect("generate");

    let mut group = c.benchmark_group("physical");
    group.sample_size(20);
    group.bench_function("place_2k_cells", |b| {
        b.iter(|| black_box(xtalk::layout::place::place(&nl, &l, &p).rows))
    });
    let placement = xtalk::layout::place::place(&nl, &l, &p);
    group.bench_function("route_2k_cells", |b| {
        b.iter(|| black_box(xtalk::layout::route::route(&nl, &placement, &p).total_wirelength()))
    });
    let routes = xtalk::layout::route::route(&nl, &placement, &p);
    group.bench_function("extract_2k_cells", |b| {
        b.iter(|| black_box(xtalk::layout::extract::extract(&nl, &routes, &p).coupling_count()))
    });
    let parasitics = xtalk::layout::extract::extract(&nl, &routes, &p);
    group.bench_function("spef_write_2k_cells", |b| {
        b.iter(|| black_box(xtalk::layout::spef::write(&nl, &parasitics).len()))
    });
    let spef = xtalk::layout::spef::write(&nl, &parasitics);
    group.bench_function("spef_parse_2k_cells", |b| {
        b.iter(|| {
            black_box(
                xtalk::layout::spef::parse(&spef, &nl)
                    .expect("parse")
                    .coupling_count(),
            )
        })
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let p = Process::c05um();
    let l = Library::c05um(&p);
    let nl =
        xtalk::netlist::generator::generate(&GeneratorConfig::medium(97), &l).expect("generate");

    c.bench_function("logic_sim_cycle_2k_cells", |b| {
        let mut sim = LogicSim::new(&nl, &l).expect("sim");
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let n = nl.primary_inputs().count();
            let bits: Vec<bool> = (0..n).map(|i| (k >> (i % 60)) & 1 == 1).collect();
            let out = sim.run_vector(bits);
            sim.clock();
            black_box(out.len())
        })
    });

    // Transient: a 5-stage inverter chain.
    let mut group = c.benchmark_group("transient");
    group.sample_size(10);
    for stages in [2usize, 5] {
        group.bench_with_input(
            BenchmarkId::new("inv_chain", stages),
            &stages,
            |b, &stages| {
                b.iter(|| {
                    let inv = l.cell("INVX1").expect("inv");
                    let mut circuit = Circuit::new();
                    let mut prev = circuit.add_node(
                        "in",
                        Drive::Pwl(Waveform::ramp(0.5e-9, 0.2e-9, p.vdd, 0.0).expect("ramp")),
                        0.0,
                        p.vdd,
                    );
                    for k in 0..stages {
                        let v0 = if k % 2 == 0 { 0.0 } else { p.vdd };
                        let out = circuit.add_node(format!("n{k}"), Drive::Free, 15e-15, v0);
                        circuit.instantiate_cell(
                            inv,
                            &[NodeRef::Node(prev)],
                            NodeRef::Node(out),
                            None,
                            &l,
                            &p,
                            &format!("u{k}"),
                        );
                        prev = out;
                    }
                    let tr = simulate(
                        &circuit,
                        &p,
                        &SimOptions {
                            t_stop: 4e-9,
                            ..SimOptions::default()
                        },
                    )
                    .expect("simulate");
                    black_box(tr.steps)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_device_table, bench_network_solve, bench_netlist_formats,
        bench_physical_flow, bench_simulators
}
criterion_main!(benches);
