//! Macro-benchmarks: full analyses per mode — the runtime columns of the
//! paper's Tables 1–3, at benchable scale.
//!
//! The paper's complexity claims to verify: one-step keeps the BFS linear
//! with two waveform calculations per arc (≈2x a plain pass), the iterative
//! refinement costs at least three passes' worth, and Esperance brings the
//! iterative cost down.
//!
//! Scale is selected with `XTALK_STA_SCALE` (`small` (default), `medium`,
//! `s38417`): criterion-style sampling at the small scale, one-shot
//! measurements for the larger configs. Every run also measures the
//! execution layer on `Iterative`: wall/CPU time and Newton-solve counts
//! with the stage-solve cache off (the pre-cache engine) vs on — one cold
//! analysis and one warm re-analysis on the same analyzer — asserts all
//! three produce bit-identical delays, and appends the numbers to
//! `BENCH_sta.json` at the workspace root. Those three rows run in
//! *signoff* mode (pre-macromodel engine); two more rows measure the
//! characterized-table fast path (`macromodel_cold` / `macromodel_warm`)
//! and assert a macromodel cold run never costs more than the cached cold
//! run and is never optimistic versus signoff.
//!
//! A third section (`solver_layer`) micro-benchmarks the stage solver
//! itself on a fixed menu of solves through three engine variants —
//! cold-start Newton, warm-started Newton, and warm-started Newton over a
//! reused scratch — asserting the warm seed strictly cuts total Newton
//! iterations and that scratch reuse changes nothing but allocations.
//! Each engine's sweep runs three times and reports the minimum (the run
//! least perturbed by scheduler noise).
//!
//! A fourth section (`serve_layer`) runs the same analysis through the
//! timing-service daemon three ways — first-client cold, disk-warm after
//! a daemon restart on the populated solve store, and resident-warm —
//! asserting bit-identity throughout and that the disk-warm restart
//! strictly cuts Newton iterations versus the cold start.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use xtalk::prelude::*;
use xtalk_bench::{build_design, Design};

fn scale() -> (GeneratorConfig, &'static str, bool) {
    match std::env::var("XTALK_STA_SCALE").as_deref() {
        Ok("s38417") => (GeneratorConfig::s38417_like(), "s38417_like", true),
        Ok("medium") => (GeneratorConfig::medium(4242), "medium", false),
        // ~200 cells: large enough to have real couplings, small enough
        // for statistically meaningful Criterion runs.
        _ => (GeneratorConfig::small(4242), "small", false),
    }
}

const MODES: [AnalysisMode; 6] = [
    AnalysisMode::BestCase,
    AnalysisMode::StaticDoubled,
    AnalysisMode::WorstCase,
    AnalysisMode::OneStep,
    AnalysisMode::Iterative { esperance: false },
    AnalysisMode::Iterative { esperance: true },
];

fn bench_sta_modes(c: &mut Criterion) {
    let (config, label, one_shot) = scale();
    let d = build_design(&config);

    if !one_shot {
        // Built here rather than above: at one-shot scale this analyzer is
        // never used, and constructing it would run the full macromodel
        // prewarm characterization — minutes of Newton work whose heap
        // churn would precede (and perturb) the timed exec-layer rows.
        let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");
        let mut group = c.benchmark_group("sta_modes");
        group.sample_size(10);
        for mode in MODES {
            group.bench_with_input(
                BenchmarkId::from_parameter(mode.to_string().replace(' ', "_")),
                &mode,
                |b, &mode| b.iter(|| black_box(sta.analyze(mode).expect("analysis").longest_delay)),
            );
        }
        group.finish();
    }

    report_exec_layer(&d, label);
}

/// Wall and CPU seconds consumed by one closure call. CPU time comes from
/// `/proc/self/stat` (utime + stime across all threads) and falls back to
/// the wall reading off Linux; it is the noise-resistant number on shared
/// hosts, where single-shot wall clocks of minute-long runs vary by tens
/// of percent.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64, f64) {
    let cpu0 = cpu_seconds();
    let started = Instant::now();
    let value = f();
    let wall = started.elapsed().as_secs_f64();
    let cpu = match (cpu0, cpu_seconds()) {
        (Some(a), Some(b)) => b - a,
        _ => wall,
    };
    (value, wall, cpu)
}

fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime, clock ticks) follow the parenthesised
    // command name; split after the closing paren to survive spaces in it.
    let after = stat.rsplit(')').next()?;
    let mut fields = after.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every mainstream Linux configuration.
    Some((utime + stime) / 100.0)
}

/// One-shot measurement of the execution layer on the refinement mode:
/// pre-cache engine (serial, cache off) vs the cached engine — one cold
/// analysis plus one warm re-analysis on the same analyzer — asserting
/// bit-identical results, printing the speedups, and appending a JSON
/// record per measurement to `BENCH_sta.json`.
fn report_exec_layer(d: &Design, label: &str) {
    let mode = AnalysisMode::Iterative { esperance: false };
    let threads = ExecConfig::from_env().expect("exec config").threads;

    // The baseline / cached_cold / cached_warm rows run in signoff so they
    // stay comparable with every record taken before the macromodel fast
    // path existed (and so the bit-identity asserts below keep their
    // original meaning). The fast path gets its own rows afterwards.
    let baseline_sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::serial().with_cache(false).with_signoff(true),
    )
    .expect("sta");
    let (baseline, baseline_wall, baseline_cpu) =
        timed(|| baseline_sta.analyze(mode).expect("baseline"));

    let cached_sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::from_env()
            .expect("exec config")
            .with_signoff(true),
    )
    .expect("sta");
    let (cached, cached_wall, cached_cpu) = timed(|| cached_sta.analyze(mode).expect("cached"));
    // The warm re-analysis: the persistent cache answers every solve, the
    // workload of repeated what-if / ECO analyses on one analyzer.
    let (warm, warm_wall, warm_cpu) = timed(|| cached_sta.analyze(mode).expect("warm"));

    assert_eq!(
        baseline.longest_delay.to_bits(),
        cached.longest_delay.to_bits()
    );
    assert_eq!(
        baseline.longest_delay.to_bits(),
        warm.longest_delay.to_bits()
    );
    assert!(
        cached.newton_solves < baseline.newton_solves,
        "cache did not reduce Newton solves on refinement passes \
         ({} vs {})",
        cached.newton_solves,
        baseline.newton_solves
    );
    // Cost-aware admission exists so the reuse layers never make a cold run
    // slower than the uncached engine, at any scale. CPU time is the
    // noise-resistant number; wall gets the same bound with headroom for
    // single-shot scheduling scatter on shared hosts.
    assert!(
        cached_cpu <= baseline_cpu * 1.05,
        "cold cached run regressed vs the uncached baseline \
         ({cached_cpu:.3} s cpu vs {baseline_cpu:.3} s cpu)"
    );
    assert!(
        cached_wall <= baseline_wall * 1.10,
        "cold cached run regressed vs the uncached baseline \
         ({cached_wall:.3} s wall vs {baseline_wall:.3} s wall)"
    );
    let stats = cached_sta.cache_stats();
    if stats.evictions == 0 {
        assert_eq!(warm.newton_solves, 0, "warm re-analysis re-integrated");
    }

    // The macromodel fast path (default engine): characterized delay tables
    // answer in-grid stage solves, Newton covers the rest. Characterization
    // happens inside `Sta::with_config` (build time), so the timed region
    // is pure analysis — the same region the signoff rows time.
    let fast_sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::from_env()
            .expect("exec config")
            .with_signoff(false),
    )
    .expect("sta");
    let (fast, fast_wall, fast_cpu) = timed(|| fast_sta.analyze(mode).expect("macromodel cold"));
    let (fast_warm, fast_warm_wall, fast_warm_cpu) =
        timed(|| fast_sta.analyze(mode).expect("macromodel warm"));
    assert!(
        fast.table_hits > 0,
        "macromodel tables never engaged at scale {label}"
    );
    // Safety: tables only ever add certified pessimism.
    assert!(
        fast.longest_delay >= baseline.longest_delay - 1e-12,
        "macromodel run optimistic vs signoff ({} vs {})",
        fast.longest_delay,
        baseline.longest_delay
    );
    // The fast path must earn its keep: a macromodel cold run never costs
    // more than the cached cold run it short-circuits (CI smoke gate).
    assert!(
        fast_cpu <= cached_cpu * 1.05,
        "macromodel cold run regressed vs the cached engine \
         ({fast_cpu:.3} s cpu vs {cached_cpu:.3} s cpu)"
    );
    assert!(
        fast_wall <= cached_wall * 1.10,
        "macromodel cold run regressed vs the cached engine \
         ({fast_wall:.3} s wall vs {cached_wall:.3} s wall)"
    );

    println!(
        "sta_exec/{label}: baseline {baseline_wall:.3} s wall / {baseline_cpu:.3} s cpu \
         ({} newton), {} threads",
        baseline.newton_solves, threads,
    );
    for (name, report, wall, cpu) in [
        ("cached/cold", &cached, cached_wall, cached_cpu),
        ("cached/warm", &warm, warm_wall, warm_cpu),
        ("macromodel/cold", &fast, fast_wall, fast_cpu),
        ("macromodel/warm", &fast_warm, fast_warm_wall, fast_warm_cpu),
    ] {
        println!(
            "sta_exec/{label}: {name} {wall:.3} s wall / {cpu:.3} s cpu \
             ({} newton, {} hits, {} table), speedup {:.2}x wall / {:.2}x cpu",
            report.newton_solves,
            report.cache_hits,
            report.table_hits,
            baseline_wall / wall.max(1e-9),
            baseline_cpu / cpu.max(1e-9),
        );
    }
    println!(
        "sta_exec/{label}: macromodel {} table hits / {} fallbacks, \
         residual <= {:.1} ps",
        fast.table_hits,
        fast.table_fallbacks,
        fast.table_residual * 1e12
    );
    println!(
        "sta_exec/{label}: cache {} hits, {} misses, {} evictions \
         (admission {} admitted, {} skipped)",
        stats.hits, stats.misses, stats.evictions, stats.admitted, stats.skipped
    );
    for (i, p) in cached.pass_stats.iter().enumerate() {
        println!(
            "sta_exec/{label}: pass {} delay {:.3} ns, {} calls, {} newton \
             ({} iters), {} hits ({:.0}%, {} warm), hist {:?}",
            i + 1,
            p.delay * 1e9,
            p.solver_calls,
            p.newton_solves,
            p.newton_iters,
            p.cache_hits,
            100.0 * p.hit_ratio(),
            p.warm_hits,
            p.iter_hist,
        );
    }

    let mut rows_json: Vec<String> = Vec::new();
    let rows = [
        ("baseline", &baseline, baseline_wall, baseline_cpu),
        ("cached_cold", &cached, cached_wall, cached_cpu),
        ("cached_warm", &warm, warm_wall, warm_cpu),
        ("macromodel_cold", &fast, fast_wall, fast_cpu),
        ("macromodel_warm", &fast_warm, fast_warm_wall, fast_warm_cpu),
    ];
    for (engine, report, wall, cpu) in rows.iter() {
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"sta_modes\", \"engine\": \"{engine}\", \
             \"mode\": \"{mode}\", \"scale\": \"{label}\", \
             \"gates\": {}, \"threads\": {}, \"wall_s\": {wall:.6}, \
             \"cpu_s\": {cpu:.6}, \"passes\": {}, \"stage_solves\": {}, \
             \"newton_solves\": {}, \"newton_iters\": {}, \
             \"cache_hits\": {}, \"warm_hits\": {}, \
             \"table_hits\": {}, \"table_fallbacks\": {}}}",
            d.netlist.gate_count(),
            if *engine == "baseline" { 1 } else { threads },
            report.passes,
            report.stage_solves,
            report.newton_solves,
            report.newton_iters,
            report.cache_hits,
            report.warm_hits,
            report.table_hits,
            report.table_fallbacks,
        );
        rows_json.push(row);
    }
    rows_json.extend(report_graph_layer(d, label));
    rows_json.extend(report_solver_layer(d, label));
    rows_json.extend(report_serve_layer(d, label));
    write_bench_json(rows_json, label);
}

/// One-shot A/B of the graph layer: timing-graph construction and pure
/// propagation (serial, cache off, one-step coupling policy — the workload
/// that walks fanout, levels and coupling adjacency hardest). Rows are
/// tagged with [`xtalk::sta::graph::TimingGraph::LAYOUT`] so measurements
/// taken on either side of the nested-to-CSR refactor stay attributable
/// in `BENCH_sta.json`.
fn report_graph_layer(d: &Design, label: &str) -> Vec<String> {
    let layout = xtalk::sta::graph::TimingGraph::LAYOUT;
    // Graph construction, amortized over enough builds for a stable read.
    let iters: usize = match label {
        "small" => 50,
        "medium" => 10,
        _ => 3,
    };
    let (_, build_wall, build_cpu) = timed(|| {
        for _ in 0..iters {
            let sta =
                Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("build sta");
            black_box(sta.graph().arc_count());
        }
    });
    let (build_wall, build_cpu) = (build_wall / iters as f64, build_cpu / iters as f64);

    // Pure propagation over the built graph: serial, cache off, signoff —
    // keeps the layout A/B rows recorded across the CSR refactor
    // comparable (no macromodel short-circuits in the measured region).
    let sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::serial().with_cache(false).with_signoff(true),
    )
    .expect("sta");
    let (report, prop_wall, prop_cpu) =
        timed(|| sta.analyze(AnalysisMode::OneStep).expect("one-step"));

    println!(
        "graph_layer/{label}: layout {layout}, build {:.6} s wall / {:.6} s cpu (x{iters}), \
         one-step propagation {prop_wall:.3} s wall / {prop_cpu:.3} s cpu ({} solves)",
        build_wall, build_cpu, report.stage_solves,
    );

    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"bench\": \"graph_layer\", \"layout\": \"{layout}\", \"scale\": \"{label}\", \
         \"gates\": {}, \"stages\": {}, \"arcs\": {}, \
         \"build_wall_s\": {build_wall:.6}, \"build_cpu_s\": {build_cpu:.6}, \
         \"onestep_wall_s\": {prop_wall:.6}, \"onestep_cpu_s\": {prop_cpu:.6}, \
         \"stage_solves\": {}}}",
        d.netlist.gate_count(),
        sta.graph().stages.len(),
        sta.graph().arc_count(),
        report.stage_solves,
    );
    vec![row]
}

/// One-shot A/B/C of the stage-solver layer on a fixed menu of solves —
/// two cells, three input slews, three loads, both directions, plus an
/// active-coupling variant per (cell, slew, load) — through three engines:
///
/// - `baseline`: cold-start Newton, fresh scratch every solve (the
///   pre-warm-start integrator);
/// - `warm_start`: trajectory-extrapolated Newton seed, fresh scratch;
/// - `warm_start_scratch`: warm seed plus one reused [`StageScratch`]
///   (zero steady-state allocations — the production kernel path).
///
/// Asserts the warm seed strictly cuts total Newton iterations and that
/// scratch reuse leaves iteration counts and waveform bits untouched.
fn report_solver_layer(d: &Design, label: &str) -> Vec<String> {
    use xtalk::wave::stage::{Coupling, Load, StageScratch, StageSolver};

    let p = &d.process;
    let reps: usize = match label {
        "small" => 20,
        "medium" => 60,
        _ => 200,
    };

    struct Item<'a> {
        stage: &'a xtalk::tech::cell::Stage,
        side: &'a [f64],
        input: Waveform,
        load: Load,
    }
    let nand_side = [0.0, p.vdd];
    let mut menu: Vec<Item<'_>> = Vec::new();
    for name in ["INVX1", "NAND2X1"] {
        let cell = d.library.cell(name).expect("library cell");
        let stage = &cell.stages[0];
        let side: &[f64] = if stage.inputs.len() > 1 {
            &nand_side
        } else {
            &[]
        };
        for slew in [0.05e-9, 0.2e-9, 0.8e-9] {
            for cl in [10e-15, 40e-15, 160e-15] {
                for rising in [false, true] {
                    let (v0, v1) = if rising { (0.0, p.vdd) } else { (p.vdd, 0.0) };
                    menu.push(Item {
                        stage,
                        side,
                        input: Waveform::ramp(0.0, slew, v0, v1).expect("ramp"),
                        load: Load::grounded(cl),
                    });
                }
                // Active coupling exercises the snap restart, which the warm
                // seed must not extrapolate across.
                menu.push(Item {
                    stage,
                    side,
                    input: Waveform::ramp(0.0, slew, p.vdd, 0.0).expect("ramp"),
                    load: Load {
                        cground: cl,
                        couplings: vec![Coupling::new(0.25 * cl, CouplingMode::Active)],
                    },
                });
            }
        }
    }

    let mut rows = Vec::new();
    let mut iters_by_engine = Vec::new();
    // Min-of-3 per engine: single-shot sweeps on a shared host scatter by
    // tens of percent, and the *minimum* is the run least perturbed by
    // scheduling noise. Counters are deterministic, so only time varies.
    const RUNS: usize = 3;
    for (engine, warm, reuse_scratch) in [
        ("baseline", false, false),
        ("warm_start", true, false),
        ("warm_start_scratch", true, true),
    ] {
        let solver = StageSolver::new(p).with_warm_newton(warm);
        let mut wall = f64::INFINITY;
        let mut cpu = f64::INFINITY;
        let mut solves = 0usize;
        let mut iters = 0usize;
        let mut steps = 0usize;
        for _ in 0..RUNS {
            let mut scratch = StageScratch::new();
            solves = 0;
            iters = 0;
            steps = 0;
            let ((), run_wall, run_cpu) = timed(|| {
                for _ in 0..reps {
                    for s in &menu {
                        let (i, st) = if reuse_scratch {
                            let r = solver
                                .solve_with(&mut scratch, s.stage, 0, &s.input, s.side, &s.load)
                                .expect("stage solve");
                            black_box(r.wave.final_value());
                            (r.newton_iters, r.steps)
                        } else {
                            let r = solver
                                .solve(s.stage, 0, &s.input, s.side, s.load.clone())
                                .expect("stage solve");
                            black_box(r.wave.final_value());
                            (r.newton_iters, r.steps)
                        };
                        solves += 1;
                        iters += i;
                        steps += st;
                    }
                }
            });
            wall = wall.min(run_wall);
            cpu = cpu.min(run_cpu);
        }
        println!(
            "solver_layer/{label}: {engine} {solves} solves, {iters} newton iters, \
             {steps} steps, {wall:.3} s wall / {cpu:.3} s cpu (min of {RUNS})"
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"sta_modes\", \"section\": \"solver_layer\", \
             \"engine\": \"{engine}\", \"scale\": \"{label}\", \
             \"solves\": {solves}, \"newton_iters\": {iters}, \"steps\": {steps}, \
             \"wall_s\": {wall:.6}, \"cpu_s\": {cpu:.6}}}"
        );
        rows.push(row);
        iters_by_engine.push(iters);
    }

    assert!(
        iters_by_engine[1] < iters_by_engine[0],
        "warm-started Newton must strictly cut total iterations \
         ({} vs baseline {})",
        iters_by_engine[1],
        iters_by_engine[0]
    );
    assert_eq!(
        iters_by_engine[2], iters_by_engine[1],
        "scratch reuse changed the Newton iteration count"
    );
    // Bit-identity of the production path: one unmeasured verification
    // sweep comparing solve() against solve_with() on a dirty scratch.
    let solver = StageSolver::new(p);
    let mut scratch = StageScratch::new();
    for s in &menu {
        let fresh = solver
            .solve(s.stage, 0, &s.input, s.side, s.load.clone())
            .expect("fresh solve");
        let lean = solver
            .solve_with(&mut scratch, s.stage, 0, &s.input, s.side, &s.load)
            .expect("scratch solve");
        assert_eq!(fresh.wave, lean.wave, "scratch reuse changed waveform bits");
        assert_eq!(fresh.newton_iters, lean.newton_iters);
    }

    rows
}

/// One-shot measurement of the timing-service layer: the refinement-mode
/// analysis served three ways over a Unix socket in-process —
///
/// - `serve_cold`: the first client analysis against a fresh daemon with
///   an empty solve store (pays the full Newton bill, populates the store
///   through the write-behind journal);
/// - `serve_disk_warm`: a fresh daemon restarted on that populated store,
///   first client analysis (replayed entries answer solves from disk);
/// - `serve_resident_warm`: a repeat analysis against the still-resident
///   session (the per-session arrival memo answers everything).
///
/// Asserts all three delays are bit-identical and that the disk-warm
/// restart solves strictly fewer Newton iterations than the cold start.
fn report_serve_layer(d: &Design, label: &str) -> Vec<String> {
    use std::time::Duration;
    use xtalk::sta::serve::{Client, Daemon, Json, ServeConfig};

    let dir = std::env::temp_dir().join(format!("xtalk_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let netlist_path = dir.join(format!("{label}.bench"));
    let text = xtalk::netlist::bench::write(&d.netlist, &d.library).expect("bench text");
    std::fs::write(&netlist_path, text).expect("write netlist");
    let store = dir.join(format!("{label}.store"));
    let _ = std::fs::remove_file(&store);
    let socket = dir.join(format!("{label}.sock"));

    let start = |socket: &std::path::Path, store: &std::path::Path| {
        let daemon = Daemon::bind(ServeConfig {
            socket: socket.to_path_buf(),
            store: Some(store.to_path_buf()),
            exec: ExecConfig::from_env().expect("exec config"),
        })
        .expect("bind daemon");
        std::thread::spawn(move || daemon.run().expect("daemon run"))
    };
    let load = |client: &mut Client| {
        let resp = client
            .load("bench", &netlist_path.to_string_lossy(), None)
            .expect("load");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        resp.get("store_replayed")
            .and_then(Json::as_u64)
            .expect("store_replayed")
    };
    // (delay bits, newton iters, cache hits, wall s, cpu s) of one served
    // analysis. CPU covers the daemon too: it runs as threads of this
    // process, so `/proc/self/stat` sees its solver work.
    let analyze = |client: &mut Client| {
        let (resp, wall, cpu) =
            timed(|| client.analyze("bench", Some("iterative")).expect("analyze"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        let field = |name: &str| resp.get(name).and_then(Json::as_u64).expect("report field");
        let bits = resp
            .str_field("delay_bits")
            .expect("delay_bits")
            .to_string();
        (bits, field("newton_iters"), field("cache_hits"), wall, cpu)
    };

    // Generation 1: cold daemon, empty store.
    let daemon = start(&socket, &store);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).expect("connect");
    assert_eq!(load(&mut client), 0, "the store starts empty");
    let cold = analyze(&mut client);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");

    // Generation 2: fresh daemon on the store the cold run populated.
    let daemon = start(&socket, &store);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).expect("connect");
    let replayed = load(&mut client);
    assert!(replayed > 0, "the cold run populated the store");
    let disk_warm = analyze(&mut client);
    let resident_warm = analyze(&mut client);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");

    assert_eq!(cold.0, disk_warm.0, "disk-warm delay diverged from cold");
    assert_eq!(cold.0, resident_warm.0, "resident-warm delay diverged");
    assert!(
        disk_warm.1 < cold.1,
        "a disk-warm daemon restart must solve strictly fewer Newton \
         iterations than a cold start ({} vs {})",
        disk_warm.1,
        cold.1
    );

    let mut rows = Vec::new();
    for (engine, m, gen_replayed) in [
        ("serve_cold", &cold, 0),
        ("serve_disk_warm", &disk_warm, replayed),
        ("serve_resident_warm", &resident_warm, replayed),
    ] {
        println!(
            "serve_layer/{label}: {engine} {:.3} s wall / {:.3} s cpu \
             ({} newton iters, {} hits, {gen_replayed} replayed)",
            m.3, m.4, m.1, m.2
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"sta_modes\", \"section\": \"serve_layer\", \
             \"engine\": \"{engine}\", \"scale\": \"{label}\", \
             \"gates\": {}, \"wall_s\": {:.6}, \"cpu_s\": {:.6}, \
             \"newton_iters\": {}, \"cache_hits\": {}, \
             \"store_replayed\": {gen_replayed}}}",
            d.netlist.gate_count(),
            m.3,
            m.4,
            m.1,
            m.2,
        );
        rows.push(row);
    }
    rows
}

/// Writes `BENCH_sta.json`: the rows measured by this run plus every
/// already-recorded row this run did *not* re-measure — other scales, and
/// `graph_layer` rows of the other adjacency layout. That keeps the bench
/// trajectory (expensive s38417 runs, the nested-vs-CSR A/B recorded
/// across the refactor) alive through re-runs.
fn write_bench_json(mut rows: Vec<String>, label: &str) {
    let path = bench_json_path();
    let scale_tag = format!("\"scale\": \"{label}\"");
    let layout_tag = format!("\"layout\": \"{}\"", xtalk::sta::graph::TimingGraph::LAYOUT);
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                continue;
            }
            let remeasured = line.contains(&scale_tag)
                && (!line.contains("\"bench\": \"graph_layer\"") || line.contains(&layout_tag));
            if !remeasured {
                rows.push(line.to_string());
            }
        }
    }
    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "  {row}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("]\n");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// `BENCH_sta.json` at the workspace root (two levels above this crate).
fn bench_json_path() -> PathBuf {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_sta.json")
}

fn bench_graph_build(c: &mut Criterion) {
    let (config, _, one_shot) = scale();
    if one_shot {
        return;
    }
    let d = build_design(&config);
    c.bench_function("timing_graph_build", |b| {
        b.iter(|| {
            let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");
            black_box(sta.graph().arc_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sta_modes, bench_graph_build
}
criterion_main!(benches);
