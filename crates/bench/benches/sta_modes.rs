//! Macro-benchmarks: full analyses per mode — the runtime columns of the
//! paper's Tables 1–3, at benchable scale.
//!
//! The paper's complexity claims to verify: one-step keeps the BFS linear
//! with two waveform calculations per arc (≈2x a plain pass), the iterative
//! refinement costs at least three passes' worth, and Esperance brings the
//! iterative cost down.
//!
//! Scale is selected with `XTALK_STA_SCALE` (`small` (default), `medium`,
//! `s38417`): criterion-style sampling at the small scale, one-shot
//! measurements for the larger configs. Every run also measures the
//! execution layer on `Iterative`: wall/CPU time and Newton-solve counts
//! with the stage-solve cache off (the pre-cache engine) vs on — one cold
//! analysis and one warm re-analysis on the same analyzer — asserts all
//! three produce bit-identical delays, and appends the numbers to
//! `BENCH_sta.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use xtalk::prelude::*;
use xtalk_bench::{build_design, Design};

fn scale() -> (GeneratorConfig, &'static str, bool) {
    match std::env::var("XTALK_STA_SCALE").as_deref() {
        Ok("s38417") => (GeneratorConfig::s38417_like(), "s38417_like", true),
        Ok("medium") => (GeneratorConfig::medium(4242), "medium", false),
        // ~200 cells: large enough to have real couplings, small enough
        // for statistically meaningful Criterion runs.
        _ => (GeneratorConfig::small(4242), "small", false),
    }
}

const MODES: [AnalysisMode; 6] = [
    AnalysisMode::BestCase,
    AnalysisMode::StaticDoubled,
    AnalysisMode::WorstCase,
    AnalysisMode::OneStep,
    AnalysisMode::Iterative { esperance: false },
    AnalysisMode::Iterative { esperance: true },
];

fn bench_sta_modes(c: &mut Criterion) {
    let (config, label, one_shot) = scale();
    let d = build_design(&config);
    let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");

    if !one_shot {
        let mut group = c.benchmark_group("sta_modes");
        group.sample_size(10);
        for mode in MODES {
            group.bench_with_input(
                BenchmarkId::from_parameter(mode.to_string().replace(' ', "_")),
                &mode,
                |b, &mode| b.iter(|| black_box(sta.analyze(mode).expect("analysis").longest_delay)),
            );
        }
        group.finish();
    }

    report_exec_layer(&d, label);
}

/// Wall and CPU seconds consumed by one closure call. CPU time comes from
/// `/proc/self/stat` (utime + stime across all threads) and falls back to
/// the wall reading off Linux; it is the noise-resistant number on shared
/// hosts, where single-shot wall clocks of minute-long runs vary by tens
/// of percent.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64, f64) {
    let cpu0 = cpu_seconds();
    let started = Instant::now();
    let value = f();
    let wall = started.elapsed().as_secs_f64();
    let cpu = match (cpu0, cpu_seconds()) {
        (Some(a), Some(b)) => b - a,
        _ => wall,
    };
    (value, wall, cpu)
}

fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime, clock ticks) follow the parenthesised
    // command name; split after the closing paren to survive spaces in it.
    let after = stat.rsplit(')').next()?;
    let mut fields = after.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every mainstream Linux configuration.
    Some((utime + stime) / 100.0)
}

/// One-shot measurement of the execution layer on the refinement mode:
/// pre-cache engine (serial, cache off) vs the cached engine — one cold
/// analysis plus one warm re-analysis on the same analyzer — asserting
/// bit-identical results, printing the speedups, and appending a JSON
/// record per measurement to `BENCH_sta.json`.
fn report_exec_layer(d: &Design, label: &str) {
    let mode = AnalysisMode::Iterative { esperance: false };
    let threads = ExecConfig::from_env().threads;

    let baseline_sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::serial().with_cache(false),
    )
    .expect("sta");
    let (baseline, baseline_wall, baseline_cpu) =
        timed(|| baseline_sta.analyze(mode).expect("baseline"));

    let cached_sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::from_env(),
    )
    .expect("sta");
    let (cached, cached_wall, cached_cpu) = timed(|| cached_sta.analyze(mode).expect("cached"));
    // The warm re-analysis: the persistent cache answers every solve, the
    // workload of repeated what-if / ECO analyses on one analyzer.
    let (warm, warm_wall, warm_cpu) = timed(|| cached_sta.analyze(mode).expect("warm"));

    assert_eq!(
        baseline.longest_delay.to_bits(),
        cached.longest_delay.to_bits()
    );
    assert_eq!(
        baseline.longest_delay.to_bits(),
        warm.longest_delay.to_bits()
    );
    assert!(
        cached.newton_solves < baseline.newton_solves,
        "cache did not reduce Newton solves on refinement passes \
         ({} vs {})",
        cached.newton_solves,
        baseline.newton_solves
    );
    let stats = cached_sta.cache_stats();
    if stats.evictions == 0 {
        assert_eq!(warm.newton_solves, 0, "warm re-analysis re-integrated");
    }

    println!(
        "sta_exec/{label}: baseline {baseline_wall:.3} s wall / {baseline_cpu:.3} s cpu \
         ({} newton), {} threads",
        baseline.newton_solves, threads,
    );
    for (name, report, wall, cpu) in [
        ("cold", &cached, cached_wall, cached_cpu),
        ("warm", &warm, warm_wall, warm_cpu),
    ] {
        println!(
            "sta_exec/{label}: cached/{name} {wall:.3} s wall / {cpu:.3} s cpu \
             ({} newton, {} hits), speedup {:.2}x wall / {:.2}x cpu",
            report.newton_solves,
            report.cache_hits,
            baseline_wall / wall.max(1e-9),
            baseline_cpu / cpu.max(1e-9),
        );
    }
    println!(
        "sta_exec/{label}: cache {} hits, {} misses, {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
    for (i, p) in cached.pass_stats.iter().enumerate() {
        println!(
            "sta_exec/{label}: pass {} delay {:.3} ns, {} calls, {} newton, \
             {} hits ({:.0}%)",
            i + 1,
            p.delay * 1e9,
            p.solver_calls,
            p.newton_solves,
            p.cache_hits,
            100.0 * p.hit_ratio(),
        );
    }

    let mut rows_json: Vec<String> = Vec::new();
    let rows = [
        ("baseline", &baseline, baseline_wall, baseline_cpu),
        ("cached_cold", &cached, cached_wall, cached_cpu),
        ("cached_warm", &warm, warm_wall, warm_cpu),
    ];
    for (engine, report, wall, cpu) in rows.iter() {
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"bench\": \"sta_modes\", \"engine\": \"{engine}\", \
             \"mode\": \"{mode}\", \"scale\": \"{label}\", \
             \"gates\": {}, \"threads\": {}, \"wall_s\": {wall:.6}, \
             \"cpu_s\": {cpu:.6}, \"passes\": {}, \"stage_solves\": {}, \
             \"newton_solves\": {}, \"cache_hits\": {}}}",
            d.netlist.gate_count(),
            if *engine == "baseline" { 1 } else { threads },
            report.passes,
            report.stage_solves,
            report.newton_solves,
            report.cache_hits,
        );
        rows_json.push(row);
    }
    rows_json.extend(report_graph_layer(d, label));
    write_bench_json(rows_json, label);
}

/// One-shot A/B of the graph layer: timing-graph construction and pure
/// propagation (serial, cache off, one-step coupling policy — the workload
/// that walks fanout, levels and coupling adjacency hardest). Rows are
/// tagged with [`xtalk::sta::graph::TimingGraph::LAYOUT`] so measurements
/// taken on either side of the nested-to-CSR refactor stay attributable
/// in `BENCH_sta.json`.
fn report_graph_layer(d: &Design, label: &str) -> Vec<String> {
    let layout = xtalk::sta::graph::TimingGraph::LAYOUT;
    // Graph construction, amortized over enough builds for a stable read.
    let iters: usize = match label {
        "small" => 50,
        "medium" => 10,
        _ => 3,
    };
    let (_, build_wall, build_cpu) = timed(|| {
        for _ in 0..iters {
            let sta =
                Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("build sta");
            black_box(sta.graph().arc_count());
        }
    });
    let (build_wall, build_cpu) = (build_wall / iters as f64, build_cpu / iters as f64);

    // Pure propagation over the built graph: serial, cache off.
    let sta = Sta::with_config(
        &d.netlist,
        &d.library,
        &d.process,
        &d.parasitics,
        ExecConfig::serial().with_cache(false),
    )
    .expect("sta");
    let (report, prop_wall, prop_cpu) =
        timed(|| sta.analyze(AnalysisMode::OneStep).expect("one-step"));

    println!(
        "graph_layer/{label}: layout {layout}, build {:.6} s wall / {:.6} s cpu (x{iters}), \
         one-step propagation {prop_wall:.3} s wall / {prop_cpu:.3} s cpu ({} solves)",
        build_wall, build_cpu, report.stage_solves,
    );

    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"bench\": \"graph_layer\", \"layout\": \"{layout}\", \"scale\": \"{label}\", \
         \"gates\": {}, \"stages\": {}, \"arcs\": {}, \
         \"build_wall_s\": {build_wall:.6}, \"build_cpu_s\": {build_cpu:.6}, \
         \"onestep_wall_s\": {prop_wall:.6}, \"onestep_cpu_s\": {prop_cpu:.6}, \
         \"stage_solves\": {}}}",
        d.netlist.gate_count(),
        sta.graph().stages.len(),
        sta.graph().arc_count(),
        report.stage_solves,
    );
    vec![row]
}

/// Writes `BENCH_sta.json`: the rows measured by this run plus every
/// already-recorded row this run did *not* re-measure — other scales, and
/// `graph_layer` rows of the other adjacency layout. That keeps the bench
/// trajectory (expensive s38417 runs, the nested-vs-CSR A/B recorded
/// across the refactor) alive through re-runs.
fn write_bench_json(mut rows: Vec<String>, label: &str) {
    let path = bench_json_path();
    let scale_tag = format!("\"scale\": \"{label}\"");
    let layout_tag = format!("\"layout\": \"{}\"", xtalk::sta::graph::TimingGraph::LAYOUT);
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                continue;
            }
            let remeasured = line.contains(&scale_tag)
                && (!line.contains("\"bench\": \"graph_layer\"") || line.contains(&layout_tag));
            if !remeasured {
                rows.push(line.to_string());
            }
        }
    }
    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "  {row}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("]\n");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// `BENCH_sta.json` at the workspace root (two levels above this crate).
fn bench_json_path() -> PathBuf {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_sta.json")
}

fn bench_graph_build(c: &mut Criterion) {
    let (config, _, one_shot) = scale();
    if one_shot {
        return;
    }
    let d = build_design(&config);
    c.bench_function("timing_graph_build", |b| {
        b.iter(|| {
            let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");
            black_box(sta.graph().arc_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sta_modes, bench_graph_build
}
criterion_main!(benches);
