//! Macro-benchmarks: full analyses per mode — the runtime columns of the
//! paper's Tables 1–3, at benchable scale.
//!
//! The paper's complexity claims to verify: one-step keeps the BFS linear
//! with two waveform calculations per arc (≈2x a plain pass), the iterative
//! refinement costs at least three passes' worth, and Esperance brings the
//! iterative cost down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtalk::prelude::*;
use xtalk_bench::{build_design, Design};

fn design() -> Design {
    // ~200 cells: large enough to have real couplings, small enough for
    // statistically meaningful Criterion runs.
    build_design(&GeneratorConfig::small(4242))
}

fn bench_sta_modes(c: &mut Criterion) {
    let d = design();
    let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");

    let mut group = c.benchmark_group("sta_modes");
    group.sample_size(10);
    for mode in [
        AnalysisMode::BestCase,
        AnalysisMode::StaticDoubled,
        AnalysisMode::WorstCase,
        AnalysisMode::OneStep,
        AnalysisMode::Iterative { esperance: false },
        AnalysisMode::Iterative { esperance: true },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.to_string().replace(' ', "_")),
            &mode,
            |b, &mode| b.iter(|| black_box(sta.analyze(mode).expect("analysis").longest_delay)),
        );
    }
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let d = design();
    c.bench_function("timing_graph_build", |b| {
        b.iter(|| {
            let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");
            black_box(sta.graph().arc_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sta_modes, bench_graph_build
}
criterion_main!(benches);
