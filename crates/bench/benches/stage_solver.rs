//! Micro-benchmarks of the waveform kernel: one transistor-level stage
//! solution per coupling treatment (the inner loop of every analysis, and
//! the quantitative content of the paper's Fig. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtalk::prelude::*;
use xtalk::wave::stage::{Coupling, Load, StageSolver};

fn bench_stage_solver(c: &mut Criterion) {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let solver = StageSolver::new(&process);
    let input = Waveform::ramp(0.0, 0.2e-9, process.vdd, 0.0).expect("ramp");

    let mut group = c.benchmark_group("stage_solver");
    for (name, mode) in [
        ("grounded", CouplingMode::Grounded),
        ("doubled", CouplingMode::Doubled),
        ("active", CouplingMode::Active),
    ] {
        let inv = library.cell("INVX1").expect("inv");
        group.bench_with_input(BenchmarkId::new("invx1", name), &mode, |b, &mode| {
            b.iter(|| {
                let load = Load {
                    cground: 30e-15,
                    couplings: vec![Coupling::new(10e-15, mode)],
                };
                let r = solver
                    .solve(&inv.stages[0], 0, black_box(&input), &[], load)
                    .expect("solve");
                black_box(r.wave.end_time())
            })
        });
    }

    // Stacked pull-down: internal-node Newton cost.
    let rising = Waveform::ramp(0.0, 0.2e-9, 0.0, process.vdd).expect("ramp");
    for cell_name in ["NAND2X1", "NAND3X1", "NAND4X1"] {
        let cell = library.cell(cell_name).expect("cell");
        let sides = vec![process.vdd; cell.inputs.len()];
        group.bench_function(BenchmarkId::new("stack", cell_name), |b| {
            b.iter(|| {
                let r = solver
                    .solve(
                        &cell.stages[0],
                        0,
                        black_box(&rising),
                        &sides,
                        Load::grounded(40e-15),
                    )
                    .expect("solve");
                black_box(r.wave.end_time())
            })
        });
    }

    // Many aggressors: snap-event handling cost.
    for n_caps in [1usize, 4, 16] {
        let inv = library.cell("INVX1").expect("inv");
        group.bench_with_input(BenchmarkId::new("aggressors", n_caps), &n_caps, |b, &n| {
            b.iter(|| {
                let load = Load {
                    cground: 30e-15,
                    couplings: (0..n)
                        .map(|k| Coupling::new(2e-15 + k as f64 * 0.5e-15, CouplingMode::Active))
                        .collect(),
                };
                let r = solver
                    .solve(&inv.stages[0], 0, black_box(&input), &[], load)
                    .expect("solve");
                black_box(r.snaps.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_stage_solver
}
criterion_main!(benches);
