//! Ablation benchmarks for the design decisions called out in DESIGN.md §6.
//!
//! - **D2** — restart-threshold choice: the coupling model restarts
//!   waveforms at `Vth = 0.2 V`, not at the 0.6 V device threshold; this
//!   sweep shows how the delay bound depends on that choice.
//! - **D5** — Esperance: iterative refinement with and without long-path
//!   filtering (also covered by `sta_modes`, kept here with a larger
//!   circuit for the speed-up headline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtalk::prelude::*;
use xtalk::wave::stage::{Coupling, Load, StageSolver};
use xtalk_bench::build_design;

/// D2: delay bound of one coupled stage as a function of the model's
/// restart threshold.
fn bench_vth_choice(c: &mut Criterion) {
    let library = Library::c05um(&Process::c05um());
    let inv = library.cell("INVX1").expect("inv");

    let mut group = c.benchmark_group("vth_choice");
    group.sample_size(30);
    for vth_mv in [100u32, 200, 400, 600] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vth_mv}mV")),
            &vth_mv,
            |b, &vth_mv| {
                let mut process = Process::c05um();
                process.coupling_vth = vth_mv as f64 * 1e-3;
                let input = Waveform::ramp(0.0, 0.2e-9, process.vdd, 0.0).expect("ramp");
                let solver = StageSolver::new(&process);
                b.iter(|| {
                    let load = Load {
                        cground: 30e-15,
                        couplings: vec![Coupling::new(10e-15, CouplingMode::Active)],
                    };
                    let r = solver
                        .solve(&inv.stages[0], 0, black_box(&input), &[], load)
                        .expect("solve");
                    black_box(
                        r.delay_from(&input, process.delay_threshold())
                            .expect("crossing"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// D5: Esperance speed-up on a mid-size circuit.
fn bench_esperance(c: &mut Criterion) {
    let mut cfg = GeneratorConfig::small(31415);
    cfg.comb_gates = 400;
    cfg.flip_flops = 32;
    cfg.depth = 10;
    let d = build_design(&cfg);
    let sta = Sta::new(&d.netlist, &d.library, &d.process, &d.parasitics).expect("sta");

    let mut group = c.benchmark_group("esperance");
    group.sample_size(10);
    group.bench_function("iterative_plain", |b| {
        b.iter(|| {
            black_box(
                sta.analyze(AnalysisMode::Iterative { esperance: false })
                    .expect("analysis")
                    .stage_solves,
            )
        })
    });
    group.bench_function("iterative_esperance", |b| {
        b.iter(|| {
            black_box(
                sta.analyze(AnalysisMode::Iterative { esperance: true })
                    .expect("analysis")
                    .stage_solves,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_vth_choice, bench_esperance
}
criterion_main!(benches);
