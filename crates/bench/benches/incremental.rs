//! Incremental ECO re-analysis vs full batch re-analysis.
//!
//! Measures the subsystem's reason to exist: after a single-net edit the
//! incremental engine re-times only the coupling-aware dirty cone, so its
//! re-analysis must be a small fraction of a fresh `Sta::analyze` on the
//! same design. The `eco_speedup` section prints the end-to-end ratio
//! (edit application + graph rebuild + re-analysis vs `Sta::new` + full
//! analysis of the identical post-edit design) plus the re-evaluated stage
//! count, and asserts both sides agree bit for bit.
//!
//! Scale is selected with `XTALK_ECO_SCALE` (`small`, `medium` (default),
//! `s35932`, `s38417`): criterion-style sampling at the default scale, a
//! one-shot measurement for the ISCAS'89-sized configs where one full
//! analysis runs tens of seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use xtalk::prelude::*;
use xtalk_bench::{build_design, Design};

const MODE: AnalysisMode = AnalysisMode::OneStep;

fn scale() -> (GeneratorConfig, &'static str, bool) {
    match std::env::var("XTALK_ECO_SCALE").as_deref() {
        Ok("s38417") => (GeneratorConfig::s38417_like(), "s38417_like", true),
        Ok("s35932") => (GeneratorConfig::s35932_like(), "s35932_like", true),
        Ok("small") => (GeneratorConfig::small(4242), "small", false),
        _ => (GeneratorConfig::medium(4242), "medium", false),
    }
}

/// A single-net ECO target: a driven, loaded, coupled net near the middle
/// of the design.
fn target_net(eco: &IncrementalSta<'_>) -> String {
    let nets = eco.netlist().nets();
    let busy = |ni: usize| {
        let net = &nets[ni];
        net.driver.is_some()
            && !net.loads.is_empty()
            && !eco.parasitics().nets[ni].couplings.is_empty()
    };
    (nets.len() / 2..nets.len())
        .chain(0..nets.len() / 2)
        .find(|&ni| busy(ni))
        .map(|ni| nets[ni].name.clone())
        .expect("generated designs have coupled nets")
}

fn reroute(net: &str, scale: f64) -> Edit {
    Edit::RerouteNet {
        net: net.to_string(),
        scale,
    }
}

fn bench_single_net_edit(c: &mut Criterion) {
    let (config, label, one_shot) = scale();
    let d: Design = build_design(&config);
    let mut eco = IncrementalSta::new(
        d.netlist.clone(),
        &d.library,
        &d.process,
        d.parasitics.clone(),
    )
    .expect("incremental sta");
    eco.analyze(MODE).expect("warm cache");
    let net = target_net(&eco);

    if one_shot {
        report_speedup(&mut eco, &net, label);
        return;
    }

    let mut group = c.benchmark_group("eco_single_net_edit");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("full_reanalyze", label), |b| {
        b.iter(|| {
            let sta = eco.fresh_sta();
            black_box(sta.analyze(MODE).expect("full").longest_delay)
        })
    });
    // Alternate the reroute scale so every iteration genuinely changes the
    // victim's waveforms instead of replaying a clean cache.
    let mut grow = true;
    group.bench_function(BenchmarkId::new("incremental_reanalyze", label), |b| {
        b.iter(|| {
            let factor = if grow { 1.25 } else { 0.8 };
            grow = !grow;
            eco.apply(&reroute(&net, factor)).expect("apply");
            black_box(eco.analyze(MODE).expect("incremental").longest_delay)
        })
    });
    group.finish();

    report_speedup(&mut eco, &net, label);
}

/// One-shot end-to-end comparison on the identical post-edit design;
/// prints the acceptance ratio.
fn report_speedup(eco: &mut IncrementalSta<'_>, net: &str, label: &str) {
    let started = Instant::now();
    eco.apply(&reroute(net, 1.3)).expect("apply");
    let report = eco.analyze(MODE).expect("incremental");
    let incremental = started.elapsed();
    let stats = eco.last_stats();

    let started = Instant::now();
    let full_report = eco.fresh_sta().analyze(MODE).expect("full");
    let full = started.elapsed();

    assert_eq!(
        report.longest_delay.to_bits(),
        full_report.longest_delay.to_bits(),
        "incremental result diverged from batch"
    );
    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    println!(
        "eco_speedup/{label}: full {:.3} s, incremental {:.3} s \
         (edit `{net}` + rebuild + re-analyze), speedup {speedup:.1}x, \
         re-evaluated {} of {} stages",
        full.as_secs_f64(),
        incremental.as_secs_f64(),
        stats.stages_evaluated,
        eco.graph().stages.len(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_single_net_edit
}
criterion_main!(benches);
