//! Shared harness for the paper-reproduction binaries and benchmarks.
//!
//! Bridges the analyzer and the transient simulator: builds the full
//! physical flow for a circuit, runs the five analyses with timing, and
//! converts a reported critical path into a simulatable [`PathSpec`] with
//! adversarial aggressors — the methodology of the paper's §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::time::Instant;

use xtalk::prelude::*;
use xtalk::sim::align::coordinate_ascent;
use xtalk::sim::path::{simulate_path, AggressorSpec, PathGateSpec, PathSpec};
use xtalk::sta::report::ModeReport;

/// Time offset applied to simulation stimuli (pre-roll so the circuit
/// settles to DC before the launch edge).
pub const SIM_OFFSET: f64 = 1.5e-9;

/// A fully prepared design: netlist + layout + parasitics.
pub struct Design {
    /// The process.
    pub process: Process,
    /// The cell library.
    pub library: Library,
    /// The netlist.
    pub netlist: Netlist,
    /// Extracted parasitics.
    pub parasitics: xtalk::layout::Parasitics,
    /// Total routed wirelength, metres.
    pub wirelength: f64,
    /// Seconds spent in generate/place/route/extract.
    pub prep_seconds: f64,
}

/// Builds the full physical flow for a generator config.
pub fn build_design(config: &GeneratorConfig) -> Design {
    let started = Instant::now();
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist =
        xtalk::netlist::generator::generate(config, &library).expect("generator configs are valid");
    netlist
        .validate(&library)
        .expect("generated netlists validate");
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    Design {
        process,
        library,
        netlist,
        wirelength: routes.total_wirelength(),
        parasitics,
        prep_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Elmore wire delay accumulated along a reported critical path, seconds —
/// the paper's "wire delay" comparison number.
pub fn path_wire_delay(design: &Design, report: &ModeReport) -> f64 {
    let mut total = 0.0;
    for w in report.critical_path.windows(2) {
        let net = w[0].net;
        let next_gate = w[1].gate;
        let next_pin = w[1].pin;
        let np = &design.parasitics.nets[net.index()];
        if let Some(k) = design
            .netlist
            .net(net)
            .loads
            .iter()
            .position(|&(g, p)| g == next_gate && p == next_pin)
        {
            let pin_c = design
                .library
                .cell(&design.netlist.gate(next_gate).cell)
                .and_then(|c| c.input_cap.get(next_pin).copied())
                .unwrap_or(0.0);
            total += np.elmore(k, pin_c);
        }
    }
    total
}

/// Conversion of a reported critical path into a simulatable spec.
pub struct SimSpec {
    /// The path specification (gates, stimulus, aggressors).
    pub spec: PathSpec,
    /// STA delay over the simulated span (input Vdd/2 crossing to endpoint).
    pub sta_delay: f64,
    /// Initial aggressor switching times (absolute, simulation time base).
    pub t0: Vec<f64>,
    /// Per aggressor: `(path step index it couples to, victim rising)` —
    /// used to re-anchor `t0` on the quiet simulation's measured crossings.
    pub anchors: Vec<(usize, bool)>,
}

/// Converts the *combinational suffix* of a critical path (everything after
/// the launching flip-flop, if any) into a [`PathSpec`] with up to
/// `n_aggressors` strongest aggressors.
///
/// Returns `None` when no combinational span remains.
pub fn to_sim_spec(design: &Design, report: &ModeReport, n_aggressors: usize) -> Option<SimSpec> {
    // Keep only the combinational suffix: everything after the last launch
    // step or sequential cell (the clock tree and flip-flop precede it).
    let is_seq_or_launch = |s: &xtalk::sta::PathStep| {
        s.pin == usize::MAX
            || design
                .library
                .cell(&s.cell)
                .map(|c| c.is_sequential())
                .unwrap_or(true)
    };
    let cut = report
        .critical_path
        .iter()
        .rposition(is_seq_or_launch)
        .map(|k| k + 1)
        .unwrap_or(0);
    let steps: Vec<_> = report.critical_path[cut..].to_vec();
    if steps.is_empty() {
        return None;
    }
    let gates: Vec<PathGateSpec> = steps
        .iter()
        .map(|s| PathGateSpec {
            gate: s.gate,
            switching_pin: s.pin,
            side_values: s.side_values.clone(),
        })
        .collect();

    // Stimulus: replicate the STA waveform arriving at the path head. The
    // head input's arrival is (first step arrival - first stage delay); we
    // approximate with a default-slew ramp whose Vdd/2 crossing matches the
    // STA arrival at the head input net.
    let first_cell = design.library.cell(&steps[0].cell)?;
    let first_inverting = first_cell
        .arc_inverting(steps[0].pin, &steps[0].side_values, design.process.vdd)
        .unwrap_or(first_cell.function.is_inverting());
    let in_rising = if first_inverting {
        !steps[0].rising
    } else {
        steps[0].rising
    };
    let head_net = design.netlist.gate(steps[0].gate).inputs[steps[0].pin];
    let _ = head_net;
    let slew = design.process.default_input_slew;
    let (v0, v1) = if in_rising {
        (0.0, design.process.vdd)
    } else {
        (design.process.vdd, 0.0)
    };
    let input_wave = Waveform::ramp(SIM_OFFSET, slew, v0, v1).expect("valid ramp");

    // The STA's arrival at the head input: endpoint arrival minus the path
    // delay of the simulated suffix. We measure the suffix delay directly:
    // the input crossing in the STA time base is the *first* step's arrival
    // minus that step's stage delay — unavailable per-step, so use the span
    // from the launch: endpoint arrival - (arrival before the suffix).
    let skipped = report.critical_path.len() - steps.len();
    let span_start = if skipped > 0 {
        report.critical_path[skipped - 1].arrival
    } else {
        // Path starts at a primary input: its Vdd/2 crossing is slew/2.
        0.5 * slew
    };
    let sta_delay = report.longest_delay - span_start;

    // Aggressors: strongest couplings onto the simulated nets.
    let on_path: HashSet<_> = steps.iter().map(|s| s.net).collect();
    let mut cands: Vec<(f64, AggressorSpec, f64, (usize, bool))> = Vec::new();
    for (step_idx, s) in steps.iter().enumerate() {
        for cc in &design.parasitics.nets[s.net.index()].couplings {
            if on_path.contains(&cc.other) {
                continue;
            }
            cands.push((
                cc.c,
                AggressorSpec {
                    net: cc.other,
                    rising: !s.rising,
                },
                // Fire near the victim's transition, mapped to sim time.
                s.arrival - span_start + SIM_OFFSET,
                (step_idx, s.rising),
            ));
        }
    }
    cands.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut seen = HashSet::new();
    cands.retain(|(_, spec, _, _)| seen.insert(spec.net));
    cands.truncate(n_aggressors);
    let t0 = cands.iter().map(|&(_, _, t, _)| t).collect();
    let anchors = cands.iter().map(|&(_, _, _, a)| a).collect();
    let aggressors = cands.iter().map(|&(_, s, _, _)| s).collect();

    Some(SimSpec {
        spec: PathSpec {
            gates,
            input_wave,
            aggressors,
        },
        sta_delay,
        t0,
        anchors,
    })
}

/// Simulated path delays: quiet and adversarially aligned.
pub struct SimResult {
    /// Delay with all aggressors quiet, seconds.
    pub quiet: f64,
    /// Delay at the worst aggressor alignment found, seconds.
    pub aligned: f64,
    /// Transient simulations performed.
    pub sims: usize,
}

/// Simulates the path quietly and with coordinate-ascent aggressor
/// alignment (`rounds` passes).
pub fn simulate_spec(design: &Design, spec: &SimSpec, rounds: usize) -> Option<SimResult> {
    let mut quiet_spec = spec.spec.clone();
    quiet_spec.aggressors.clear();
    let quiet_run = simulate_path(
        &design.netlist,
        &design.library,
        &design.process,
        &design.parasitics,
        &quiet_spec,
        &[],
        None,
    )
    .ok()?;
    let quiet = quiet_run.delay;

    // Anchor each aggressor's initial switching time on the *simulated*
    // victim crossing at its coupling site (the STA arrival can drift by
    // integrator differences, and the worst-case window is only a few tens
    // of picoseconds wide).
    let th = design.process.delay_threshold();
    let t0: Vec<f64> = spec
        .anchors
        .iter()
        .zip(&spec.t0)
        .map(|(&(step_idx, rising), &fallback)| {
            quiet_run
                .net_nodes
                .get(step_idx)
                .and_then(|&node| quiet_run.transient.last_crossing(node, th, rising))
                .unwrap_or(fallback)
        })
        .collect();

    let mut sims = 1usize;
    let oracle = |times: &[f64]| -> Option<f64> {
        sims += 1;
        simulate_path(
            &design.netlist,
            &design.library,
            &design.process,
            &design.parasitics,
            &spec.spec,
            times,
            None,
        )
        .ok()
        .map(|r| r.delay)
    };
    let (aligned, _) = coordinate_ascent(oracle, t0, 0.12e-9, rounds.max(2));
    Some(SimResult {
        quiet,
        aligned: aligned.max(quiet),
        sims,
    })
}

/// Runs one analysis mode with wall-clock timing.
pub fn run_mode(design: &Design, mode: AnalysisMode) -> ModeReport {
    let sta = Sta::new(
        &design.netlist,
        &design.library,
        &design.process,
        &design.parasitics,
    )
    .expect("timing graph builds");
    sta.analyze(mode).expect("analysis succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut cfg = GeneratorConfig::small(7777);
        cfg.comb_gates = 80;
        cfg.depth = 6;
        build_design(&cfg)
    }

    #[test]
    fn build_design_produces_coupled_layout() {
        let d = design();
        assert!(d.parasitics.coupling_count() > 0);
        assert!(d.wirelength > 0.0);
        assert!(d.prep_seconds >= 0.0);
    }

    #[test]
    fn sim_spec_roundtrip() {
        let d = design();
        let report = run_mode(&d, AnalysisMode::OneStep);
        let spec = to_sim_spec(&d, &report, 3).expect("combinational suffix exists");
        assert!(!spec.spec.gates.is_empty());
        assert!(spec.sta_delay > 0.0);
        assert_eq!(spec.t0.len(), spec.spec.aggressors.len());
    }

    #[test]
    fn wire_delay_small_fraction_of_path() {
        let d = design();
        let report = run_mode(&d, AnalysisMode::BestCase);
        let wd = path_wire_delay(&d, &report);
        assert!(wd >= 0.0);
        assert!(
            wd < 0.5 * report.longest_delay,
            "wire {wd} vs path {}",
            report.longest_delay
        );
    }

    #[test]
    fn simulate_spec_bounds() {
        let d = design();
        let report = run_mode(&d, AnalysisMode::Iterative { esperance: false });
        let worst = run_mode(&d, AnalysisMode::WorstCase);
        let spec = to_sim_spec(&d, &report, 2).expect("spec");
        let sim = simulate_spec(&d, &spec, 1).expect("simulates");
        assert!(sim.aligned >= sim.quiet);
        // Safety: simulation respects the worst-case bound over the span.
        let span_start = report.longest_delay - spec.sta_delay;
        let worst_span = worst.longest_delay - span_start;
        assert!(
            sim.aligned <= worst_span * 1.05,
            "sim {} vs worst bound {}",
            sim.aligned,
            worst_span
        );
    }
}
