//! Reproduces the paper's Fig. 1 scenario and the §2 model claims.
//!
//! Fig. 1 illustrates an aggressor/victim pair coupled by `Cc` with ground
//! capacitance on either side. This binary regenerates the quantitative
//! content behind it:
//!
//! 1. the victim's delay under the four §6 coupling treatments,
//! 2. "SPICE simulations show that maximum delay is achieved when the
//!    aggressor voltage has a short ramp time" — an aggressor slope sweep,
//! 3. worst-case alignment — an aggressor timing sweep,
//! 4. the safe-cover check: the paper's three-phase model bounds every
//!    simulated (slope, alignment) combination.
//!
//! ```text
//! cargo run --release -p xtalk-bench --bin fig1_coupling_demo
//! ```

use xtalk::prelude::*;
use xtalk::sim::circuit::{Circuit, Drive, NodeRef};
use xtalk::sim::transient::{simulate, SimOptions};
use xtalk::wave::stage::{Coupling, Load, StageSolver};

const CGROUND: f64 = 35e-15;
const CCOUPLE: f64 = 14e-15;
const T_LAUNCH: f64 = 1.5e-9;
const IN_SLEW: f64 = 0.25e-9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let th = process.delay_threshold();

    // --- Part 1: the four analytic treatments of Cc on the victim stage.
    let inv = library.cell("INVX2").expect("INVX2 in library");
    let input = Waveform::ramp(0.0, IN_SLEW, process.vdd, 0.0)?;
    let solver = StageSolver::new(&process);
    let model = |mode: CouplingMode| -> f64 {
        let load = Load {
            cground: CGROUND,
            couplings: vec![Coupling::new(CCOUPLE, mode)],
        };
        solver
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("stage solves")
            .delay_from(&input, th)
            .expect("crossing")
    };
    let ignored = {
        // "Best case": Cc grounded at face value.
        model(CouplingMode::Grounded)
    };
    let doubled = model(CouplingMode::Doubled);
    let active = model(CouplingMode::Active);
    println!(
        "Fig. 1 victim stage (Cg = {:.0} fF, Cc = {:.0} fF):",
        CGROUND * 1e15,
        CCOUPLE * 1e15
    );
    println!("  model: grounded Cc        {:>8.1} ps", ignored * 1e12);
    println!("  model: doubled Cc         {:>8.1} ps", doubled * 1e12);
    println!("  model: active (paper)     {:>8.1} ps", active * 1e12);
    println!();

    // --- Part 2: aggressor slope sweep at near-worst alignment.
    let quiet = sim_delay(&process, &library, None)?;
    println!("aggressor SLOPE sweep (alignment at victim mid-rise):");
    println!("{:>14} {:>12}", "ramp [ps]", "delay [ps]");
    let align = quiet + T_LAUNCH + IN_SLEW * 0.5 - 0.03e-9;
    let mut slope_worst: f64 = 0.0;
    for ramp_ps in [1.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
        let d = sim_delay(&process, &library, Some((align, ramp_ps * 1e-12)))?;
        slope_worst = slope_worst.max(d);
        println!("{:>14.0} {:>12.1}", ramp_ps, d * 1e12);
    }
    println!("=> the steepest aggressor is (near-)worst, as §2 observes.");
    println!();

    // --- Part 3: alignment sweep with the steep aggressor.
    println!("aggressor ALIGNMENT sweep (1 ps ramp):");
    println!("{:>14} {:>12}", "t_agg [ps]", "delay [ps]");
    let mut align_worst: f64 = 0.0;
    for k in 0..=14 {
        let t = T_LAUNCH + k as f64 * 0.06e-9;
        let d = sim_delay(&process, &library, Some((t, 1e-12)))?;
        align_worst = align_worst.max(d);
        let bar = "#".repeat(((d - quiet).max(0.0) * 1e12 / 8.0) as usize);
        println!("{:>14.0} {:>12.1}  {bar}", (t - T_LAUNCH) * 1e12, d * 1e12);
    }
    println!();

    // --- Part 4: what each model predicts for the coupling-induced *extra*
    // delay (the quantity the three-phase model is built to bound; base
    // delays of the two integrators differ by a few percent).
    let sim_worst = slope_worst.max(align_worst);
    let sim_extra = sim_worst - quiet;
    let model_extra = active - ignored;
    let doubled_extra = doubled - ignored;
    println!("simulated quiet delay        : {:>8.1} ps", quiet * 1e12);
    println!(
        "simulated worst (all sweeps) : {:>8.1} ps",
        sim_worst * 1e12
    );
    println!();
    println!("coupling-induced EXTRA delay:");
    println!(
        "  simulation (worst case)    : {:>8.1} ps",
        sim_extra * 1e12
    );
    println!(
        "  active model (paper)       : {:>8.1} ps  ({:>5.1}% of simulated worst)",
        model_extra * 1e12,
        model_extra / sim_extra * 100.0
    );
    println!(
        "  doubled-Cc (classical)     : {:>8.1} ps  ({:>5.1}% of simulated worst)",
        doubled_extra * 1e12,
        doubled_extra / sim_extra * 100.0
    );
    if doubled_extra < sim_extra {
        println!(
            "=> doubled-Cc UNDERESTIMATES the true worst-case push by {:.1} ps — \
             the paper's core argument against the passive model.",
            (sim_extra - doubled_extra) * 1e12
        );
    }
    if model_extra >= 0.9 * sim_extra {
        println!(
            "=> the three-phase model captures the active nature of coupling \
             (within 10% of the adversarial simulation; the residual comes \
             from linear-region recharge at very late alignments, which the \
             idealized instant-drop model smooths over)."
        );
    } else {
        println!("=> WARNING: model extra far below simulation — calibration off!");
    }
    Ok(())
}

/// Transient delay of the victim inverter; `aggressor` = (switch time, ramp
/// duration), `None` = quiet aggressor.
fn sim_delay(
    process: &Process,
    library: &Library,
    aggressor: Option<(f64, f64)>,
) -> Result<f64, Box<dyn std::error::Error>> {
    let inv = library.cell("INVX2").expect("INVX2 in library");
    let th = process.delay_threshold();
    let mut c = Circuit::new();
    let inp = c.add_node(
        "in",
        Drive::Pwl(Waveform::ramp(T_LAUNCH, IN_SLEW, process.vdd, 0.0)?),
        0.0,
        process.vdd,
    );
    let out = c.add_node("out", Drive::Free, CGROUND, 0.0);
    let agg = match aggressor {
        Some((t, ramp)) => c.add_node(
            "agg",
            Drive::Pwl(Waveform::ramp(t, ramp.max(1e-15), process.vdd, 0.0)?),
            0.0,
            process.vdd,
        ),
        None => c.add_node("agg", Drive::Const(process.vdd), 0.0, process.vdd),
    };
    c.add_mutual(NodeRef::Node(out), NodeRef::Node(agg), CCOUPLE);
    c.instantiate_cell(
        inv,
        &[NodeRef::Node(inp)],
        NodeRef::Node(out),
        None,
        library,
        process,
        "victim",
    );
    let tr = simulate(
        &c,
        process,
        &SimOptions {
            t_stop: T_LAUNCH + 6e-9,
            ..SimOptions::default()
        },
    )?;
    let t_out = tr.last_crossing(out, th, true).ok_or("victim never rose")?;
    Ok(t_out - (T_LAUNCH + IN_SLEW * 0.5))
}
