//! Reproduces the paper's Tables 1–3 (and the §6 comparison claims).
//!
//! For each circuit the five analyses are run and reported as in the paper
//! — longest-path delay plus runtime — and the longest path is validated by
//! transistor-level transient simulation with adversarially aligned
//! aggressor sources ("Simulation" row).
//!
//! ```text
//! cargo run --release -p xtalk-bench --bin repro_tables -- [s35932|s38417|s38584|all|quick] [--no-sim]
//! ```
//!
//! `quick` uses 1/10-scale stand-ins of the three circuits for a fast smoke
//! run; the default is `quick`. Pass explicit circuit names (or `all`) for
//! the full-size reproduction used in `EXPERIMENTS.md`.

use std::time::Instant;

use xtalk::prelude::*;
use xtalk_bench::{build_design, path_wire_delay, run_mode, simulate_spec, to_sim_spec, Design};

fn scaled(config: &GeneratorConfig, factor: usize) -> GeneratorConfig {
    let mut c = config.clone();
    c.name = format!("{}_q{}", c.name, factor);
    c.flip_flops = (c.flip_flops / factor).max(8);
    c.comb_gates = (c.comb_gates / factor).max(50);
    c.primary_outputs = (c.primary_outputs / factor).max(4);
    c
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_sim = args.iter().any(|a| a == "--no-sim");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let names = if names.is_empty() {
        vec!["quick"]
    } else {
        names
    };

    let mut configs: Vec<(String, GeneratorConfig)> = Vec::new();
    for name in names {
        match name {
            "s35932" => configs.push(("Table 1".into(), GeneratorConfig::s35932_like())),
            "s38417" => configs.push(("Table 2".into(), GeneratorConfig::s38417_like())),
            "s38584" => configs.push(("Table 3".into(), GeneratorConfig::s38584_like())),
            "all" => {
                configs.push(("Table 1".into(), GeneratorConfig::s35932_like()));
                configs.push(("Table 2".into(), GeneratorConfig::s38417_like()));
                configs.push(("Table 3".into(), GeneratorConfig::s38584_like()));
            }
            "quick" => {
                configs.push((
                    "Table 1 (1/10)".into(),
                    scaled(&GeneratorConfig::s35932_like(), 10),
                ));
                configs.push((
                    "Table 2 (1/10)".into(),
                    scaled(&GeneratorConfig::s38417_like(), 10),
                ));
                configs.push((
                    "Table 3 (1/10)".into(),
                    scaled(&GeneratorConfig::s38584_like(), 10),
                ));
            }
            other => {
                eprintln!("unknown circuit `{other}` (use s35932|s38417|s38584|all|quick)");
                std::process::exit(2);
            }
        }
    }

    for (title, config) in configs {
        run_table(&title, &config, no_sim);
    }
}

fn run_table(title: &str, config: &GeneratorConfig, no_sim: bool) {
    eprintln!(
        ">> building {} ({} cells)...",
        config.name,
        config.total_cells()
    );
    let design = build_design(config);
    println!(
        "{title}: {} ({} cells, {} FFs, {} coupling caps, {:.1} mm wire; prep {:.1}s)",
        config.name,
        design.netlist.gate_count(),
        design.netlist.flip_flop_count(),
        design.parasitics.coupling_count() / 2,
        design.wirelength * 1e3,
        design.prep_seconds,
    );
    println!(
        "{:<24} {:>12} {:>8} {:>10}",
        "Analysis", "Delay [ns]", "Passes", "CPU [s]"
    );

    let modes = [
        AnalysisMode::BestCase,
        AnalysisMode::StaticDoubled,
        AnalysisMode::WorstCase,
        AnalysisMode::OneStep,
        AnalysisMode::Iterative { esperance: false },
        AnalysisMode::Iterative { esperance: true },
    ];
    let mut reports = Vec::new();
    for mode in modes {
        eprintln!(">>   {mode}...");
        let r = run_mode(&design, mode);
        println!(
            "{:<24} {:>12.3} {:>8} {:>10.2}",
            mode.to_string(),
            r.longest_delay * 1e9,
            r.passes,
            r.runtime.as_secs_f64()
        );
        reports.push(r);
    }

    // The paper's §6 comparison numbers.
    let best = reports[0].longest_delay;
    let iter = reports[4].longest_delay;
    let wire = path_wire_delay(&design, &reports[4]);
    println!(
        "wire delay on critical path: {:.2} ns;  coupling impact (iterative - best): {:.2} ns",
        wire * 1e9,
        (iter - best) * 1e9
    );

    if !no_sim {
        simulate_row(&design, &reports);
    }
    println!();
}

fn simulate_row(design: &Design, reports: &[xtalk::sta::ModeReport]) {
    // Validate the iterative analysis's longest path by simulation, as the
    // paper does ("piecewise linear sources ... iteratively adjusted").
    let iterative = &reports[4];
    let Some(spec) = to_sim_spec(design, iterative, 6) else {
        println!("Simulation: no combinational span on the critical path");
        return;
    };
    let started = Instant::now();
    eprintln!(
        ">>   simulating the critical path ({} gates, {} aggressors)...",
        spec.spec.gates.len(),
        spec.spec.aggressors.len()
    );
    match simulate_spec(design, &spec, 2) {
        Some(sim) => {
            let span_start = iterative.longest_delay - spec.sta_delay;
            println!(
                "{:<24} {:>12.3} {:>8} {:>10.2}   (quiet {:.3} ns, {} transients)",
                "Simulation (aligned)",
                (sim.aligned + span_start) * 1e9,
                "-",
                started.elapsed().as_secs_f64(),
                (sim.quiet + span_start) * 1e9,
                sim.sims
            );
            let safe = reports[2].longest_delay; // worst case
            let covered = sim.aligned + span_start <= safe * 1.02;
            println!(
                "bound check: simulation {} the worst-case bound ({:.3} ns)",
                if covered { "respects" } else { "VIOLATES" },
                safe * 1e9
            );
        }
        None => println!("Simulation: transient failed to converge"),
    }
}
