//! Command-line driver logic.
//!
//! The `xtalk` binary is a thin wrapper around [`run`]; keeping the logic
//! here makes it unit-testable. Supported commands:
//!
//! ```text
//! xtalk report <netlist.(bench|v)> [--spef FILE] [--mode MODE] [--period NS] [--glitch] [--threads N]
//! xtalk flow <netlist.(bench|v)> --out DIR
//! xtalk convert <input.(bench|v)> <output.(bench|v)>
//! xtalk generate --preset NAME [--seed N] <output.(bench|v)>
//! xtalk liberty <output.lib> [--cells A,B,...]
//! xtalk sdf <netlist.(bench|v)> <output.sdf> [--mode MODE] [--spef FILE] [--threads N]
//! xtalk eco <netlist.(bench|v)> <edits.eco> [--mode MODE] [--spef FILE] [--check] [--threads N]
//! xtalk serve --socket PATH [--store FILE] [--threads N]
//! xtalk client --socket PATH <load|analyze|eco|what-if|query|stats|shutdown> ...
//! ```
//!
//! Modes: `best`, `doubled`, `worst`, `onestep`, `iterative` (default),
//! `esperance`, `min`.
//!
//! `--threads N` sizes the wavefront scheduler's worker pool (`1` forces
//! the serial engine); it overrides the `XTALK_THREADS` environment
//! variable. `XTALK_CACHE=0` disables the stage-solve cache;
//! `--cache-admission=all|cost` (or `XTALK_CACHE_ADMISSION`) picks the
//! cache admission policy (default `cost`: only solves whose measured
//! Newton-iteration cost clears the adaptive floor are inserted).
//!
//! Recoverable analysis faults degrade to conservative bounds and are
//! listed as diagnostics; [`run_with_code`] keys the exit code to the worst
//! severity (0 clean, 2 warnings, 3 substituted bounds). `--strict` (or
//! `XTALK_STRICT=1`) fails fast on the first fault instead.
//!
//! `eco` replays an edit script (one edit per line: `resize <gate> <cell>`,
//! `reroute <net> <scale>`, `buffer <net> [cell]`, `uncouple <a> <b>`;
//! `#` comments) through the incremental analyzer, re-timing the dirty cone
//! after each edit. `--check` verifies the result against a fresh batch
//! analysis.

use std::fmt::Write as _;
use std::path::Path;

use xtalk_netlist::{GeneratorConfig, Netlist};
use xtalk_sta::{
    AnalysisMode, CacheAdmission, ExecConfig, IncrementalSta, ModeReport, Severity, Sta,
};
use xtalk_tech::{Library, Process};

/// A CLI failure, printed to stderr by the binary.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        err(format!("i/o error: {e}"))
    }
}

/// Usage text.
pub const USAGE: &str = "\
xtalk — crosstalk-aware static timing analysis (DATE 2000 reproduction)

USAGE:
  xtalk report <netlist.(bench|v)> [--spef FILE] [--mode MODE] [--period NS] [--glitch] [--bits] [--threads N] [--strict] [--signoff]
  xtalk flow <netlist.(bench|v)> --out DIR
  xtalk convert <input.(bench|v)> <output.(bench|v)>
  xtalk generate --preset small|medium|s35932|s38417|s38584 [--seed N] <output.(bench|v)>
  xtalk liberty <output.lib> [--cells A,B,...]
  xtalk sdf <netlist.(bench|v)> <output.sdf> [--mode MODE] [--spef FILE] [--threads N] [--strict] [--signoff]
  xtalk eco <netlist.(bench|v)> <edits.eco> [--mode MODE] [--spef FILE] [--check] [--threads N] [--strict] [--signoff]
  xtalk serve --socket PATH [--store FILE] [--threads N] [--cache-admission=all|cost] [--strict] [--signoff]
  xtalk client --socket PATH <action>

CLIENT ACTIONS (against a running `xtalk serve`):
  load <design> <netlist.(bench|v)> [--spef FILE]
  analyze <design> [--mode MODE]
  eco <design> <edits.eco>
  what-if <design> <edits.eco> [--mode MODE]
  query <design> <net> [--mode MODE] [--period NS]
  stats | shutdown

MODES: best | doubled | worst | onestep | iterative (default) | esperance | min

PARALLELISM: --threads N sizes the wavefront worker pool (1 = serial engine);
overrides XTALK_THREADS. XTALK_CACHE=0 disables the stage-solve cache.

CACHING: --cache-admission=all|cost (or XTALK_CACHE_ADMISSION) picks the
stage-solve cache admission policy. The default `cost` caches only solves
whose measured Newton-iteration cost clears an adaptive floor, keeping the
cache out of the way of cheap shallow stages; `all` caches every solve.
Either way, results are bit-identical — admission changes what is reused,
never what is computed.

FAST PATH: stage solves whose query falls inside the characterized
macromodel grid are answered by table interpolation with a certified,
conservative error bound (DESIGN.md D12). --signoff (or XTALK_SIGNOFF=1)
disables the tables so every solve runs the full transistor-level Newton
iteration, bit-identical to the pre-macromodel engine.

ROBUSTNESS: recoverable solver faults degrade the affected node to a
conservative bound and are listed as diagnostics; the exit code is 0 for a
clean run, 2 when warnings were contained, 3 when conservative bounds were
substituted. --strict (or XTALK_STRICT=1) fails fast on the first fault
instead (exit 1).

ECO EDITS (one per line, `#` comments):
  resize <gate> <cell> | reroute <net> <scale> | buffer <net> [cell] | uncouple <a> <b>
";

/// A finished CLI run: the stdout text plus the process exit code keyed to
/// the worst contained-fault severity (see `USAGE`'s ROBUSTNESS note).
#[derive(Debug)]
pub struct CliOutcome {
    /// Text for stdout.
    pub text: String,
    /// Process exit code: 0 clean, 2 warnings contained, 3 bounds
    /// substituted.
    pub exit_code: i32,
}

/// Exit code for the worst severity of a completed (degraded) run.
fn exit_code_for(severity: Option<Severity>) -> i32 {
    match severity {
        None | Some(Severity::Info) => 0,
        Some(Severity::Warning) => 2,
        Some(Severity::Error) => 3,
    }
}

/// Runs the CLI on `args` (without the program name); returns the text to
/// print on stdout.
///
/// # Errors
///
/// [`CliError`] with a user-facing message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_code(args).map(|outcome| outcome.text)
}

/// Runs the CLI on `args`, also reporting the exit code a completed run
/// should terminate with (degraded analyses complete with a conservative
/// answer but a nonzero code). Fatal errors are still [`CliError`]s.
///
/// # Errors
///
/// [`CliError`] with a user-facing message.
pub fn run_with_code(args: &[String]) -> Result<CliOutcome, CliError> {
    let (text, severity) = match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..])?,
        Some("flow") => (cmd_flow(&args[1..])?, None),
        Some("convert") => (cmd_convert(&args[1..])?, None),
        Some("generate") => (cmd_generate(&args[1..])?, None),
        Some("liberty") => (cmd_liberty(&args[1..])?, None),
        Some("sdf") => (cmd_sdf(&args[1..])?, None),
        Some("eco") => cmd_eco(&args[1..])?,
        Some("serve") => (cmd_serve(&args[1..])?, None),
        Some("client") => cmd_client(&args[1..])?,
        Some("help") | None => (USAGE.to_string(), None),
        Some(other) => return Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    Ok(CliOutcome {
        text,
        exit_code: exit_code_for(severity),
    })
}

fn parse_mode(name: &str) -> Result<AnalysisMode, CliError> {
    Ok(match name {
        "best" => AnalysisMode::BestCase,
        "doubled" => AnalysisMode::StaticDoubled,
        "worst" => AnalysisMode::WorstCase,
        "onestep" => AnalysisMode::OneStep,
        "iterative" => AnalysisMode::Iterative { esperance: false },
        "esperance" => AnalysisMode::Iterative { esperance: true },
        "min" => AnalysisMode::MinDelay,
        other => return Err(err(format!("unknown mode `{other}`"))),
    })
}

fn load_netlist(path: &str, library: &Library) -> Result<Netlist, CliError> {
    let text = std::fs::read_to_string(path)?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "bench" => {
            xtalk_netlist::bench::parse(&text, library).map_err(|e| err(format!("{path}: {e}")))
        }
        "v" => {
            xtalk_netlist::verilog::parse(&text, library).map_err(|e| err(format!("{path}: {e}")))
        }
        other => Err(err(format!(
            "unsupported netlist extension `.{other}` (use .bench or .v)"
        ))),
    }
}

fn save_netlist(path: &str, netlist: &Netlist, library: &Library) -> Result<(), CliError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let text = match ext {
        "bench" => xtalk_netlist::bench::write(netlist, library)
            .map_err(|e| err(format!("{path}: {e}")))?,
        "v" => xtalk_netlist::verilog::write(netlist, library)
            .map_err(|e| err(format!("{path}: {e}")))?,
        other => {
            return Err(err(format!(
                "unsupported output extension `.{other}` (use .bench or .v)"
            )))
        }
    };
    std::fs::write(path, text)?;
    Ok(())
}

/// Simple flag scanner: returns (positional args, flag lookup).
fn split_flags(args: &[String]) -> (Vec<&str>, Vec<(&str, Option<&str>)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            // `--flag=value` and `--flag value` are equivalent.
            if let Some((n, v)) = name.split_once('=') {
                flags.push((n, Some(v)));
            } else {
                let value = args
                    .get(i + 1)
                    .map(String::as_str)
                    .filter(|v| !v.starts_with("--"));
                if value.is_some() {
                    i += 1;
                }
                flags.push((name, value));
            }
        } else {
            pos.push(a);
        }
        i += 1;
    }
    (pos, flags)
}

fn flag<'a>(flags: &[(&'a str, Option<&'a str>)], name: &str) -> Option<Option<&'a str>> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Builds the execution config from the environment, letting `--threads`
/// override `XTALK_THREADS` and `--strict` force fail-fast mode.
fn exec_config(flags: &[(&str, Option<&str>)]) -> Result<ExecConfig, CliError> {
    let mut config = ExecConfig::from_env().map_err(|e| err(e.to_string()))?;
    if let Some(threads) = flag(flags, "threads") {
        let threads: usize = threads
            .and_then(|t| t.parse().ok())
            .filter(|&t| t >= 1)
            .ok_or_else(|| err("--threads expects an integer >= 1"))?;
        config = config.with_threads(threads);
    }
    if let Some(admission) = flag(flags, "cache-admission") {
        let admission = match admission {
            Some("all") => CacheAdmission::All,
            Some("cost") => CacheAdmission::Cost,
            _ => return Err(err("--cache-admission expects `all` or `cost`")),
        };
        config = config.with_cache_admission(admission);
    }
    if flag(flags, "strict").is_some() {
        config = config.with_strict(true);
    }
    if flag(flags, "signoff").is_some() {
        config = config.with_signoff(true);
    }
    Ok(config)
}

/// Test hook, compiled only in fault-injection builds: `--inject
/// CLASS:SEED:DENOM` installs a deterministic fault plan on the analyzer so
/// the degrade-don't-die path can be driven end to end from the CLI.
#[cfg(feature = "fault-injection")]
fn fault_plan_from_flags(
    flags: &[(&str, Option<&str>)],
) -> Result<Option<xtalk_sta::FaultPlan>, CliError> {
    let Some(spec) = flag(flags, "inject").flatten() else {
        return Ok(None);
    };
    let parts: Vec<&str> = spec.split(':').collect();
    let [class, seed, denom] = parts.as_slice() else {
        return Err(err("--inject expects CLASS:SEED:DENOM"));
    };
    let fault = match *class {
        "nan-load" => xtalk_sta::Fault::NanLoad,
        "truncated-table" => xtalk_sta::Fault::TruncatedTable,
        "divergent-stage" => xtalk_sta::Fault::DivergentStage,
        "mid-job-panic" => xtalk_sta::Fault::MidJobPanic,
        "poisoned-cache" => xtalk_sta::Fault::PoisonedCache,
        other => return Err(err(format!("unknown fault class `{other}`"))),
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| err("--inject seed must be an integer"))?;
    let denom: u64 = denom
        .parse()
        .map_err(|_| err("--inject denom must be an integer"))?;
    Ok(Some(xtalk_sta::FaultPlan::new(fault, seed, denom)))
}

/// The diagnostics section of a degraded run (empty text for a clean one,
/// keeping clean output byte-identical to earlier releases).
fn diagnostics_block(report: &ModeReport) -> String {
    let mut out = String::new();
    if report.degraded() {
        let _ = writeln!(
            out,
            "diagnostics: {} fault(s) contained, worst severity {}",
            report.diagnostics.len(),
            report.worst_severity().unwrap_or(Severity::Info)
        );
        for d in &report.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
    }
    out
}

/// One-line solver-work summary: logical calls, Newton integrations
/// actually run (with their total iteration count), and reuse-layer hits
/// (warm = the per-stage memo subset).
fn solver_summary(report: &ModeReport) -> String {
    let mut line = format!(
        "solver: {} calls, {} newton solves, {} newton iters",
        report.stage_solves, report.newton_solves, report.newton_iters
    );
    if report.cache_hits > 0 {
        let ratio = 100.0 * report.cache_hits as f64 / report.stage_solves.max(1) as f64;
        let _ = write!(
            line,
            ", {} cache hits ({ratio:.0}%, {} warm)",
            report.cache_hits, report.warm_hits
        );
    }
    if report.table_hits > 0 {
        let _ = write!(
            line,
            ", {} table hits ({} fallbacks, residual <= {:.1} ps)",
            report.table_hits,
            report.table_fallbacks,
            report.table_residual * 1e12
        );
    }
    line
}

struct LoadedDesign {
    process: Process,
    library: Library,
    netlist: Netlist,
    parasitics: xtalk_layout::Parasitics,
}

fn load_design(netlist_path: &str, spef: Option<&str>) -> Result<LoadedDesign, CliError> {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = load_netlist(netlist_path, &library)?;
    netlist
        .validate(&library)
        .map_err(|e| err(format!("{netlist_path}: {e}")))?;
    let parasitics = match spef {
        Some(spef_path) => {
            let text = std::fs::read_to_string(spef_path)?;
            // SPEF carries no per-sink resistances; recover them from a
            // fresh routing of the same netlist.
            let mut para = xtalk_layout::spef::parse(&text, &netlist)
                .map_err(|e| err(format!("{spef_path}: {e}")))?;
            let placement = xtalk_layout::place::place(&netlist, &library, &process);
            let routes = xtalk_layout::route::route(&netlist, &placement, &process);
            let routed = xtalk_layout::extract::extract(&netlist, &routes, &process);
            for (a, b) in para.nets.iter_mut().zip(&routed.nets) {
                a.sinks = b.sinks.clone();
            }
            para
        }
        None => {
            let placement = xtalk_layout::place::place(&netlist, &library, &process);
            let routes = xtalk_layout::route::route(&netlist, &placement, &process);
            xtalk_layout::extract::extract(&netlist, &routes, &process)
        }
    };
    Ok(LoadedDesign {
        process,
        library,
        netlist,
        parasitics,
    })
}

fn cmd_report(args: &[String]) -> Result<(String, Option<Severity>), CliError> {
    let (pos, flags) = split_flags(args);
    let [netlist_path] = pos.as_slice() else {
        return Err(err(format!("report needs one netlist file\n\n{USAGE}")));
    };
    let mode = parse_mode(flag(&flags, "mode").flatten().unwrap_or("iterative"))?;
    let config = exec_config(&flags)?;
    let d = load_design(netlist_path, flag(&flags, "spef").flatten())?;
    let sta = Sta::with_config(&d.netlist, &d.library, &d.process, &d.parasitics, config)
        .map_err(|e| err(e.to_string()))?;
    #[cfg(feature = "fault-injection")]
    if let Some(plan) = fault_plan_from_flags(&flags)? {
        sta.set_fault_plan(Some(plan));
    }
    let report = sta.analyze(mode).map_err(|e| err(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} gates, {} nets, {} coupling caps",
        d.netlist.name,
        d.netlist.gate_count(),
        d.netlist.net_count(),
        d.parasitics.coupling_count() / 2
    );
    let _ = writeln!(
        out,
        "{mode}: {} path delay {:.3} ns ({} passes, {:.2} s)",
        if mode == AnalysisMode::MinDelay {
            "shortest"
        } else {
            "longest"
        },
        report.longest_delay * 1e9,
        report.passes,
        report.runtime.as_secs_f64()
    );
    let _ = writeln!(out, "{}", solver_summary(&report));
    let _ = write!(out, "{}", xtalk_sta::report::solver_table(&report));
    if flag(&flags, "bits").is_some() {
        // Bit-exact transport of the delay for cross-process identity
        // checks (decimal ns rounds; the IEEE-754 bits do not).
        let _ = writeln!(out, "delay bits: {:016x}", report.longest_delay.to_bits());
    }
    let _ = write!(out, "{}", diagnostics_block(&report));
    let _ = writeln!(out, "critical path:");
    for step in &report.critical_path {
        let _ = writeln!(
            out,
            "  {:>9.3} ns  {:<10} {:<12} -> {} ({})",
            step.arrival * 1e9,
            step.cell,
            d.netlist.gate(step.gate).name,
            d.netlist.net(step.net).name,
            if step.rising { "rise" } else { "fall" }
        );
    }
    if let Some(period) = flag(&flags, "period").flatten() {
        let period: f64 = period
            .parse::<f64>()
            .map_err(|_| err("--period expects a number (ns)"))?
            * 1e-9;
        let _ = writeln!(out);
        let _ = write!(
            out,
            "{}",
            xtalk_sta::report::slack_table(&d.netlist, &report, period, 10)
        );
    }
    if flag(&flags, "glitch").is_some() {
        let g = xtalk_sta::glitch_report(
            &d.netlist,
            &d.library,
            &d.process,
            &d.parasitics,
            Some(&report),
            0.3 * d.process.vdd,
        );
        let _ = writeln!(out);
        let _ = write!(out, "{}", g.to_table(&d.netlist, 10));
    }
    Ok((out, report.worst_severity()))
}

fn cmd_flow(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = split_flags(args);
    let [netlist_path] = pos.as_slice() else {
        return Err(err(format!("flow needs one netlist file\n\n{USAGE}")));
    };
    let out_dir = flag(&flags, "out")
        .flatten()
        .ok_or_else(|| err("flow requires --out DIR"))?;
    std::fs::create_dir_all(out_dir)?;
    let d = load_design(netlist_path, None)?;
    let base = Path::new(out_dir).join(&d.netlist.name);
    let verilog =
        xtalk_netlist::verilog::write(&d.netlist, &d.library).map_err(|e| err(e.to_string()))?;
    let spef = xtalk_layout::spef::write(&d.netlist, &d.parasitics);
    let v_path = base.with_extension("v");
    let spef_path = base.with_extension("spef");
    std::fs::write(&v_path, verilog)?;
    std::fs::write(&spef_path, spef)?;
    Ok(format!(
        "wrote {} and {} ({} coupling caps)\n",
        v_path.display(),
        spef_path.display(),
        d.parasitics.coupling_count() / 2
    ))
}

fn cmd_convert(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_flags(args);
    let [input, output] = pos.as_slice() else {
        return Err(err(format!(
            "convert needs input and output files\n\n{USAGE}"
        )));
    };
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist = load_netlist(input, &library)?;
    save_netlist(output, &netlist, &library)?;
    Ok(format!(
        "converted {input} -> {output} ({} gates)\n",
        netlist.gate_count()
    ))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = split_flags(args);
    let [output] = pos.as_slice() else {
        return Err(err(format!("generate needs one output file\n\n{USAGE}")));
    };
    let seed: u64 = flag(&flags, "seed")
        .flatten()
        .map(|s| s.parse().map_err(|_| err("--seed expects an integer")))
        .transpose()?
        .unwrap_or(1);
    let preset = flag(&flags, "preset").flatten().unwrap_or("small");
    let config = match preset {
        "small" => GeneratorConfig::small(seed),
        "medium" => GeneratorConfig::medium(seed),
        "s35932" => GeneratorConfig::s35932_like(),
        "s38417" => GeneratorConfig::s38417_like(),
        "s38584" => GeneratorConfig::s38584_like(),
        other => return Err(err(format!("unknown preset `{other}`"))),
    };
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let netlist =
        xtalk_netlist::generator::generate(&config, &library).map_err(|e| err(e.to_string()))?;
    save_netlist(output, &netlist, &library)?;
    Ok(format!(
        "generated `{}`: {} gates, {} flip-flops -> {output}\n",
        netlist.name,
        netlist.gate_count(),
        netlist.flip_flop_count()
    ))
}

fn cmd_liberty(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = split_flags(args);
    let [output] = pos.as_slice() else {
        return Err(err(format!("liberty needs one output file\n\n{USAGE}")));
    };
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let wanted: Option<Vec<&str>> = flag(&flags, "cells")
        .flatten()
        .map(|s| s.split(',').collect());
    // One characterization pass on the macromodel fast path's grid
    // (DESIGN.md D12): the `.lib` writer consumes the quiet slice and the
    // coupled (active-aggressor) tables ride along for crosstalk-aware
    // consumers, instead of sweeping a second, private grid.
    let slews = xtalk_wave::macromodel::GRID_SLEWS;
    let loads = xtalk_wave::macromodel::GRID_LOADS;
    let ratios = xtalk_wave::macromodel::GRID_RATIOS;
    let mut tables = Vec::new();
    for cell in &library {
        if let Some(w) = &wanted {
            if !w.contains(&cell.name.as_str()) {
                continue;
            }
        }
        tables.push(
            xtalk_wave::characterize::characterize_cell_coupled(
                &process, cell, &slews, &loads, &ratios,
            )
            .map_err(|e| err(format!("{}: {e}", cell.name)))?,
        );
    }
    let lib_text = xtalk_wave::liberty::write(&process, &library, &tables);
    std::fs::write(output, lib_text)?;
    Ok(format!(
        "characterized {} cells -> {output}\n",
        tables.len()
    ))
}

fn cmd_sdf(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = split_flags(args);
    let [netlist_path, output] = pos.as_slice() else {
        return Err(err(format!(
            "sdf needs a netlist and an output file\n\n{USAGE}"
        )));
    };
    let mode = parse_mode(flag(&flags, "mode").flatten().unwrap_or("iterative"))?;
    let config = exec_config(&flags)?;
    let d = load_design(netlist_path, flag(&flags, "spef").flatten())?;
    let sta = Sta::with_config(&d.netlist, &d.library, &d.process, &d.parasitics, config)
        .map_err(|e| err(e.to_string()))?;
    let sdf = xtalk_sta::write_sdf(&sta, mode).map_err(|e| err(e.to_string()))?;
    std::fs::write(output, &sdf)?;
    Ok(format!(
        "wrote {output} ({} IOPATH entries, mode {mode})\n",
        sdf.matches("(IOPATH").count()
    ))
}

fn cmd_eco(args: &[String]) -> Result<(String, Option<Severity>), CliError> {
    let (pos, flags) = split_flags(args);
    let [netlist_path, script_path] = pos.as_slice() else {
        return Err(err(format!(
            "eco needs a netlist and an edit script\n\n{USAGE}"
        )));
    };
    let mode = parse_mode(flag(&flags, "mode").flatten().unwrap_or("iterative"))?;
    let config = exec_config(&flags)?;
    let d = load_design(netlist_path, flag(&flags, "spef").flatten())?;
    let script = std::fs::read_to_string(script_path)?;

    let mut eco =
        IncrementalSta::with_config(d.netlist, &d.library, &d.process, d.parasitics, config)
            .map_err(|e| err(e.to_string()))?;
    let baseline = eco.analyze(mode).map_err(|e| err(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "baseline {mode}: {:.3} ns ({} stage solves, {:.2} s)",
        baseline.longest_delay * 1e9,
        baseline.stage_solves,
        baseline.runtime.as_secs_f64()
    );
    let outcomes = eco
        .apply_script(&script)
        .map_err(|e| err(format!("{script_path}: {e}")))?;
    let _ = writeln!(out, "applied {} edits from {script_path}", outcomes.len());

    let report = eco.analyze(mode).map_err(|e| err(e.to_string()))?;
    let stats = eco.last_stats();
    let _ = writeln!(
        out,
        "eco {mode}: {:.3} ns ({:+.3} ns, re-evaluated {} of {} stage evals, \
         {} solves, {:.2} s)",
        report.longest_delay * 1e9,
        (report.longest_delay - baseline.longest_delay) * 1e9,
        stats.stages_evaluated,
        eco.graph().stages.len() * stats.passes,
        stats.stage_solves,
        report.runtime.as_secs_f64()
    );
    let cache = eco.cache_stats();
    let _ = writeln!(
        out,
        "cache: {} hits, {} misses, {} evictions ({:.0}% hit; \
         admission {} admitted, {} skipped)",
        cache.hits,
        cache.misses,
        cache.evictions,
        100.0 * cache.hit_ratio(),
        cache.admitted,
        cache.skipped
    );
    let _ = write!(out, "{}", xtalk_sta::report::solver_table(&report));
    let _ = write!(out, "{}", diagnostics_block(&report));

    if flag(&flags, "check").is_some() {
        let fresh = eco
            .fresh_sta()
            .analyze(mode)
            .map_err(|e| err(e.to_string()))?;
        if fresh.longest_delay.to_bits() != report.longest_delay.to_bits()
            || fresh.endpoint_net != report.endpoint_net
        {
            return Err(err(format!(
                "check FAILED: incremental {:.6} ns != batch {:.6} ns",
                report.longest_delay * 1e9,
                fresh.longest_delay * 1e9
            )));
        }
        let _ = writeln!(out, "check: incremental result matches batch re-analysis");
    }
    Ok((out, report.worst_severity()))
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    use xtalk_sta::serve::{Daemon, ServeConfig};
    let (pos, flags) = split_flags(args);
    if !pos.is_empty() {
        return Err(err(format!("serve takes only flags\n\n{USAGE}")));
    }
    let socket = flag(&flags, "socket")
        .flatten()
        .ok_or_else(|| err("serve requires --socket PATH"))?;
    let store = flag(&flags, "store")
        .flatten()
        .map(std::path::PathBuf::from);
    let config = ServeConfig {
        socket: std::path::PathBuf::from(socket),
        store,
        exec: exec_config(&flags)?,
    };
    let daemon = Daemon::bind(config).map_err(|e| err(format!("serve: {e}")))?;
    // The ready signal goes to stderr immediately — stdout text is only
    // returned once the daemon exits.
    eprintln!("xtalk serve: listening on {socket}");
    let summary = daemon.run().map_err(|e| err(format!("serve: {e}")))?;
    Ok(format!(
        "served {} requests, {} sessions resident at shutdown\n",
        summary.requests, summary.sessions
    ))
}

/// The worst severity a client action's response reported, mapped back
/// from the protocol token so `xtalk client` exits like the batch CLI.
fn client_severity(resp: &xtalk_sta::serve::Json) -> Option<Severity> {
    match resp.str_field("severity") {
        Some("warning") => Some(Severity::Warning),
        Some("error") => Some(Severity::Error),
        _ => None,
    }
}

fn cmd_client(args: &[String]) -> Result<(String, Option<Severity>), CliError> {
    use xtalk_sta::serve::{Client, Json};
    let (pos, flags) = split_flags(args);
    let socket = flag(&flags, "socket")
        .flatten()
        .ok_or_else(|| err("client requires --socket PATH"))?;
    let mut client = Client::connect(std::path::Path::new(socket))
        .map_err(|e| err(format!("client: cannot reach daemon at {socket}: {e}")))?;
    let mode = flag(&flags, "mode").flatten();
    if let Some(m) = mode {
        // Validate locally for a friendly error before shipping it.
        parse_mode(m)?;
    }
    let io = |e: std::io::Error| err(format!("client: {e}"));
    let resp = match pos.as_slice() {
        ["load", design, netlist] => client
            .load(design, netlist, flag(&flags, "spef").flatten())
            .map_err(io)?,
        ["analyze", design] => client.analyze(design, mode).map_err(io)?,
        ["eco", design, script] | ["what-if", design, script] => {
            let text = std::fs::read_to_string(script)?;
            let lines: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            if pos[0] == "eco" {
                client.eco(design, &lines).map_err(io)?
            } else {
                client.what_if(design, &lines, mode).map_err(io)?
            }
        }
        ["query", design, net] => {
            let period = flag(&flags, "period")
                .flatten()
                .map(|p| {
                    p.parse::<f64>()
                        .map_err(|_| err("--period expects a number (ns)"))
                })
                .transpose()?;
            client.query(design, net, mode, period).map_err(io)?
        }
        ["stats"] => client.stats().map_err(io)?,
        ["shutdown"] => client.shutdown().map_err(io)?,
        _ => return Err(err(format!("unknown client action\n\n{USAGE}"))),
    };
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let message = resp
            .str_field("error")
            .unwrap_or("malformed daemon response");
        return Err(err(format!("daemon: {message}")));
    }
    let severity = client_severity(&resp);
    Ok((render_client_response(pos[0], &resp), severity))
}

/// Renders a successful client response as human-readable text. Every
/// analysis-like action also prints the bit-exact `delay bits` line so
/// scripts can assert identity against `xtalk report --bits`.
fn render_client_response(action: &str, resp: &xtalk_sta::serve::Json) -> String {
    use xtalk_sta::serve::Json;
    let mut out = String::new();
    let num = |key: &str| resp.get(key).and_then(Json::as_u64).unwrap_or(0);
    let fnum = |key: &str| resp.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    match action {
        "load" => {
            let _ = writeln!(
                out,
                "loaded: {} gates, {} nets, {} coupling caps \
                 (store: {} replayed, {} corrupt skipped)",
                num("gates"),
                num("nets"),
                num("coupling_caps"),
                num("store_replayed"),
                num("store_corrupt_skipped")
            );
        }
        "analyze" | "what-if" => {
            let _ = writeln!(
                out,
                "{}{}: delay {:.3} ns ({} passes, {} stage solves, \
                 {} newton solves, {} newton iters, {} cache hits, {:.2} s)",
                resp.str_field("mode").unwrap_or("?"),
                if action == "what-if" {
                    " what-if (rolled back)"
                } else {
                    ""
                },
                fnum("delay_ns"),
                num("passes"),
                num("stage_solves"),
                num("newton_solves"),
                num("newton_iters"),
                num("cache_hits"),
                fnum("runtime_s")
            );
            let _ = writeln!(
                out,
                "delay bits: {}",
                resp.str_field("delay_bits").unwrap_or("?")
            );
            if let Some(endpoint) = resp.str_field("endpoint") {
                let _ = writeln!(out, "endpoint: {endpoint}");
            }
            if let Some(diags) = resp.get("diagnostics").and_then(Json::as_arr) {
                let _ = writeln!(out, "diagnostics: {} fault(s) contained", diags.len());
                for d in diags {
                    let _ = writeln!(out, "  {}", d.as_str().unwrap_or("?"));
                }
            }
        }
        "eco" => {
            let _ = writeln!(
                out,
                "applied {} edits ({} new gates, {} total on session)",
                num("applied"),
                num("new_gates"),
                num("edits_total")
            );
        }
        "query" => {
            let _ = writeln!(
                out,
                "{} ({}): arrival {:.3} ns [bits {}]",
                resp.str_field("net").unwrap_or("?"),
                resp.str_field("mode").unwrap_or("?"),
                fnum("arrival_ns"),
                resp.str_field("arrival_bits").unwrap_or("?")
            );
            if let Some(slack) = resp.get("slack_ns").and_then(Json::as_f64) {
                let _ = writeln!(
                    out,
                    "slack: {slack:.3} ns{}",
                    if resp.get("violated").and_then(Json::as_bool) == Some(true) {
                        "  VIOLATED"
                    } else {
                        ""
                    }
                );
            }
        }
        "stats" => {
            let _ = writeln!(out, "requests: {}", num("requests"));
            if let Some(sessions) = resp.get("sessions").and_then(Json::as_arr) {
                for s in sessions {
                    let n = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "session {}: {} gates, {} edits, cache {} hits / {} misses \
                         ({} admitted, {} skipped)",
                        s.str_field("design").unwrap_or("?"),
                        n("gates"),
                        n("edits"),
                        n("cache_hits"),
                        n("cache_misses"),
                        n("cache_admitted"),
                        n("cache_skipped")
                    );
                }
            }
            if let Some(mm) = resp.get("macromodel") {
                let n = |key: &str| mm.get(key).and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "macromodel: {} models ({} usable), {} table hits, {} fallbacks",
                    n("models"),
                    n("usable"),
                    n("table_hits"),
                    n("table_fallbacks")
                );
            }
            if let Some(store) = resp.get("store") {
                let n = |key: &str| store.get(key).and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "store {}: {} replayed, {} corrupt skipped, {} appended, {} deduped",
                    store.str_field("path").unwrap_or("?"),
                    n("replayed"),
                    n("corrupt_skipped"),
                    n("appended"),
                    n("deduped")
                );
            }
        }
        "shutdown" => {
            let _ = writeln!(out, "daemon shutting down");
        }
        _ => {
            let _ = writeln!(out, "{resp}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("xtalk_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).expect("help works");
        assert!(out.contains("USAGE"));
        let out = run(&[]).expect("no args = help");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn generate_convert_report_roundtrip() {
        let bench = tmp("t1.bench");
        let out = run(&argv(&[
            "generate", "--preset", "small", "--seed", "5", &bench,
        ]))
        .expect("generate");
        assert!(out.contains("generated"));

        let v = tmp("t1.v");
        let out = run(&argv(&["convert", &bench, &v])).expect("convert");
        assert!(out.contains("converted"));

        let out = run(&argv(&[
            "report", &v, "--mode", "onestep", "--period", "30",
        ]))
        .expect("report");
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("Slack"), "{out}");
    }

    #[test]
    fn report_with_glitch_and_min_mode() {
        let bench = tmp("t2.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "6", &bench,
        ]))
        .expect("generate");
        let out = run(&argv(&["report", &bench, "--mode", "min"])).expect("min report");
        assert!(out.contains("shortest path delay"), "{out}");
        let out =
            run(&argv(&["report", &bench, "--mode", "best", "--glitch"])).expect("glitch report");
        assert!(out.contains("victims above"), "{out}");
    }

    #[test]
    fn flow_writes_verilog_and_spef_then_report_consumes_spef() {
        let bench = tmp("t3.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "7", &bench,
        ]))
        .expect("generate");
        let dir = tmp("flow_out");
        let out = run(&argv(&["flow", &bench, "--out", &dir])).expect("flow");
        assert!(out.contains("wrote"));
        let v = format!("{dir}/synth_small_7.v");
        let spef = format!("{dir}/synth_small_7.spef");
        assert!(std::path::Path::new(&v).exists());
        assert!(std::path::Path::new(&spef).exists());
        let out = run(&argv(&["report", &v, "--spef", &spef, "--mode", "best"]))
            .expect("report with spef");
        assert!(out.contains("critical path:"));
    }

    #[test]
    fn sdf_command_writes_file() {
        let bench = tmp("t5.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "9", &bench,
        ]))
        .expect("generate");
        let sdf = tmp("t5.sdf");
        let out = run(&argv(&["sdf", &bench, &sdf, "--mode", "onestep"])).expect("sdf");
        assert!(out.contains("IOPATH entries"));
        let text = std::fs::read_to_string(&sdf).expect("sdf file");
        assert!(text.starts_with("(DELAYFILE"));
    }

    #[test]
    fn liberty_writes_selected_cells() {
        let lib = tmp("cells.lib");
        let out = run(&argv(&["liberty", &lib, "--cells", "INVX1,NAND2X1"])).expect("liberty");
        assert!(out.contains("characterized 2 cells"));
        let text = std::fs::read_to_string(&lib).expect("lib file");
        assert!(text.contains("cell (INVX1)"));
        assert!(text.contains("cell_rise"));
    }

    #[test]
    fn eco_replays_edit_script_and_checks() {
        let bench = tmp("t6.bench");
        std::fs::write(
            &bench,
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NAND(w1, b)\ny = NOT(w2)\n",
        )
        .expect("write bench");
        let script = tmp("t6.eco");
        std::fs::write(
            &script,
            "# lengthen w1, then split w2\nreroute w1 2.5\nbuffer w2\n",
        )
        .expect("write script");
        let out = run(&argv(&[
            "eco", &bench, &script, "--mode", "onestep", "--check",
        ]))
        .expect("eco");
        assert!(out.contains("baseline One step:"), "{out}");
        assert!(out.contains("applied 2 edits"), "{out}");
        assert!(out.contains("matches batch"), "{out}");

        let bad = tmp("t6bad.eco");
        std::fs::write(&bad, "resize no_such_gate INVX4\n").expect("write script");
        let e = run(&argv(&["eco", &bench, &bad])).unwrap_err();
        assert!(e.to_string().contains("unknown gate"), "{e}");
    }

    #[test]
    fn report_threads_flag_matches_serial_and_prints_solver_line() {
        let bench = tmp("t7.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "11", &bench,
        ]))
        .expect("generate");
        let serial = run(&argv(&[
            "report",
            &bench,
            "--mode",
            "onestep",
            "--threads",
            "1",
        ]))
        .expect("serial report");
        let par = run(&argv(&[
            "report",
            &bench,
            "--mode",
            "onestep",
            "--threads",
            "2",
        ]))
        .expect("parallel report");
        assert!(serial.contains("solver:"), "{serial}");
        // The timing lines must agree exactly between a serial and a
        // 2-thread run (runtime differs, so compare up to the parenthesis).
        let delay = |s: &str| {
            s.lines()
                .find(|l| l.contains("path delay"))
                .and_then(|l| l.split('(').next())
                .map(str::to_string)
        };
        assert_eq!(delay(&serial), delay(&par));
        assert!(run(&argv(&["report", &bench, "--threads", "0"])).is_err());
        assert!(run(&argv(&["report", &bench, "--threads"])).is_err());
    }

    #[test]
    fn cache_admission_flag_parses_and_never_changes_results() {
        let bench = tmp("t9.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "13", &bench,
        ]))
        .expect("generate");
        let cost = run(&argv(&[
            "report",
            &bench,
            "--mode",
            "iterative",
            "--cache-admission",
            "cost",
        ]))
        .expect("cost admission");
        // `--flag=value` spelling must parse identically.
        let all = run(&argv(&[
            "report",
            &bench,
            "--mode",
            "iterative",
            "--cache-admission=all",
        ]))
        .expect("admit-all");
        let delay = |s: &str| {
            s.lines()
                .find(|l| l.contains("path delay"))
                .and_then(|l| l.split('(').next())
                .map(str::to_string)
        };
        assert_eq!(
            delay(&cost),
            delay(&all),
            "admission changes reuse, never results"
        );
        assert!(cost.contains("newton iters"), "{cost}");
        assert!(run(&argv(&["report", &bench, "--cache-admission", "sometimes"])).is_err());
    }

    #[test]
    fn clean_run_exits_zero_also_under_strict() {
        let bench = tmp("t8.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "12", &bench,
        ]))
        .expect("generate");
        let outcome = run_with_code(&argv(&["report", &bench, "--mode", "best"])).expect("report");
        assert_eq!(outcome.exit_code, 0, "clean run must exit 0");
        assert!(
            !outcome.text.contains("diagnostics:"),
            "clean output mentions no diagnostics: {}",
            outcome.text
        );
        let strict = run_with_code(&argv(&["report", &bench, "--mode", "best", "--strict"]))
            .expect("a clean design passes strict mode");
        assert_eq!(strict.exit_code, 0);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(run(&argv(&["report"])).is_err());
        assert!(run(&argv(&["report", "/nonexistent.bench"])).is_err());
        assert!(run(&argv(&["generate", "--preset", "nope", "x.bench"])).is_err());
        assert!(run(&argv(&["convert", "a.txt", "b.txt"])).is_err());
        let bench = tmp("t4.bench");
        run(&argv(&[
            "generate", "--preset", "small", "--seed", "8", &bench,
        ]))
        .expect("generate");
        assert!(run(&argv(&["report", &bench, "--mode", "warp"])).is_err());
    }
}
