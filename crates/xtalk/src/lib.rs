//! # xtalk — crosstalk-aware static timing analysis
//!
//! A from-scratch reproduction of M. Ringe, T. Lindenkreuz and E. Barke,
//! *"Static Timing Analysis Taking Crosstalk into Account"* (DATE 2000):
//! a waveform-based, transistor-level static timing analyzer for
//! synchronous circuits that bounds the delay impact of capacitive
//! coupling, together with every substrate the paper's flow needs —
//! device models, a cell library, netlist formats, placement/routing/
//! extraction, and a transistor-level transient simulator for validation.
//!
//! This crate is the facade: it re-exports the sub-crates under one roof.
//!
//! | Module | Sub-crate | Contents |
//! |--------|-----------|----------|
//! | [`tech`] | `xtalk-tech` | process, table-based MOSFET models, cell library |
//! | [`netlist`] | `xtalk-netlist` | netlists, `.bench`/Verilog I/O, circuit generator |
//! | [`layout`] | `xtalk-layout` | place, route, extract, SPEF |
//! | [`wave`] | `xtalk-wave` | waveforms, stage solver, coupling model |
//! | [`sim`] | `xtalk-sim` | logic sim, transient sim, aggressor alignment |
//! | [`sta`] | `xtalk-sta` | the crosstalk-aware timing analyzer |
//!
//! # Quickstart
//!
//! ```
//! use xtalk::prelude::*;
//!
//! // Technology and library.
//! let process = Process::c05um();
//! let library = Library::c05um(&process);
//!
//! // A circuit: parse ISCAS-style .bench text.
//! let netlist = xtalk::netlist::bench::parse(xtalk::netlist::data::S27_BENCH, &library)?;
//!
//! // Physical design: place, route, extract coupling parasitics.
//! let placement = xtalk::layout::place::place(&netlist, &library, &process);
//! let routes = xtalk::layout::route::route(&netlist, &placement, &process);
//! let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
//!
//! // Crosstalk-aware timing.
//! let sta = Sta::new(&netlist, &library, &process, &parasitics)?;
//! let report = sta.analyze(AnalysisMode::Iterative { esperance: false })?;
//! println!("longest path: {:.3} ns", report.longest_delay * 1e9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use xtalk_layout as layout;
pub use xtalk_netlist as netlist;
pub use xtalk_sim as sim;
pub use xtalk_sta as sta;
pub use xtalk_tech as tech;
pub use xtalk_wave as wave;

/// The most common imports in one place.
pub mod prelude {
    pub use xtalk_netlist::{GeneratorConfig, Netlist};
    pub use xtalk_sta::{
        AnalysisMode, Diagnostic, Edit, ExecConfig, FaultClass, IncrementalSta, ModeReport,
        Severity, Sta,
    };
    pub use xtalk_tech::{Library, Process};
    pub use xtalk_wave::{CouplingMode, Waveform};
}
