//! The `xtalk` command-line tool. See [`xtalk::cli`] for the commands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xtalk::cli::run_with_code(&args) {
        Ok(outcome) => {
            print!("{}", outcome.text);
            // Degraded-but-complete runs exit 2 (warnings contained) or 3
            // (conservative bounds substituted); clean runs exit 0.
            u8::try_from(outcome.exit_code).map_or(ExitCode::FAILURE, ExitCode::from)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
