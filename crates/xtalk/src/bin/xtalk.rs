//! The `xtalk` command-line tool. See [`xtalk::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xtalk::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
