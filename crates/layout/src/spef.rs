//! SPEF-subset writer and reader for extracted parasitics.
//!
//! Emits the detached-net (`*D_NET`) form of IEEE 1481 SPEF with ground and
//! coupling capacitance entries plus a lumped resistance, which is the
//! information the crosstalk-aware timing flow consumes. Capacitance values
//! are in the SPEF-customary femtofarads, resistance in ohms:
//!
//! ```text
//! *SPEF "IEEE 1481-1998"
//! *DESIGN s27
//! *C_UNIT 1 FF
//! *R_UNIT 1 OHM
//!
//! *D_NET n42 12.5
//! *CAP
//! 1 n42 10.1
//! 2 n42 n17 2.4
//! *RES
//! 1 n42 350.0
//! *END
//! ```
//!
//! The per-sink Elmore path resistances are an internal detail of the
//! extractor and are not part of the exchange format; a parsed
//! [`Parasitics`] therefore has empty `sinks` lists.

use std::collections::HashMap;
use std::fmt::Write as _;

use xtalk_netlist::{NetId, Netlist};

use crate::extract::{CouplingCap, NetParasitics, Parasitics};

/// Errors reading SPEF text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpefError {
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending token, when known.
        column: Option<usize>,
        /// Description of the problem.
        message: String,
    },
    /// The SPEF references a net absent from the netlist.
    UnknownNet {
        /// The missing net name.
        net: String,
    },
}

impl std::fmt::Display for SpefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpefError::Parse {
                line,
                column,
                message,
            } => match column {
                Some(col) => write!(
                    f,
                    "SPEF parse error at line {line}, column {col}: {message}"
                ),
                None => write!(f, "SPEF parse error at line {line}: {message}"),
            },
            SpefError::UnknownNet { net } => write!(f, "SPEF references unknown net `{net}`"),
        }
    }
}

impl std::error::Error for SpefError {}

/// Parses a numeric SPEF field, requiring it to be finite and non-negative
/// so a corrupted file cannot inject NaN/Inf parasitics into the analysis.
/// `raw` is the full source line, used for column context.
fn parse_value(tok: &str, raw: &str, line: usize, what: &str) -> Result<f64, SpefError> {
    let column = raw.find(tok).map(|i| raw[..i].chars().count() + 1);
    let v: f64 = tok.parse().map_err(|_| SpefError::Parse {
        line,
        column,
        message: format!("bad {what} `{tok}`"),
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(SpefError::Parse {
            line,
            column,
            message: format!("{what} `{tok}` must be finite and non-negative"),
        });
    }
    Ok(v)
}

/// Writes `parasitics` as SPEF text.
pub fn write(netlist: &Netlist, parasitics: &Parasitics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998\"");
    let _ = writeln!(out, "*DESIGN {}", netlist.name);
    let _ = writeln!(out, "*C_UNIT 1 FF");
    let _ = writeln!(out, "*R_UNIT 1 OHM");
    let _ = writeln!(out);
    for (ni, np) in parasitics.nets.iter().enumerate() {
        if np.cwire == 0.0 && np.couplings.is_empty() && np.rwire == 0.0 {
            continue;
        }
        let name = &netlist.nets()[ni].name;
        let total_ff = (np.cwire + np.total_coupling()) * 1e15;
        let _ = writeln!(out, "*D_NET {name} {total_ff:.6}");
        let _ = writeln!(out, "*CAP");
        let mut idx = 1;
        let _ = writeln!(out, "{idx} {name} {:.6}", np.cwire * 1e15);
        for cc in &np.couplings {
            idx += 1;
            let other = &netlist.nets()[cc.other.index()].name;
            let _ = writeln!(out, "{idx} {name} {other} {:.6}", cc.c * 1e15);
        }
        let _ = writeln!(out, "*RES");
        let _ = writeln!(out, "1 {name} {:.6}", np.rwire);
        let _ = writeln!(out, "*END");
        let _ = writeln!(out);
    }
    out
}

/// Parses SPEF text produced by [`fn@write`] (or a compatible subset) back into
/// [`Parasitics`] for `netlist`.
///
/// # Errors
///
/// [`SpefError::Parse`] for malformed lines, [`SpefError::UnknownNet`] for
/// nets missing from `netlist`.
pub fn parse(text: &str, netlist: &Netlist) -> Result<Parasitics, SpefError> {
    let mut nets = vec![NetParasitics::default(); netlist.net_count()];
    let by_name: HashMap<&str, NetId> = netlist
        .nets()
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), NetId(i as u32)))
        .collect();
    let lookup = |name: &str| -> Result<NetId, SpefError> {
        by_name
            .get(name)
            .copied()
            .ok_or_else(|| SpefError::UnknownNet {
                net: name.to_string(),
            })
    };

    #[derive(PartialEq)]
    enum Section {
        None,
        Cap,
        Res,
    }
    let mut current: Option<NetId> = None;
    let mut section = Section::None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("*D_NET") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| SpefError::Parse {
                line: lineno,
                column: None,
                message: "missing net name".to_string(),
            })?;
            current = Some(lookup(name)?);
            section = Section::None;
            continue;
        }
        match line {
            "*CAP" => {
                section = Section::Cap;
                continue;
            }
            "*RES" => {
                section = Section::Res;
                continue;
            }
            "*END" => {
                current = None;
                section = Section::None;
                continue;
            }
            _ => {}
        }
        if line.starts_with('*') {
            continue; // header directives
        }
        let Some(net) = current else { continue };
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::Cap => match fields.as_slice() {
                [_idx, _name, value] => {
                    let ff = parse_value(value, raw, lineno, "capacitance")?;
                    nets[net.index()].cwire += ff * 1e-15;
                }
                [_idx, _name, other, value] => {
                    let ff = parse_value(value, raw, lineno, "capacitance")?;
                    let other = lookup(other)?;
                    nets[net.index()].couplings.push(CouplingCap {
                        other,
                        c: ff * 1e-15,
                    });
                }
                _ => {
                    return Err(SpefError::Parse {
                        line: lineno,
                        column: None,
                        message: "malformed *CAP entry".to_string(),
                    })
                }
            },
            Section::Res => match fields.as_slice() {
                [_idx, _name, value] => {
                    let ohm = parse_value(value, raw, lineno, "resistance")?;
                    nets[net.index()].rwire += ohm;
                }
                _ => {
                    return Err(SpefError::Parse {
                        line: lineno,
                        column: None,
                        message: "malformed *RES entry".to_string(),
                    })
                }
            },
            Section::None => {
                return Err(SpefError::Parse {
                    line: lineno,
                    column: None,
                    message: "data outside *CAP/*RES section".to_string(),
                })
            }
        }
    }
    Ok(Parasitics { nets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::place::place;
    use crate::route::route;
    use xtalk_netlist::generator::{self, GeneratorConfig};
    use xtalk_tech::{Library, Process};

    fn setup() -> (xtalk_netlist::Netlist, Parasitics) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = generator::generate(&GeneratorConfig::small(21), &l).expect("generate");
        let pl = place(&nl, &l, &p);
        let r = route(&nl, &pl, &p);
        let para = extract(&nl, &r, &p);
        (nl, para)
    }

    #[test]
    fn roundtrip_preserves_caps_and_res() {
        let (nl, para) = setup();
        let text = write(&nl, &para);
        let back = parse(&text, &nl).expect("parse");
        for (a, b) in para.nets.iter().zip(&back.nets) {
            assert!((a.cwire - b.cwire).abs() < 1e-20, "cwire mismatch");
            assert!((a.rwire - b.rwire).abs() < 1e-5, "rwire mismatch");
            assert_eq!(a.couplings.len(), b.couplings.len());
            for (x, y) in a.couplings.iter().zip(&b.couplings) {
                assert_eq!(x.other, y.other);
                assert!((x.c - y.c).abs() < 1e-20);
            }
        }
    }

    #[test]
    fn writer_emits_required_sections() {
        let (nl, para) = setup();
        let text = write(&nl, &para);
        assert!(text.contains("*SPEF"));
        assert!(text.contains("*DESIGN"));
        assert!(text.contains("*D_NET"));
        assert!(text.contains("*CAP"));
        assert!(text.contains("*RES"));
        assert!(text.contains("*END"));
    }

    #[test]
    fn parse_rejects_unknown_net() {
        let (nl, _) = setup();
        let text = "*D_NET not_a_net 1.0\n*CAP\n1 not_a_net 1.0\n*END\n";
        let err = parse(text, &nl).unwrap_err();
        assert_eq!(
            err,
            SpefError::UnknownNet {
                net: "not_a_net".to_string()
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        let (nl, _) = setup();
        let text = "*D_NET CLK 1.0\n*CAP\nnonsense\n*END\n";
        let err = parse(text, &nl).unwrap_err();
        assert!(matches!(err, SpefError::Parse { .. }), "{err}");

        let text = "*D_NET CLK 1.0\n1 CLK 2.0\n";
        let err = parse(text, &nl).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn parse_rejects_non_finite_and_negative_values() {
        let (nl, _) = setup();
        for bad in ["NaN", "inf", "-inf", "-1.0"] {
            let text = format!("*D_NET CLK 1.0\n*CAP\n1 CLK {bad}\n*END\n");
            let err = parse(&text, &nl).unwrap_err();
            assert!(
                err.to_string().contains("finite and non-negative"),
                "capacitance `{bad}` must be rejected, got: {err}"
            );
            let text = format!("*D_NET CLK 1.0\n*RES\n1 CLK {bad}\n*END\n");
            let err = parse(&text, &nl).unwrap_err();
            assert!(
                err.to_string().contains("finite and non-negative"),
                "resistance `{bad}` must be rejected, got: {err}"
            );
        }
    }

    #[test]
    fn parse_errors_carry_column_context() {
        let (nl, _) = setup();
        let text = "*D_NET CLK 1.0\n*CAP\n1 CLK oops\n*END\n";
        let err = parse(text, &nl).unwrap_err();
        match err {
            SpefError::Parse { line, column, .. } => {
                assert_eq!(line, 3);
                assert_eq!(column, Some(7), "column points at the bad value");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let (nl, _) = setup();
        // Mid-entry EOF: a *CAP row with the value cut off.
        let text = "*D_NET CLK 1.0\n*CAP\n1 CLK";
        let err = parse(text, &nl).unwrap_err();
        assert!(matches!(err, SpefError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn parse_tolerates_header_directives() {
        let (nl, _) = setup();
        let text = "*SPEF \"x\"\n*DESIGN d\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n";
        let para = parse(text, &nl).expect("headers only");
        assert_eq!(para.coupling_count(), 0);
    }
}
