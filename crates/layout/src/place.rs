//! Levelized row placement.
//!
//! Cells are ordered by their combinational level (so connected logic lands
//! close together, as a timing-driven placer would arrange it) and poured
//! into standard-cell rows boustrophedon-style with a fixed whitespace
//! factor. The result is deterministic for a given netlist.

use xtalk_netlist::{GateId, Netlist};
use xtalk_tech::{Library, Process};

/// Extra row capacity beyond the sum of cell widths.
const WHITESPACE: f64 = 1.15;

/// Physical position of one placed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPlace {
    /// Left edge, metres.
    pub x: f64,
    /// Row bottom edge, metres.
    pub y: f64,
    /// Row index.
    pub row: usize,
    /// Cell width, metres.
    pub width: f64,
}

impl CellPlace {
    /// Height of the pin area within a row (pins spread vertically so
    /// routing branches do not all contend for one track).
    const PIN_AREA: f64 = 8.0e-6;

    /// Position of input pin `pin` of `n_pins` on this cell.
    pub fn input_pin(&self, pin: usize, n_pins: usize) -> (f64, f64) {
        let frac = (pin + 1) as f64 / (n_pins + 1) as f64;
        (self.x + self.width * frac, self.y + Self::PIN_AREA * frac)
    }

    /// Position of the output pin.
    pub fn output_pin(&self) -> (f64, f64) {
        (self.x + self.width * 0.9, self.y + Self::PIN_AREA * 0.75)
    }
}

/// A complete placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per-gate positions, indexed by [`GateId::index`].
    pub cells: Vec<CellPlace>,
    /// Number of rows used.
    pub rows: usize,
    /// Die width, metres.
    pub die_width: f64,
    /// Die height, metres.
    pub die_height: f64,
    /// Primary-I/O pad positions, indexed by net id (0 for non-I/O nets).
    pub io_pads: Vec<(f64, f64)>,
}

impl Placement {
    /// Position of the pin that drives `gate`'s input `pin`.
    pub fn input_pin(&self, netlist: &Netlist, gate: GateId, pin: usize) -> (f64, f64) {
        let n = netlist.gate(gate).inputs.len();
        self.cells[gate.index()].input_pin(pin, n)
    }
}

/// Places `netlist` into rows.
///
/// Unknown cells are given a default width of four sites, so placement
/// (unlike timing) never fails.
pub fn place(netlist: &Netlist, library: &Library, process: &Process) -> Placement {
    let site = process.site_width;
    let row_h = process.row_height;

    // Cell widths.
    let widths: Vec<f64> = netlist
        .gates()
        .iter()
        .map(|g| {
            let sites = library.cell(&g.cell).map(|c| c.area_sites).unwrap_or(4);
            sites as f64 * site
        })
        .collect();
    let total_width: f64 = widths.iter().sum::<f64>() * WHITESPACE;

    // Square-ish die: rows * row_h == total_width / rows  =>  rows = sqrt.
    let rows = ((total_width / row_h).sqrt().ceil() as usize).max(1);
    let row_capacity = total_width / rows as f64;

    // Placement order: levelized (sequential cells first, then by level) so
    // that logically adjacent cells are physically adjacent. Within each
    // level, gates are sorted by the barycentre of their already-ordered
    // fan-in drivers — a cheap one-pass force-directed ordering that keeps
    // connections between consecutive levels mostly vertical and short on
    // big designs.
    let topo: Vec<GateId> = netlist
        .levelize(library)
        .unwrap_or_else(|_| (0..netlist.gate_count() as u32).map(GateId).collect());
    let physical_levels = barycentric_order(netlist, library, &topo);

    let mut cells = vec![
        CellPlace {
            x: 0.0,
            y: 0.0,
            row: 0,
            width: site
        };
        netlist.gate_count()
    ];
    // Dataflow fill: each logic level occupies a vertical slab, W cells per
    // row, so cells adjacent in the barycentric order land within a few
    // rows/columns of each other and connections between consecutive levels
    // are short (the folded level sequence keeps feedback short too).
    let mut cursor = vec![0.0f64; rows];
    let mut die_width = 0.0f64;
    for level_gates in physical_levels {
        let w_cols = level_gates.len().div_ceil(rows).max(1);
        for (j, g) in level_gates.into_iter().enumerate() {
            let w = widths[g.index()];
            let row = (j / w_cols).min(rows - 1);
            let x = cursor[row];
            cells[g.index()] = CellPlace {
                x,
                y: row as f64 * row_h,
                row,
                width: w,
            };
            cursor[row] += w;
            die_width = die_width.max(x + w);
        }
    }
    let rows_used = rows;
    let die_height = rows_used as f64 * row_h;
    let _ = row_capacity;

    // Primary I/O pads on the die boundary, spread along the left (inputs)
    // and right (outputs) edges.
    let mut io_pads = vec![(0.0, 0.0); netlist.net_count()];
    let pis: Vec<_> = netlist.primary_inputs().collect();
    for (k, id) in pis.iter().enumerate() {
        let y = die_height * (k + 1) as f64 / (pis.len() + 1) as f64;
        io_pads[id.index()] = (0.0, y);
    }
    let pos: Vec<_> = netlist.primary_outputs().collect();
    for (k, id) in pos.iter().enumerate() {
        let y = die_height * (k + 1) as f64 / (pos.len() + 1) as f64;
        io_pads[id.index()] = (die_width.max(row_capacity), y);
    }

    Placement {
        cells,
        rows: rows_used,
        die_width: die_width.max(row_capacity),
        die_height,
        io_pads,
    }
}

/// Orders gates level by level, sorting each level by the mean ordinal
/// position of its fan-in drivers, and returns the levels in the folded
/// physical sequence.
fn barycentric_order(netlist: &Netlist, library: &Library, topo: &[GateId]) -> Vec<Vec<GateId>> {
    // Combinational level of each gate (sequential gates and gates without
    // combinational fan-in are level 0).
    let mut level = vec![0usize; netlist.gate_count()];
    for &g in topo {
        let gate = netlist.gate(g);
        let seq = library
            .cell(&gate.cell)
            .map(|c| c.is_sequential())
            .unwrap_or(false);
        if seq {
            continue;
        }
        let mut l = 0usize;
        for &input in &gate.inputs {
            if let Some(driver) = netlist.net(input).driver {
                let dseq = library
                    .cell(&netlist.gate(driver).cell)
                    .map(|c| c.is_sequential())
                    .unwrap_or(false);
                if !dseq {
                    l = l.max(level[driver.index()] + 1);
                }
            }
        }
        level[g.index()] = l;
    }
    let max_level = topo.iter().map(|g| level[g.index()]).max().unwrap_or(0);
    let mut by_level: Vec<Vec<GateId>> = vec![Vec::new(); max_level + 1];
    for &g in topo {
        by_level[level[g.index()]].push(g);
    }
    // Physical level sequence: fold the pipeline so the deepest levels come
    // back next to level 0 — flip-flop feedback nets (deep output -> D pin)
    // then stay short instead of crossing the die. fold(l) interleaves the
    // outgoing (0, 2, 4, ...) and returning (..., 5, 3, 1) halves.
    let mut physical: Vec<usize> = (0..=max_level).collect();
    physical.sort_by_key(|&l| {
        let half = max_level / 2;
        if l <= half {
            2 * l
        } else {
            2 * (max_level - l) + 1
        }
    });

    // Ordinal position assigned so far, per gate. Barycentres must be
    // computed in topological (logical) level order even though the
    // physical fill order is folded.
    let mut pos = vec![f64::NAN; netlist.gate_count()];
    let mut sorted_levels: Vec<Vec<GateId>> = vec![Vec::new(); max_level + 1];
    for (li, gates) in by_level.iter().enumerate() {
        let mut keyed: Vec<(f64, GateId)> = gates
            .iter()
            .enumerate()
            .map(|(k, &g)| {
                let gate = netlist.gate(g);
                let mut sum = 0.0;
                let mut cnt = 0usize;
                for &input in &gate.inputs {
                    if let Some(driver) = netlist.net(input).driver {
                        let p = pos[driver.index()];
                        if p.is_finite() {
                            sum += p;
                            cnt += 1;
                        }
                    }
                }
                // Level 0 (and fan-in-less gates) keep their stable order,
                // normalised so the key is comparable with barycentres.
                let key = if li == 0 || cnt == 0 {
                    k as f64 / gates.len().max(1) as f64
                } else {
                    sum / cnt as f64
                };
                (key, g)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (k, &(_, g)) in keyed.iter().enumerate() {
            // Normalised ordinal so levels of different widths align.
            pos[g.index()] = k as f64 / keyed.len().max(1) as f64;
            sorted_levels[li].push(g);
        }
    }
    physical
        .into_iter()
        .map(|l| std::mem::take(&mut sorted_levels[l]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_netlist::generator::{self, GeneratorConfig};
    use xtalk_netlist::{bench, data};
    use xtalk_tech::{Library, Process};

    fn setup() -> (Process, Library) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        (p, l)
    }

    #[test]
    fn s27_places_without_overlap_in_rows() {
        let (p, l) = setup();
        let nl = bench::parse(data::S27_BENCH, &l).expect("parse");
        let pl = place(&nl, &l, &p);
        assert_eq!(pl.cells.len(), nl.gate_count());
        // No two cells in the same row overlap.
        for (i, a) in pl.cells.iter().enumerate() {
            for b in pl.cells.iter().skip(i + 1) {
                if a.row == b.row {
                    let overlap = a.x < b.x + b.width && b.x < a.x + a.width;
                    assert!(!overlap, "cells overlap in row {}", a.row);
                }
            }
        }
    }

    #[test]
    fn die_is_roughly_square() {
        let (p, l) = setup();
        let nl = generator::generate(&GeneratorConfig::small(11), &l).expect("generate");
        let pl = place(&nl, &l, &p);
        let aspect = pl.die_width / pl.die_height;
        assert!(aspect > 0.3 && aspect < 3.0, "aspect {aspect}");
    }

    #[test]
    fn all_cells_inside_die() {
        let (p, l) = setup();
        let nl = generator::generate(&GeneratorConfig::small(3), &l).expect("generate");
        let pl = place(&nl, &l, &p);
        for c in &pl.cells {
            assert!(c.x >= -1e-12);
            assert!(c.x + c.width <= pl.die_width + 1e-9);
            assert!(c.y >= -1e-12 && c.y < pl.die_height);
        }
    }

    #[test]
    fn pin_positions_on_cell() {
        let c = CellPlace {
            x: 10e-6,
            y: 24e-6,
            row: 2,
            width: 9e-6,
        };
        let (x0, _) = c.input_pin(0, 2);
        let (x1, _) = c.input_pin(1, 2);
        assert!(x0 > c.x && x1 < c.x + c.width && x0 < x1);
        let (xo, yo) = c.output_pin();
        assert!(xo > x1);
        assert!(yo > c.y && yo < c.y + 12e-6, "output pin inside the row");
        let (_, y0) = c.input_pin(0, 2);
        let (_, y1) = c.input_pin(1, 2);
        assert!(y0 < y1, "pins spread vertically");
    }

    #[test]
    fn io_pads_on_boundary() {
        let (p, l) = setup();
        let nl = bench::parse(data::C17_BENCH, &l).expect("parse");
        let pl = place(&nl, &l, &p);
        for id in nl.primary_inputs() {
            assert_eq!(pl.io_pads[id.index()].0, 0.0, "inputs on the left edge");
        }
        for id in nl.primary_outputs() {
            assert!(
                (pl.io_pads[id.index()].0 - pl.die_width).abs() < 1e-9,
                "outputs on the right edge"
            );
        }
    }

    #[test]
    fn deterministic() {
        let (p, l) = setup();
        let nl = generator::generate(&GeneratorConfig::small(8), &l).expect("generate");
        let a = place(&nl, &l, &p);
        let b = place(&nl, &l, &p);
        assert_eq!(a.cells, b.cells);
    }
}
