//! Two-layer Manhattan star routing with greedy track legalization.
//!
//! Every net is routed as a star: a vertical trunk on M2 at the driver's x
//! position spanning all pin rows, plus one horizontal M1 branch per pin
//! from the pin to the trunk. Segments are snapped to routing tracks; a
//! greedy legalizer moves a segment to a nearby free track when its desired
//! track already carries an overlapping segment, which is what creates the
//! realistic *adjacent-track parallel runs* that coupling extraction feeds
//! on.

use std::collections::HashMap;

use xtalk_netlist::{NetId, Netlist};
use xtalk_tech::Process;

use crate::place::Placement;

/// Routing layer of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Metal 1, horizontal tracks.
    M1,
    /// Metal 2, vertical tracks.
    M2,
}

impl Layer {
    /// Index into [`Process::layers`].
    pub fn index(self) -> usize {
        match self {
            Layer::M1 => 0,
            Layer::M2 => 1,
        }
    }
}

/// One routed wire segment occupying a track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The net this segment belongs to.
    pub net: NetId,
    /// Routing layer.
    pub layer: Layer,
    /// Track index (y-track for M1, x-track for M2).
    pub track: i64,
    /// Interval start along the track direction, metres.
    pub from: f64,
    /// Interval end along the track direction, metres (`from <= to`).
    pub to: f64,
}

impl Segment {
    /// Segment length, metres.
    pub fn length(&self) -> f64 {
        self.to - self.from
    }
}

/// Route of a single net.
#[derive(Debug, Clone, Default)]
pub struct RoutedNet {
    /// The net's segments.
    pub segments: Vec<Segment>,
    /// Driver pin position.
    pub driver: (f64, f64),
    /// Sink pin positions, parallel to the net's `loads` list.
    pub sinks: Vec<(f64, f64)>,
}

impl RoutedNet {
    /// Total wirelength, metres.
    pub fn wirelength(&self) -> f64 {
        self.segments.iter().map(Segment::length).sum()
    }

    /// Manhattan path length from the driver to sink `k` through the star
    /// (branch + trunk portion + branch).
    pub fn path_length(&self, k: usize) -> f64 {
        let (dx, dy) = self.driver;
        let (sx, sy) = self.sinks[k];
        // Star topology: horizontal to the trunk at the driver's x, vertical
        // along the trunk, horizontal to the sink.
        (sx - dx).abs() + (sy - dy).abs()
    }
}

/// All routed nets of a design.
#[derive(Debug, Clone, Default)]
pub struct Routes {
    /// Per-net routes, indexed by [`NetId::index`].
    pub nets: Vec<RoutedNet>,
}

impl Routes {
    /// Total routed wirelength, metres.
    pub fn total_wirelength(&self) -> f64 {
        self.nets.iter().map(RoutedNet::wirelength).sum()
    }
}

/// Greedy per-track occupancy used during legalization.
#[derive(Default)]
struct TrackOccupancy {
    by_track: HashMap<i64, Vec<(f64, f64)>>,
}

impl TrackOccupancy {
    /// Finds a track at or near `want` where `[from, to]` does not overlap
    /// an existing segment, inserts it, and returns the chosen track.
    fn claim(&mut self, want: i64, from: f64, to: f64) -> i64 {
        for offset in [
            0i64, 1, -1, 2, -2, 3, -3, 4, -4, 5, -5, 6, -6, 7, -7, 8, -8, 9, -9, 10, -10,
        ] {
            let track = want + offset;
            let free = self
                .by_track
                .get(&track)
                .map(|ivs| !ivs.iter().any(|&(a, b)| from < b && a < to))
                .unwrap_or(true);
            if free {
                self.by_track.entry(track).or_default().push((from, to));
                return track;
            }
        }
        // Congested: accept the overlap on the desired track.
        self.by_track.entry(want).or_default().push((from, to));
        want
    }
}

/// Routes every net of `netlist` over `placement`.
pub fn route(netlist: &Netlist, placement: &Placement, process: &Process) -> Routes {
    let p1 = process.layers[Layer::M1.index()].pitch;
    let p2 = process.layers[Layer::M2.index()].pitch;
    let mut m1 = TrackOccupancy::default();
    let mut m2 = TrackOccupancy::default();
    let mut nets = vec![RoutedNet::default(); netlist.net_count()];

    for (ni, net) in netlist.nets().iter().enumerate() {
        let id = NetId(ni as u32);
        // Driver position: gate output pin or an I/O pad.
        let driver = match net.driver {
            Some(g) => placement.cells[g.index()].output_pin(),
            None => placement.io_pads[ni],
        };
        let mut sinks: Vec<(f64, f64)> = net
            .loads
            .iter()
            .map(|&(g, pin)| placement.input_pin(netlist, g, pin))
            .collect();
        if net.is_primary_output && net.loads.is_empty() {
            sinks.push(placement.io_pads[ni]);
        }
        let mut segments = Vec::new();
        if !sinks.is_empty() {
            // Vertical trunk on M2 at the median pin x (a Steiner-style
            // trunk keeps branch lengths short), spanning all pin rows.
            let ys: Vec<f64> = sinks
                .iter()
                .map(|s| s.1)
                .chain(std::iter::once(driver.1))
                .collect();
            let y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut xs: Vec<f64> = sinks
                .iter()
                .map(|s| s.0)
                .chain(std::iter::once(driver.0))
                .collect();
            xs.sort_by(f64::total_cmp);
            let trunk_x = xs[xs.len() / 2];
            if y_max - y_min > 1e-12 {
                let want = (trunk_x / p2).round() as i64;
                let track = m2.claim(want, y_min, y_max);
                segments.push(Segment {
                    net: id,
                    layer: Layer::M2,
                    track,
                    from: y_min,
                    to: y_max,
                });
            }
            // Horizontal branches on M1: driver->trunk and trunk->each sink.
            for &(px, py) in sinks.iter().chain(std::iter::once(&driver)) {
                if (px - trunk_x).abs() > 1e-12 {
                    let (a, b) = if px < trunk_x {
                        (px, trunk_x)
                    } else {
                        (trunk_x, px)
                    };
                    let want = (py / p1).round() as i64;
                    let track = m1.claim(want, a, b);
                    segments.push(Segment {
                        net: id,
                        layer: Layer::M1,
                        track,
                        from: a,
                        to: b,
                    });
                }
            }
        }
        nets[ni] = RoutedNet {
            segments,
            driver,
            sinks,
        };
    }
    Routes { nets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use xtalk_netlist::generator::{self, GeneratorConfig};
    use xtalk_netlist::{bench, data};
    use xtalk_tech::{Library, Process};

    fn routed(seed: u64) -> (Process, Routes, xtalk_netlist::Netlist) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = generator::generate(&GeneratorConfig::small(seed), &l).expect("generate");
        let pl = place(&nl, &l, &p);
        let r = route(&nl, &pl, &p);
        (p, r, nl)
    }

    #[test]
    fn every_loaded_net_is_routed() {
        let (_, r, nl) = routed(1);
        for (ni, net) in nl.nets().iter().enumerate() {
            if !net.loads.is_empty() {
                assert_eq!(r.nets[ni].sinks.len(), net.loads.len());
                // Sinks on different rows than the driver need a trunk.
                let multi_row = r.nets[ni]
                    .sinks
                    .iter()
                    .any(|s| (s.1 - r.nets[ni].driver.1).abs() > 1e-9);
                if multi_row {
                    assert!(
                        r.nets[ni].segments.iter().any(|s| s.layer == Layer::M2),
                        "net {} spans rows without a trunk",
                        net.name
                    );
                }
            }
        }
    }

    #[test]
    fn wirelength_positive_and_bounded() {
        let (p, r, _) = routed(2);
        let total = r.total_wirelength();
        assert!(total > 0.0);
        // Sanity: less than a metre of wire on a mm-scale die.
        assert!(total < 1.0, "wirelength {total}");
        let _ = p;
    }

    #[test]
    fn segments_well_formed() {
        let (_, r, _) = routed(3);
        for net in &r.nets {
            for s in &net.segments {
                assert!(s.to >= s.from, "segment reversed");
                assert!(s.length() < 5e-3, "segment absurdly long");
            }
        }
    }

    #[test]
    fn legalizer_avoids_track_overlap_mostly() {
        let (_, r, _) = routed(4);
        let mut by_track: std::collections::HashMap<(Layer, i64), Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        let mut overlaps = 0usize;
        let mut total = 0usize;
        for net in &r.nets {
            for s in &net.segments {
                let ivs = by_track.entry((s.layer, s.track)).or_default();
                if ivs.iter().any(|&(a, b)| s.from < b && a < s.to) {
                    overlaps += 1;
                }
                ivs.push((s.from, s.to));
                total += 1;
            }
        }
        // Tiny test dies are far more congested than the production-size
        // circuits; a quarter of segments overlapping is the acceptance band
        // here (the big ISCAS-like circuits land much lower).
        assert!(
            overlaps * 4 < total,
            "legalizer left {overlaps}/{total} overlaps"
        );
    }

    #[test]
    fn path_length_is_manhattan() {
        let net = RoutedNet {
            segments: Vec::new(),
            driver: (0.0, 0.0),
            sinks: vec![(3e-6, 4e-6)],
        };
        assert!((net.path_length(0) - 7e-6).abs() < 1e-12);
    }

    #[test]
    fn primary_output_routes_to_pad() {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = bench::parse(data::C17_BENCH, &l).expect("parse");
        let pl = place(&nl, &l, &p);
        let r = route(&nl, &pl, &p);
        for id in nl.primary_outputs() {
            assert!(
                !r.nets[id.index()].sinks.is_empty(),
                "PO net must reach its pad"
            );
        }
    }

    #[test]
    fn track_claim_shifts_on_conflict() {
        let mut occ = TrackOccupancy::default();
        let t1 = occ.claim(10, 0.0, 5.0);
        assert_eq!(t1, 10);
        let t2 = occ.claim(10, 1.0, 3.0);
        assert_ne!(t2, 10, "overlapping claim must shift tracks");
        let t3 = occ.claim(10, 6.0, 8.0);
        assert_eq!(t3, 10, "non-overlapping claim keeps the track");
    }
}
