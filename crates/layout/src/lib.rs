//! Layout substrate: placement, routing, parasitic extraction.
//!
//! The paper evaluates on ISCAS89 circuits "routed in a 0.5 µm process
//! technology with two metal layers" and extracts lumped ground and coupling
//! capacitances from the layout. This crate rebuilds that flow:
//!
//! - [`place`]: levelized row placement of the standard cells.
//! - [`route`]: star-topology Manhattan routing on two layers (M1
//!   horizontal, M2 vertical) with a greedy track legalizer, so geometric
//!   *adjacency* between nets — the source of coupling — is real.
//! - [`extract`]: per-net wire capacitance/resistance, coupling
//!   capacitances between segments on neighbouring tracks, and per-sink
//!   Elmore resistances (the paper's §2 wire model: lumped caps + Elmore).
//! - [`spef`]: a SPEF-subset writer/reader for the extracted parasitics.
//!
//! # Example
//!
//! ```
//! use xtalk_netlist::{bench, data};
//! use xtalk_tech::{Library, Process};
//!
//! let process = Process::c05um();
//! let lib = Library::c05um(&process);
//! let netlist = bench::parse(data::S27_BENCH, &lib)?;
//! let placement = xtalk_layout::place::place(&netlist, &lib, &process);
//! let routes = xtalk_layout::route::route(&netlist, &placement, &process);
//! let parasitics = xtalk_layout::extract::extract(&netlist, &routes, &process);
//! assert_eq!(parasitics.nets.len(), netlist.net_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod place;
pub mod route;
pub mod spef;

pub use extract::{CouplingCap, NetParasitics, Parasitics, SinkWire};
pub use place::Placement;
pub use route::{RoutedNet, Routes, Segment};
