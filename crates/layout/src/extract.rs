//! Parasitic extraction: ground caps, coupling caps, Elmore resistances.
//!
//! Two nets couple where their segments run in parallel on *adjacent tracks*
//! of the same layer; the coupling capacitance is the overlap length times
//! the layer's `cc_per_m`. Ground capacitance and wire resistance follow
//! from total routed length. Per sink, the Manhattan path resistance from
//! the driver is recorded so the timing engine can apply the paper's Elmore
//! wire-delay model (§2: lumped capacitances, Elmore delays, conservative
//! for long wires).

use std::collections::HashMap;

use xtalk_netlist::{NetId, Netlist};
use xtalk_tech::Process;

use crate::route::{Layer, Routes, Segment};

/// Resistance of one M1-M2 via, ohms.
pub const VIA_OHMS: f64 = 8.0;

/// A coupling capacitance between two nets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingCap {
    /// The aggressor/neighbour net.
    pub other: NetId,
    /// Capacitance, farads.
    pub c: f64,
}

/// Wire parasitics of one driver-to-sink connection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SinkWire {
    /// Resistance of the Manhattan path from driver to this sink, ohms.
    pub r_path: f64,
}

/// Parasitics of a single net.
#[derive(Debug, Clone, Default)]
pub struct NetParasitics {
    /// Wire capacitance to ground, farads.
    pub cwire: f64,
    /// Total wire resistance, ohms.
    pub rwire: f64,
    /// Coupling capacitances to neighbouring nets (aggregated per pair).
    pub couplings: Vec<CouplingCap>,
    /// Per-sink path resistances, parallel to the net's `loads` list.
    pub sinks: Vec<SinkWire>,
}

impl NetParasitics {
    /// Total coupling capacitance on the net.
    pub fn total_coupling(&self) -> f64 {
        self.couplings.iter().map(|c| c.c).sum()
    }

    /// Elmore delay to sink `k` with `c_downstream` of load beyond the wire
    /// (pin caps): `r_path * (cwire/2 + c_downstream)`.
    ///
    /// The half-wire term is the standard lumped-RC Elmore approximation for
    /// a distributed wire.
    pub fn elmore(&self, k: usize, c_downstream: f64) -> f64 {
        self.sinks
            .get(k)
            .map(|s| s.r_path * (0.5 * self.cwire + c_downstream))
            .unwrap_or(0.0)
    }
}

/// Extracted parasitics of a whole design.
#[derive(Debug, Clone, Default)]
pub struct Parasitics {
    /// Per-net parasitics, indexed by [`NetId::index`].
    pub nets: Vec<NetParasitics>,
}

impl Parasitics {
    /// Number of (directed) coupling records.
    pub fn coupling_count(&self) -> usize {
        self.nets.iter().map(|n| n.couplings.len()).sum()
    }

    /// Total coupling capacitance (each pair counted twice, once per side).
    pub fn total_coupling(&self) -> f64 {
        self.nets.iter().map(NetParasitics::total_coupling).sum()
    }

    /// Empty parasitics for `n` nets (used when analysing unrouted designs).
    pub fn empty(n: usize) -> Self {
        Parasitics {
            nets: vec![NetParasitics::default(); n],
        }
    }

    /// ECO: scales all wire parasitics of `net` — ground cap, resistance,
    /// per-sink path resistances and every coupling cap it participates in —
    /// by `scale`, modelling a reroute onto a longer or shorter path.
    /// Coupling caps are patched on both sides to keep the matrix symmetric.
    pub fn patch_net(&mut self, net: NetId, scale: f64) {
        assert!(scale >= 0.0, "parasitic scale must be non-negative");
        let np = &mut self.nets[net.index()];
        np.cwire *= scale;
        np.rwire *= scale;
        for s in &mut np.sinks {
            s.r_path *= scale;
        }
        let partners: Vec<NetId> = np.couplings.iter().map(|c| c.other).collect();
        for cc in &mut np.couplings {
            cc.c *= scale;
        }
        for other in partners {
            for cc in &mut self.nets[other.index()].couplings {
                if cc.other == net {
                    cc.c *= scale;
                }
            }
        }
    }

    /// ECO: removes the coupling between nets `a` and `b` (both directions),
    /// modelling a shielding insertion or spacing fix. Returns the removed
    /// capacitance (one side's view; the matrix was symmetric).
    pub fn remove_coupling(&mut self, a: NetId, b: NetId) -> f64 {
        let mut removed = 0.0;
        self.nets[a.index()].couplings.retain(|cc| {
            if cc.other == b {
                removed += cc.c;
                false
            } else {
                true
            }
        });
        self.nets[b.index()].couplings.retain(|cc| cc.other != a);
        removed
    }

    /// ECO: appends empty parasitic records so the table covers `n` nets
    /// (newly created nets start as ideal, zero-parasitic stubs).
    pub fn grow_to(&mut self, n: usize) {
        while self.nets.len() < n {
            self.nets.push(NetParasitics::default());
        }
    }
}

/// Extracts parasitics from `routes`.
pub fn extract(netlist: &Netlist, routes: &Routes, process: &Process) -> Parasitics {
    let mut nets = vec![NetParasitics::default(); netlist.net_count()];

    // Ground capacitance and series resistance from routed length.
    for (ni, rn) in routes.nets.iter().enumerate() {
        let mut cwire = 0.0;
        let mut rwire = 0.0;
        for s in &rn.segments {
            let layer = &process.layers[s.layer.index()];
            cwire += s.length() * layer.c_per_m;
            rwire += s.length() * layer.r_per_m;
        }
        nets[ni].cwire = cwire;
        nets[ni].rwire = rwire;
        // Per-sink Manhattan path resistance: horizontal part on M1,
        // vertical part on M2, plus two vias when the path changes layer.
        let r1 = process.layers[Layer::M1.index()].r_per_m;
        let r2 = process.layers[Layer::M2.index()].r_per_m;
        nets[ni].sinks = rn
            .sinks
            .iter()
            .map(|&(sx, sy)| {
                let (dx, dy) = rn.driver;
                let vertical = (sy - dy).abs();
                let vias = if vertical > 1e-12 {
                    2.0 * VIA_OHMS
                } else {
                    0.0
                };
                SinkWire {
                    r_path: (sx - dx).abs() * r1 + vertical * r2 + vias,
                }
            })
            .collect();
    }

    // Coupling: bucket segments by (layer, track), sweep adjacent tracks.
    let mut buckets: HashMap<(Layer, i64), Vec<Segment>> = HashMap::new();
    for rn in &routes.nets {
        for s in &rn.segments {
            buckets.entry((s.layer, s.track)).or_default().push(*s);
        }
    }
    for v in buckets.values_mut() {
        v.sort_by(|a, b| a.from.total_cmp(&b.from));
    }
    let mut pair_caps: HashMap<(u32, u32), f64> = HashMap::new();
    for (&(layer, track), segs) in &buckets {
        let Some(neigh) = buckets.get(&(layer, track + 1)) else {
            continue;
        };
        let cc_per_m = process.layers[layer.index()].cc_per_m;
        // Two-pointer sweep over the sorted interval lists.
        let mut j0 = 0usize;
        for a in segs {
            while j0 < neigh.len() && neigh[j0].to < a.from {
                j0 += 1;
            }
            let mut j = j0;
            while j < neigh.len() && neigh[j].from < a.to {
                let b = &neigh[j];
                j += 1;
                if b.net == a.net {
                    continue;
                }
                let overlap = a.to.min(b.to) - a.from.max(b.from);
                if overlap <= 0.0 {
                    continue;
                }
                let key = if a.net.0 < b.net.0 {
                    (a.net.0, b.net.0)
                } else {
                    (b.net.0, a.net.0)
                };
                *pair_caps.entry(key).or_insert(0.0) += overlap * cc_per_m;
            }
        }
    }
    let mut pairs: Vec<((u32, u32), f64)> = pair_caps.into_iter().collect();
    pairs.sort_by_key(|&(k, _)| k);
    for ((a, b), c) in pairs {
        nets[a as usize]
            .couplings
            .push(CouplingCap { other: NetId(b), c });
        nets[b as usize]
            .couplings
            .push(CouplingCap { other: NetId(a), c });
    }

    // Physical sanity: a wire has two sides, so its total lateral coupling
    // cannot exceed 2 * length * cc_per_m. Congested regions where the
    // greedy legalizer stacked overlapping segments would otherwise count
    // one victim against many phantom neighbours; scale those nets back to
    // the physical ceiling.
    let cc_max_per_m: f64 = process
        .layers
        .iter()
        .map(|l| l.cc_per_m)
        .fold(0.0, f64::max);
    let mut scale = vec![1.0f64; nets.len()];
    for (ni, rn) in routes.nets.iter().enumerate() {
        let ceiling = 2.0 * rn.wirelength() * cc_max_per_m;
        let total = nets[ni].total_coupling();
        if total > ceiling && total > 0.0 {
            scale[ni] = ceiling / total;
        }
    }
    for ni in 0..nets.len() {
        // A pair's cap is limited by the tighter of the two sides, keeping
        // the coupling matrix symmetric.
        let net_scale = scale[ni];
        for cc in &mut nets[ni].couplings {
            let s = net_scale.min(scale[cc.other.index()]);
            cc.c *= s;
        }
    }
    Parasitics { nets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use crate::route::route;
    use xtalk_netlist::generator::{self, GeneratorConfig};
    use xtalk_netlist::Netlist;
    use xtalk_tech::{Library, Process};

    fn extracted(seed: u64) -> (Process, Parasitics, Netlist) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let nl = generator::generate(&GeneratorConfig::small(seed), &l).expect("generate");
        let pl = place(&nl, &l, &p);
        let r = route(&nl, &pl, &p);
        let para = extract(&nl, &r, &p);
        (p, para, nl)
    }

    #[test]
    fn loaded_nets_have_wire_cap() {
        let (_, para, nl) = extracted(1);
        for (ni, net) in nl.nets().iter().enumerate() {
            if !net.loads.is_empty() && net.driver.is_some() {
                assert!(
                    para.nets[ni].cwire > 0.0,
                    "net {} has zero wire cap",
                    net.name
                );
            }
        }
    }

    #[test]
    fn couplings_are_symmetric() {
        let (_, para, _) = extracted(2);
        for (ni, np) in para.nets.iter().enumerate() {
            for cc in &np.couplings {
                let back = para.nets[cc.other.index()]
                    .couplings
                    .iter()
                    .find(|c| c.other.index() == ni)
                    .expect("coupling must be recorded on both nets");
                assert!((back.c - cc.c).abs() < 1e-21);
            }
        }
    }

    #[test]
    fn some_coupling_exists_and_is_plausible() {
        let (_, para, _) = extracted(3);
        assert!(para.coupling_count() > 0, "a routed design must couple");
        for np in &para.nets {
            for cc in &np.couplings {
                assert!(cc.c > 0.0);
                assert!(cc.c < 1e-12, "absurd coupling cap {}", cc.c);
            }
        }
    }

    #[test]
    fn no_self_coupling() {
        let (_, para, _) = extracted(4);
        for (ni, np) in para.nets.iter().enumerate() {
            assert!(np.couplings.iter().all(|c| c.other.index() != ni));
        }
    }

    #[test]
    fn elmore_scales_with_downstream_cap() {
        let np = NetParasitics {
            cwire: 20e-15,
            rwire: 100.0,
            couplings: Vec::new(),
            sinks: vec![SinkWire { r_path: 200.0 }],
        };
        let d1 = np.elmore(0, 5e-15);
        let d2 = np.elmore(0, 25e-15);
        assert!(d2 > d1);
        assert!((d1 - 200.0 * 15e-15).abs() < 1e-18);
        assert_eq!(np.elmore(7, 1e-15), 0.0, "missing sink gives zero");
    }

    #[test]
    fn wire_delays_small_relative_to_gate_delays() {
        // The paper notes wire delay is not the dominant effect in these
        // circuits (0.2-0.5ns on >10ns paths); check our extraction lands in
        // a sane regime: average per-sink Elmore below 100ps.
        let (_, para, nl) = extracted(5);
        let mut total = 0.0;
        let mut count = 0usize;
        for (ni, np) in para.nets.iter().enumerate() {
            let _ = ni;
            for k in 0..np.sinks.len() {
                total += np.elmore(k, 10e-15);
                count += 1;
            }
        }
        let _ = nl;
        assert!(count > 0);
        let avg = total / count as f64;
        assert!(avg < 100e-12, "average Elmore {avg}");
    }

    #[test]
    fn empty_parasitics_shape() {
        let p = Parasitics::empty(5);
        assert_eq!(p.nets.len(), 5);
        assert_eq!(p.coupling_count(), 0);
        assert_eq!(p.total_coupling(), 0.0);
    }

    #[test]
    fn deterministic() {
        let (_, a, _) = extracted(6);
        let (_, b, _) = extracted(6);
        assert_eq!(a.coupling_count(), b.coupling_count());
        assert!((a.total_coupling() - b.total_coupling()).abs() < 1e-24);
    }

    #[test]
    fn patch_net_scales_symmetrically() {
        let (_, mut para, _) = extracted(7);
        let victim = para
            .nets
            .iter()
            .position(|np| !np.couplings.is_empty())
            .expect("a coupled net exists");
        let net = NetId(victim as u32);
        let partner = para.nets[victim].couplings[0].other;
        let before = para.nets[victim].couplings[0].c;
        let cwire_before = para.nets[victim].cwire;
        para.patch_net(net, 2.0);
        assert!((para.nets[victim].cwire - 2.0 * cwire_before).abs() < 1e-24);
        assert!((para.nets[victim].couplings[0].c - 2.0 * before).abs() < 1e-24);
        let back = para.nets[partner.index()]
            .couplings
            .iter()
            .find(|c| c.other == net)
            .expect("reverse coupling");
        assert!((back.c - 2.0 * before).abs() < 1e-24, "symmetry preserved");
    }

    #[test]
    fn remove_coupling_clears_both_sides() {
        let (_, mut para, _) = extracted(8);
        let victim = para
            .nets
            .iter()
            .position(|np| !np.couplings.is_empty())
            .expect("a coupled net exists");
        let net = NetId(victim as u32);
        let partner = para.nets[victim].couplings[0].other;
        let removed = para.remove_coupling(net, partner);
        assert!(removed > 0.0);
        assert!(para.nets[victim]
            .couplings
            .iter()
            .all(|c| c.other != partner));
        assert!(para.nets[partner.index()]
            .couplings
            .iter()
            .all(|c| c.other != net));
    }

    #[test]
    fn grow_to_appends_stubs() {
        let mut para = Parasitics::empty(3);
        para.grow_to(5);
        assert_eq!(para.nets.len(), 5);
        assert_eq!(para.nets[4].cwire, 0.0);
        para.grow_to(2);
        assert_eq!(para.nets.len(), 5, "never shrinks");
    }
}
