//! Nonlinear transient integration of a flat transistor circuit.
//!
//! Backward Euler in time; at each timestep the nonlinear nodal equations
//! are relaxed with per-node Newton updates (nonlinear Gauss–Seidel), which
//! converges robustly on the M-matrix-structured MOS circuits at hand and
//! needs no general sparse LU. The step size adapts to the fastest node
//! slew and the relaxation is retried with a halved step on
//! non-convergence — standard practice for event-dominated digital
//! transients.

use xtalk_tech::mosfet::DeviceType;
use xtalk_tech::table::DeviceTable;
use xtalk_tech::Process;

use crate::circuit::{Circuit, Device, Drive, NodeId, NodeRef};

/// Options controlling a transient run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Initial step, seconds.
    pub h_init: f64,
    /// Maximum step, seconds.
    pub h_max: f64,
    /// Per-sweep convergence tolerance, volts.
    pub v_tol: f64,
    /// Maximum relaxation sweeps per timestep.
    pub max_sweeps: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            t_stop: 10e-9,
            h_init: 1e-12,
            h_max: 50e-12,
            v_tol: 2e-5,
            max_sweeps: 400,
        }
    }
}

/// Errors from [`simulate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The relaxation failed to converge even at the minimum step size.
    NoConvergence {
        /// Simulation time of the failure.
        t: f64,
    },
    /// The circuit has no free nodes to integrate.
    NothingToSolve,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoConvergence { t } => {
                write!(f, "transient relaxation diverged at t = {t:.3e} s")
            }
            SimError::NothingToSolve => write!(f, "circuit has no free nodes"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a transient run: per-node sampled traces.
#[derive(Debug, Clone)]
pub struct Transient {
    /// `traces[node][k] = (t, v)`, one entry per accepted step.
    pub traces: Vec<Vec<(f64, f64)>>,
    /// Accepted steps.
    pub steps: usize,
}

impl Transient {
    /// The sampled trace of a node.
    pub fn trace(&self, node: NodeId) -> &[(f64, f64)] {
        &self.traces[node.index()]
    }

    /// Final voltage of a node.
    pub fn final_value(&self, node: NodeId) -> f64 {
        self.traces[node.index()]
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN)
    }

    /// Last time the node's trace crosses `threshold` in the given
    /// direction (rising = upward crossing).
    pub fn last_crossing(&self, node: NodeId, threshold: f64, rising: bool) -> Option<f64> {
        let tr = &self.traces[node.index()];
        let mut found = None;
        for w in tr.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let crosses = if rising {
                v0 < threshold && v1 >= threshold
            } else {
                v0 > threshold && v1 <= threshold
            };
            if crosses {
                let f = (threshold - v0) / (v1 - v0);
                found = Some(t0 + (t1 - t0) * f);
            }
        }
        found
    }

    /// First time the node's trace crosses `threshold` in the given
    /// direction.
    pub fn first_crossing(&self, node: NodeId, threshold: f64, rising: bool) -> Option<f64> {
        let tr = &self.traces[node.index()];
        for w in tr.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let crosses = if rising {
                v0 < threshold && v1 >= threshold
            } else {
                v0 > threshold && v1 <= threshold
            };
            if crosses {
                let f = (threshold - v0) / (v1 - v0);
                return Some(t0 + (t1 - t0) * f);
            }
        }
        None
    }
}

struct DevicePartials {
    i: f64,
    /// Gate transconductance; no DC gate current flows, but kept so future
    /// full-matrix solvers can stamp the gm coupling term.
    #[allow(dead_code)]
    d_gate: f64,
    d_drain: f64,
    d_source: f64,
}

fn eval_device(
    dev: &Device,
    vg: f64,
    vd: f64,
    vs: f64,
    nmos: &DeviceTable,
    pmos: &DeviceTable,
) -> DevicePartials {
    match dev.polarity {
        DeviceType::Nmos => {
            let (i, dg, dd) = nmos.derivs(vg - vs, vd - vs, dev.width);
            DevicePartials {
                i,
                d_gate: dg,
                d_drain: dd,
                d_source: -dg - dd,
            }
        }
        DeviceType::Pmos => {
            // I(drain->source) = -Ip(vs - vg, vs - vd)
            let (i, dg, dd) = pmos.derivs(vs - vg, vs - vd, dev.width);
            DevicePartials {
                i: -i,
                d_gate: dg,
                d_drain: dd,
                d_source: -dg - dd,
            }
        }
    }
}

/// Runs a transient simulation of `circuit`.
///
/// # Errors
///
/// [`SimError::NoConvergence`] if the relaxation cannot converge even at
/// femtosecond steps; [`SimError::NothingToSolve`] for a circuit without
/// free nodes.
pub fn simulate(
    circuit: &Circuit,
    process: &Process,
    options: &SimOptions,
) -> Result<Transient, SimError> {
    let n = circuit.nodes.len();
    if circuit.free_count() == 0 {
        return Err(SimError::NothingToSolve);
    }
    let nmos = process.table(DeviceType::Nmos);
    let pmos = process.table(DeviceType::Pmos);
    let vdd = process.vdd;

    // Adjacency: devices touching each node (as drain or source), and
    // mutual caps per node.
    let mut node_devices: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (di, dev) in circuit.devices.iter().enumerate() {
        for term in [dev.drain, dev.source] {
            if let NodeRef::Node(id) = term {
                node_devices[id.index()].push(di);
            }
        }
    }
    let mut node_mutual: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (mi, m) in circuit.mutual.iter().enumerate() {
        for term in [m.a, m.b] {
            if let NodeRef::Node(id) = term {
                node_mutual[id.index()].push(mi);
            }
        }
    }
    let free: Vec<usize> = (0..n)
        .filter(|&i| matches!(circuit.nodes[i].drive, Drive::Free))
        .collect();

    // State.
    let volt_of = |drive: &Drive, t: f64, v0: f64| -> f64 {
        match drive {
            Drive::Free => v0,
            Drive::Const(v) => *v,
            Drive::Pwl(w) => w.value_at(t),
        }
    };
    let mut v: Vec<f64> = circuit
        .nodes
        .iter()
        .map(|nd| volt_of(&nd.drive, 0.0, nd.v0))
        .collect();
    let read = |v: &[f64], r: NodeRef| -> f64 {
        match r {
            NodeRef::Node(id) => v[id.index()],
            NodeRef::Vdd => vdd,
            NodeRef::Gnd => 0.0,
        }
    };

    let mut traces: Vec<Vec<(f64, f64)>> = (0..n).map(|i| vec![(0.0, v[i])]).collect();
    let mut t = 0.0f64;
    let mut h = options.h_init;
    let h_min = 1e-16;
    let mut steps = 0usize;

    while t < options.t_stop {
        let t1 = (t + h).min(options.t_stop);
        let h_eff = t1 - t;
        let v_prev = v.clone();
        // Forced nodes move to their t1 values.
        for (i, nd) in circuit.nodes.iter().enumerate() {
            match &nd.drive {
                Drive::Free => {}
                d => v[i] = volt_of(d, t1, nd.v0),
            }
        }
        // Nonlinear Gauss-Seidel relaxation.
        let mut converged = false;
        for _sweep in 0..options.max_sweeps {
            let mut delta_max = 0.0f64;
            for &i in &free {
                let node = &circuit.nodes[i];
                let mut f = node.cap * (v[i] - v_prev[i]) / h_eff;
                let mut jac = node.cap / h_eff;
                for &mi in &node_mutual[i] {
                    let m = &circuit.mutual[mi];
                    let (other, sign_is_a) = if m.a == NodeRef::Node(NodeId(i as u32)) {
                        (m.b, true)
                    } else {
                        (m.a, false)
                    };
                    let _ = sign_is_a;
                    let vo = read(&v, other);
                    let vo_prev = match other {
                        NodeRef::Node(id) => v_prev[id.index()],
                        NodeRef::Vdd => vdd,
                        NodeRef::Gnd => 0.0,
                    };
                    f += m.c * ((v[i] - v_prev[i]) - (vo - vo_prev)) / h_eff;
                    jac += m.c / h_eff;
                }
                for &di in &node_devices[i] {
                    let dev = &circuit.devices[di];
                    let p = eval_device(
                        dev,
                        read(&v, dev.gate),
                        read(&v, dev.drain),
                        read(&v, dev.source),
                        nmos,
                        pmos,
                    );
                    if dev.drain == NodeRef::Node(NodeId(i as u32)) {
                        f += p.i;
                        jac += p.d_drain;
                    }
                    if dev.source == NodeRef::Node(NodeId(i as u32)) {
                        f -= p.i;
                        jac -= p.d_source;
                    }
                }
                if jac.abs() < 1e-30 {
                    continue;
                }
                let dv = (f / jac).clamp(-0.3, 0.3);
                v[i] -= dv;
                // Keep voltages physical-ish to avoid table extrapolation.
                v[i] = v[i].clamp(-1.0, vdd + 1.0);
                delta_max = delta_max.max(dv.abs());
            }
            if delta_max < options.v_tol {
                converged = true;
                break;
            }
        }
        if !converged {
            // Retry with a smaller step.
            v = v_prev;
            h *= 0.5;
            if h < h_min {
                return Err(SimError::NoConvergence { t });
            }
            continue;
        }
        // Accept.
        t = t1;
        steps += 1;
        let mut dv_max = 0.0f64;
        for &i in &free {
            dv_max = dv_max.max((v[i] - v_prev[i]).abs());
        }
        for (i, tr) in traces.iter_mut().enumerate() {
            tr.push((t, v[i]));
        }
        // Step control targeting ~60 mV of movement per step.
        let target = 0.06;
        let scale = if dv_max > 1e-9 { target / dv_max } else { 2.0 };
        h = (h * scale.clamp(0.4, 2.0)).clamp(1e-15, options.h_max);
    }

    Ok(Transient { traces, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Drive, NodeRef};
    use xtalk_tech::{Library, Process};
    use xtalk_wave::pwl::Waveform;

    fn setup() -> (Process, Library) {
        let p = Process::c05um();
        (p.clone(), Library::c05um(&p))
    }

    /// RC discharge through an NMOS used as a resistor-ish pull-down.
    #[test]
    fn nmos_discharges_capacitor() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let mut c = Circuit::new();
        let inp = c.add_node(
            "in",
            Drive::Pwl(Waveform::ramp(1e-9, 0.2e-9, 0.0, p.vdd).expect("ramp")),
            0.0,
            0.0,
        );
        let out = c.add_node("out", Drive::Free, 50e-15, p.vdd);
        c.instantiate_cell(
            inv,
            &[NodeRef::Node(inp)],
            NodeRef::Node(out),
            None,
            &l,
            &p,
            "u0",
        );
        let tr = simulate(&c, &p, &SimOptions::default()).expect("simulate");
        // Output starts at VDD, ends near ground.
        assert!(tr.trace(out)[0].1 > 3.0);
        assert!(tr.final_value(out) < 0.1, "final {}", tr.final_value(out));
        let cross = tr
            .last_crossing(out, p.delay_threshold(), false)
            .expect("fall crossing");
        assert!(cross > 1e-9, "output falls after the input rises");
        assert!(cross < 3e-9, "and within a plausible delay");
    }

    #[test]
    fn inverter_chain_propagates() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let mut c = Circuit::new();
        let inp = c.add_node(
            "in",
            Drive::Pwl(Waveform::ramp(0.5e-9, 0.2e-9, p.vdd, 0.0).expect("ramp")),
            0.0,
            p.vdd,
        );
        let mid = c.add_node("mid", Drive::Free, 10e-15, 0.0);
        let out = c.add_node("out", Drive::Free, 10e-15, p.vdd);
        c.instantiate_cell(
            inv,
            &[NodeRef::Node(inp)],
            NodeRef::Node(mid),
            None,
            &l,
            &p,
            "u0",
        );
        c.instantiate_cell(
            inv,
            &[NodeRef::Node(mid)],
            NodeRef::Node(out),
            None,
            &l,
            &p,
            "u1",
        );
        let tr = simulate(
            &c,
            &p,
            &SimOptions {
                t_stop: 5e-9,
                ..SimOptions::default()
            },
        )
        .expect("simulate");
        let th = p.delay_threshold();
        let t_mid = tr.first_crossing(mid, th, true).expect("mid rises");
        let t_out = tr.first_crossing(out, th, false).expect("out falls");
        assert!(t_out > t_mid, "stage order preserved");
        assert!(tr.final_value(mid) > 3.0);
        assert!(tr.final_value(out) < 0.3);
    }

    #[test]
    fn coupled_aggressor_delays_victim() {
        // A victim inverter rising while an aggressor (ideal source) falls
        // through a coupling cap: the victim must be slower than without the
        // aggressor — the Fig. 1 situation of the paper.
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let th = p.delay_threshold();
        let run = |aggressor_at: Option<f64>| -> f64 {
            let mut c = Circuit::new();
            let inp = c.add_node(
                "in",
                Drive::Pwl(Waveform::ramp(0.5e-9, 0.2e-9, p.vdd, 0.0).expect("ramp")),
                0.0,
                p.vdd,
            );
            let out = c.add_node("out", Drive::Free, 30e-15, 0.0);
            let agg = match aggressor_at {
                Some(t) => c.add_node(
                    "agg",
                    Drive::Pwl(Waveform::step(t, p.vdd, 0.0).expect("step")),
                    0.0,
                    p.vdd,
                ),
                None => c.add_node("agg", Drive::Const(p.vdd), 0.0, p.vdd),
            };
            c.add_mutual(NodeRef::Node(out), NodeRef::Node(agg), 15e-15);
            c.instantiate_cell(
                inv,
                &[NodeRef::Node(inp)],
                NodeRef::Node(out),
                None,
                &l,
                &p,
                "u0",
            );
            let tr = simulate(
                &c,
                &p,
                &SimOptions {
                    t_stop: 6e-9,
                    ..SimOptions::default()
                },
            )
            .expect("simulate");
            tr.last_crossing(out, th, true).expect("rise crossing")
        };
        let quiet = run(None);
        // Fire the aggressor just after the quiet crossing: the capacitive
        // dip pulls the victim back below threshold (the worst case).
        let noisy = run(Some(quiet + 10e-12));
        assert!(
            noisy > quiet + 10e-12,
            "aggressor must add delay: {quiet} vs {noisy}"
        );
    }

    #[test]
    fn empty_circuit_rejected() {
        let p = Process::c05um();
        let c = Circuit::new();
        assert_eq!(
            simulate(&c, &p, &SimOptions::default()).unwrap_err(),
            SimError::NothingToSolve
        );
    }

    #[test]
    fn nand_stack_settles_dc() {
        // Both NAND inputs high: output must settle to ground through the
        // series stack (exercises internal stack nodes).
        let (p, l) = setup();
        let nand = l.cell("NAND2X1").expect("nand");
        let mut c = Circuit::new();
        let a = c.add_node("a", Drive::Const(p.vdd), 0.0, p.vdd);
        let b = c.add_node(
            "b",
            Drive::Pwl(Waveform::ramp(0.5e-9, 0.1e-9, 0.0, p.vdd).expect("ramp")),
            0.0,
            0.0,
        );
        let y = c.add_node("y", Drive::Free, 20e-15, p.vdd);
        c.instantiate_cell(
            nand,
            &[NodeRef::Node(a), NodeRef::Node(b)],
            NodeRef::Node(y),
            None,
            &l,
            &p,
            "u0",
        );
        let tr = simulate(
            &c,
            &p,
            &SimOptions {
                t_stop: 4e-9,
                ..SimOptions::default()
            },
        )
        .expect("simulate");
        assert!(tr.final_value(y) < 0.1, "final {}", tr.final_value(y));
    }
}
