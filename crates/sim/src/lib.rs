//! Simulation substrates: logic simulation and transistor-level transient
//! analysis.
//!
//! The paper validates its crosstalk-aware static timing analysis against
//! circuit simulation of the longest paths, with "piecewise linear sources
//! … iteratively adjusted to obtain worst-case path delays at every coupling
//! capacitance" (§6). This crate provides the equivalents:
//!
//! - [`logic`]: a three-valued event-driven gate-level simulator, used for
//!   functional validation of netlists and for switching-activity checks.
//! - [`circuit`]: flattening of library cells into individual transistors
//!   and capacitors — the circuit netlist the transient engine integrates.
//! - [`transient`]: a nonlinear transient simulator (backward Euler +
//!   per-node Newton/Gauss-Seidel relaxation) over the same table-based
//!   device models the timing engine uses, so STA-vs-simulation differences
//!   measure *analysis* error, not model error.
//! - [`path`]: construction of a longest-path subcircuit with coupled
//!   aggressor sources, and measurement of its delay.
//! - [`align`]: coordinate-ascent search for the aggressor switching times
//!   that maximize the simulated path delay — the paper's "iteratively
//!   adjusted" PWL sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod circuit;
pub mod logic;
pub mod path;
pub mod transient;

pub use circuit::{Circuit, NodeId, NodeRef};
pub use logic::LogicSim;
pub use path::{AggressorSpec, PathGateSpec, PathSpec};
pub use transient::{simulate, SimError, SimOptions, Transient};
