//! Three-valued event-driven gate-level logic simulation.
//!
//! Values are `Some(false)`, `Some(true)` or `None` (unknown/X). The
//! simulator supports combinational settling within a clock cycle and
//! rising-edge flip-flop updates between cycles, which is what the
//! synchronous circuits of the paper's benchmark suite need.

use xtalk_netlist::{GateId, NetId, Netlist};
use xtalk_tech::cell::Function;
use xtalk_tech::Library;

/// A gate-level logic simulator over a netlist.
#[derive(Debug, Clone)]
pub struct LogicSim<'a> {
    netlist: &'a Netlist,
    functions: Vec<Function>,
    order: Vec<GateId>,
    values: Vec<Option<bool>>,
    ff_state: Vec<Option<bool>>,
    /// Number of value changes in the last `settle` call.
    pub last_events: usize,
}

impl<'a> LogicSim<'a> {
    /// Builds a simulator; fails when the netlist does not levelize or uses
    /// unknown cells.
    ///
    /// # Errors
    ///
    /// Propagates [`xtalk_netlist::NetlistError`] from validation.
    pub fn new(
        netlist: &'a Netlist,
        library: &Library,
    ) -> Result<Self, xtalk_netlist::NetlistError> {
        let order = netlist.levelize(library)?;
        let functions = netlist
            .gates()
            .iter()
            .map(|g| {
                library.cell(&g.cell).map(|c| c.function).ok_or_else(|| {
                    xtalk_netlist::NetlistError::UnknownCell {
                        cell: g.cell.clone(),
                    }
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LogicSim {
            netlist,
            functions,
            order,
            values: vec![None; netlist.net_count()],
            ff_state: vec![None; netlist.gate_count()],
            last_events: 0,
        })
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Option<bool> {
        self.values[net.index()]
    }

    /// Forces a primary input (or any net) to a value.
    pub fn set(&mut self, net: NetId, value: Option<bool>) {
        self.values[net.index()] = value;
    }

    /// Propagates values through the combinational logic until stable.
    /// Flip-flop outputs keep their stored state.
    pub fn settle(&mut self) {
        self.last_events = 0;
        // First push FF states onto Q nets.
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            if self.functions[gi] == Function::Dff {
                let q = self.ff_state[gi];
                if self.values[gate.output.index()] != q {
                    self.values[gate.output.index()] = q;
                    self.last_events += 1;
                }
            }
        }
        // One pass in levelized order settles a DAG.
        for &g in &self.order {
            let gi = g.index();
            if self.functions[gi] == Function::Dff {
                continue;
            }
            let gate = &self.netlist.gates()[gi];
            let inputs: Vec<Option<bool>> = gate
                .inputs
                .iter()
                .map(|&n| self.values[n.index()])
                .collect();
            let out = self.functions[gi].eval(&inputs);
            if self.values[gate.output.index()] != out {
                self.values[gate.output.index()] = out;
                self.last_events += 1;
            }
        }
    }

    /// Applies a rising clock edge: every flip-flop captures its D input.
    /// Call [`LogicSim::settle`] afterwards to propagate the new state.
    pub fn clock(&mut self) {
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            if self.functions[gi] == Function::Dff {
                let d = gate.inputs[0];
                self.ff_state[gi] = self.values[d.index()];
            }
        }
    }

    /// Convenience: set all primary inputs (except clocks) from a bit
    /// iterator, settle, and return the primary-output values.
    pub fn run_vector(&mut self, bits: impl IntoIterator<Item = bool>) -> Vec<Option<bool>> {
        let pis: Vec<NetId> = self
            .netlist
            .primary_inputs()
            .filter(|&id| !self.netlist.net(id).is_clock)
            .collect();
        for (net, bit) in pis.into_iter().zip(bits) {
            self.set(net, Some(bit));
        }
        self.settle();
        self.netlist
            .primary_outputs()
            .map(|id| self.value(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_netlist::{bench, data, generator, generator::GeneratorConfig};
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn c17_truth_table_spot_checks() {
        let library = lib();
        let nl = bench::parse(data::C17_BENCH, &library).expect("parse");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        // c17: N22 = NAND(N10, N16), with N10 = NAND(N1,N3), N11 = NAND(N3,N6),
        // N16 = NAND(N2,N11), N19 = NAND(N11,N7), N23 = NAND(N16,N19).
        let case = |v: [bool; 5]| -> (Option<bool>, Option<bool>) {
            let n1 = !(v[0] & v[2]);
            let n11 = !(v[2] & v[3]);
            let n16 = !(v[1] & n11);
            let n19 = !(n11 & v[4]);
            (Some(!(n1 & n16)), Some(!(n16 & n19)))
        };
        let mut sim_inputs = |v: [bool; 5]| -> (Option<bool>, Option<bool>) {
            for (name, bit) in ["N1", "N2", "N3", "N6", "N7"].iter().zip(v) {
                let id = nl.net_by_name(name).expect("pi");
                sim.set(id, Some(bit));
            }
            sim.settle();
            (
                sim.value(nl.net_by_name("N22").expect("po")),
                sim.value(nl.net_by_name("N23").expect("po")),
            )
        };
        for pattern in 0..32u32 {
            let v = [
                pattern & 1 != 0,
                pattern & 2 != 0,
                pattern & 4 != 0,
                pattern & 8 != 0,
                pattern & 16 != 0,
            ];
            assert_eq!(sim_inputs(v), case(v), "pattern {pattern:05b}");
        }
    }

    #[test]
    fn unknowns_propagate() {
        let library = lib();
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", &library)
            .expect("parse");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        let a = nl.net_by_name("a").expect("a");
        let y = nl.net_by_name("y").expect("y");
        sim.set(a, Some(false));
        sim.settle();
        assert_eq!(sim.value(y), Some(false), "0 AND X = 0");
        sim.set(a, Some(true));
        sim.settle();
        assert_eq!(sim.value(y), None, "1 AND X = X");
    }

    #[test]
    fn s27_sequential_behaviour() {
        let library = lib();
        let nl = bench::parse(data::S27_BENCH, &library).expect("parse");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        // Drive all inputs high: with G0=1, G14=0 forces G8=0, and the OR/
        // NAND/NOR chain resolves G11=0 regardless of the X flip-flop state,
        // so the machine reaches a defined output within a cycle.
        for id in nl.primary_inputs() {
            if !nl.net(id).is_clock {
                sim.set(id, Some(true));
            }
        }
        for _ in 0..8 {
            sim.settle();
            sim.clock();
        }
        sim.settle();
        let g17 = nl.net_by_name("G17").expect("output");
        assert!(sim.value(g17).is_some(), "state must become defined");
    }

    #[test]
    fn run_vector_round() {
        let library = lib();
        let nl = bench::parse(data::C17_BENCH, &library).expect("parse");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        let outs = sim.run_vector([true, true, true, true, true]);
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().all(Option::is_some));
    }

    #[test]
    fn settle_counts_events() {
        let library = lib();
        let nl = bench::parse(data::C17_BENCH, &library).expect("parse");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        sim.run_vector([false; 5]);
        let first = sim.last_events;
        assert!(first > 0);
        // Re-settling with no input change produces no events.
        sim.settle();
        assert_eq!(sim.last_events, 0);
    }

    #[test]
    fn synthetic_circuit_settles_with_defined_outputs() {
        let library = lib();
        let nl = generator::generate(&GeneratorConfig::small(33), &library).expect("gen");
        let mut sim = LogicSim::new(&nl, &library).expect("sim");
        for id in nl.primary_inputs() {
            if !nl.net(id).is_clock {
                sim.set(id, Some(true));
            }
        }
        // A few cycles to flush X state out of the FFs.
        for _ in 0..4 {
            sim.settle();
            sim.clock();
        }
        sim.settle();
        let defined = nl
            .primary_outputs()
            .filter(|&id| sim.value(id).is_some())
            .count();
        assert!(defined > 0, "some outputs must be defined after reset");
    }
}
