//! Longest-path subcircuit construction and delay measurement.
//!
//! Reproduces the paper's validation methodology (§6): the longest path is
//! simulated at transistor level "with lumped resistances and capacitances
//! extracted from the layout", while each aggressor is an ideal piecewise-
//! linear source switching in the direction opposite to the victim at an
//! adjustable time. Off-path side inputs are held at their sensitizing
//! values; coupling caps to nets not modelled as aggressors load the victim
//! as grounded caps.

use std::collections::HashMap;

use xtalk_layout::Parasitics;
use xtalk_netlist::{GateId, NetId, Netlist};
use xtalk_tech::{Library, Process};
use xtalk_wave::pwl::Waveform;

use crate::circuit::{Circuit, Drive, NodeId, NodeRef};
use crate::transient::{simulate, SimError, SimOptions, Transient};

/// One combinational gate on the path.
#[derive(Debug, Clone)]
pub struct PathGateSpec {
    /// The gate instance.
    pub gate: GateId,
    /// Which input pin the path enters through.
    pub switching_pin: usize,
    /// Per-pin side voltages (the switching pin's entry is ignored).
    pub side_values: Vec<f64>,
}

/// An aggressor net modelled as an ideal source.
#[derive(Debug, Clone, Copy)]
pub struct AggressorSpec {
    /// The aggressor net.
    pub net: NetId,
    /// `true` when the aggressor transition is rising.
    pub rising: bool,
}

/// A combinational path to simulate.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Gates from launch to capture, in order; gate `k+1`'s switching pin
    /// is driven by gate `k`'s output net.
    pub gates: Vec<PathGateSpec>,
    /// The waveform launched into the first gate's switching pin.
    pub input_wave: Waveform,
    /// Aggressor nets to model as switching sources.
    pub aggressors: Vec<AggressorSpec>,
}

/// Errors building or measuring a path.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PathError {
    /// The path is empty.
    Empty,
    /// A path gate references an unknown library cell.
    UnknownCell {
        /// The cell name.
        cell: String,
    },
    /// A sequential cell appeared on the combinational path.
    SequentialOnPath {
        /// The gate's instance name.
        gate: String,
    },
    /// The transient simulation failed.
    Sim(SimError),
    /// The output never crossed the measurement threshold.
    NoTransition,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no gates"),
            PathError::UnknownCell { cell } => write!(f, "unknown cell `{cell}` on path"),
            PathError::SequentialOnPath { gate } => {
                write!(f, "sequential cell `{gate}` on a combinational path")
            }
            PathError::Sim(e) => write!(f, "transient simulation failed: {e}"),
            PathError::NoTransition => write!(f, "path output never transitioned"),
        }
    }
}

impl std::error::Error for PathError {}

impl From<SimError> for PathError {
    fn from(e: SimError) -> Self {
        PathError::Sim(e)
    }
}

/// Result of a path simulation.
#[derive(Debug, Clone)]
pub struct PathSimResult {
    /// Measured path delay: last Vdd/2 crossing of the output minus the
    /// input's Vdd/2 crossing, seconds.
    pub delay: f64,
    /// Node of the final output net (for trace inspection).
    pub output_node: NodeId,
    /// Node of the path input.
    pub input_node: NodeId,
    /// Per-path-net circuit nodes.
    pub net_nodes: Vec<NodeId>,
    /// The full transient (traces for plotting).
    pub transient: Transient,
}

/// Simulates `spec` with the given aggressor switching times (seconds,
/// same time base as `spec.input_wave`; one entry per aggressor).
///
/// # Errors
///
/// See [`PathError`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_path(
    netlist: &Netlist,
    library: &Library,
    process: &Process,
    parasitics: &Parasitics,
    spec: &PathSpec,
    aggressor_times: &[f64],
    options: Option<SimOptions>,
) -> Result<PathSimResult, PathError> {
    if spec.gates.is_empty() {
        return Err(PathError::Empty);
    }
    let vdd = process.vdd;
    let mut circuit = Circuit::new();

    // Transition direction at the input and after each gate.
    let mut dirs = Vec::with_capacity(spec.gates.len() + 1);
    dirs.push(spec.input_wave.is_rising());
    for pg in &spec.gates {
        let cell =
            library
                .cell(&netlist.gate(pg.gate).cell)
                .ok_or_else(|| PathError::UnknownCell {
                    cell: netlist.gate(pg.gate).cell.clone(),
                })?;
        if cell.is_sequential() {
            return Err(PathError::SequentialOnPath {
                gate: netlist.gate(pg.gate).name.clone(),
            });
        }
        let prev = *dirs.last().expect("nonempty");
        // Side-aware arc polarity: XOR/XNOR/MUX arcs invert or buffer
        // depending on the constant side values.
        let inverting = cell
            .arc_inverting(pg.switching_pin, &pg.side_values, process.vdd)
            .unwrap_or(cell.function.is_inverting());
        dirs.push(if inverting { !prev } else { prev });
    }

    // Input node.
    let input_node = circuit.add_node(
        "path_in",
        Drive::Pwl(spec.input_wave.clone()),
        0.0,
        spec.input_wave.initial_value(),
    );

    // Aggressor nodes.
    let mut aggressor_nodes: HashMap<NetId, NodeId> = HashMap::new();
    for (k, agg) in spec.aggressors.iter().enumerate() {
        let t = aggressor_times.get(k).copied().unwrap_or(0.0);
        let (v0, v1) = if agg.rising { (0.0, vdd) } else { (vdd, 0.0) };
        let wave = Waveform::step(t, v0, v1).expect("step waveform is valid");
        let id = circuit.add_node(
            format!("agg_{}", netlist.net(agg.net).name),
            Drive::Pwl(wave),
            0.0,
            v0,
        );
        aggressor_nodes.insert(agg.net, id);
    }

    // Path net nodes: one per gate output.
    let mut net_nodes = Vec::with_capacity(spec.gates.len());
    for (k, pg) in spec.gates.iter().enumerate() {
        let net = netlist.gate(pg.gate).output;
        let rising = dirs[k + 1];
        let node = circuit.add_node(
            format!("n_{}", netlist.net(net).name),
            Drive::Free,
            0.0,
            if rising { 0.0 } else { vdd },
        );
        net_nodes.push(node);
    }
    let path_net_of: HashMap<NetId, usize> = spec
        .gates
        .iter()
        .enumerate()
        .map(|(k, pg)| (netlist.gate(pg.gate).output, k))
        .collect();

    // Wire + off-circuit pin caps and coupling on each path net.
    for (k, pg) in spec.gates.iter().enumerate() {
        let net = netlist.gate(pg.gate).output;
        let node = NodeRef::Node(net_nodes[k]);
        let np = &parasitics.nets[net.index()];
        circuit.add_cap(node, np.cwire);
        // Pin caps of loads that are NOT instantiated in this subcircuit
        // (the next path gate adds its own gate caps through its devices).
        let next_gate = spec.gates.get(k + 1).map(|g| g.gate);
        for &(load, pin) in &netlist.net(net).loads {
            if Some(load) == next_gate {
                continue;
            }
            if let Some(cell) = library.cell(&netlist.gate(load).cell) {
                circuit.add_cap(node, cell.input_cap.get(pin).copied().unwrap_or(0.0));
            }
        }
        // Coupling caps: to aggressor sources as mutual caps, to everything
        // else as grounded caps (quiet neighbours).
        for cc in &np.couplings {
            if let Some(&agg_node) = aggressor_nodes.get(&cc.other) {
                circuit.add_mutual(node, NodeRef::Node(agg_node), cc.c);
            } else if path_net_of.contains_key(&cc.other) {
                // Path nets coupling to each other: real mutual cap.
                let other_k = path_net_of[&cc.other];
                if other_k > k {
                    circuit.add_mutual(node, NodeRef::Node(net_nodes[other_k]), cc.c);
                }
            } else {
                circuit.add_cap(node, cc.c);
            }
        }
    }

    // Instantiate the path gates.
    for (k, pg) in spec.gates.iter().enumerate() {
        let gate = netlist.gate(pg.gate);
        let cell = library.cell(&gate.cell).expect("checked above");
        let driver_node = if k == 0 {
            NodeRef::Node(input_node)
        } else {
            NodeRef::Node(net_nodes[k - 1])
        };
        let pins: Vec<NodeRef> = (0..cell.inputs.len())
            .map(|pin| {
                if pin == pg.switching_pin {
                    driver_node
                } else {
                    let v = pg.side_values.get(pin).copied().unwrap_or(0.0);
                    NodeRef::Node(circuit.add_node(
                        format!("{}_{}", gate.name, cell.inputs[pin]),
                        Drive::Const(v),
                        0.0,
                        v,
                    ))
                }
            })
            .collect();
        circuit.instantiate_cell(
            cell,
            &pins,
            NodeRef::Node(net_nodes[k]),
            None,
            library,
            process,
            &gate.name,
        );
    }

    // Simulate long enough for the last stage to settle.
    let t_guess = spec.input_wave.end_time() + spec.gates.len() as f64 * 0.6e-9 + 4e-9;
    let options = options.unwrap_or(SimOptions {
        t_stop: t_guess,
        ..SimOptions::default()
    });
    let transient = simulate(&circuit, process, &options)?;

    let th = process.delay_threshold();
    let out_node = *net_nodes.last().expect("nonempty path");
    let out_rising = *dirs.last().expect("nonempty");
    let t_out = transient
        .last_crossing(out_node, th, out_rising)
        .ok_or(PathError::NoTransition)?;
    let t_in = spec
        .input_wave
        .crossing(th)
        .ok_or(PathError::NoTransition)?;
    Ok(PathSimResult {
        delay: t_out - t_in,
        output_node: out_node,
        input_node,
        net_nodes,
        transient,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_layout::{extract, place, route};
    use xtalk_netlist::bench;
    use xtalk_tech::{Library, Process};

    /// Builds a 3-inverter chain with layout parasitics.
    fn chain_setup() -> (Process, Library, Netlist, Parasitics) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let text = "INPUT(a)\nOUTPUT(y)\nw1 = NOT(a)\nw2 = NOT(w1)\ny = NOT(w2)\n";
        let nl = bench::parse(text, &l).expect("parse");
        let pl = place::place(&nl, &l, &p);
        let r = route::route(&nl, &pl, &p);
        let para = extract::extract(&nl, &r, &p);
        (p, l, nl, para)
    }

    fn chain_spec(nl: &Netlist, p: &Process) -> PathSpec {
        let gates: Vec<PathGateSpec> = ["w1", "w2", "y"]
            .iter()
            .map(|n| {
                let net = nl.net_by_name(n).expect("net");
                PathGateSpec {
                    gate: nl.net(net).driver.expect("driver"),
                    switching_pin: 0,
                    side_values: vec![0.0],
                }
            })
            .collect();
        PathSpec {
            gates,
            input_wave: Waveform::ramp(1.5e-9, 0.2e-9, 0.0, p.vdd).expect("ramp"),
            aggressors: Vec::new(),
        }
    }

    #[test]
    fn inverter_chain_delay_positive_and_plausible() {
        let (p, l, nl, para) = chain_setup();
        let spec = chain_spec(&nl, &p);
        let r = simulate_path(&nl, &l, &p, &para, &spec, &[], None).expect("simulate");
        assert!(r.delay > 50e-12, "3-stage delay {}", r.delay);
        assert!(r.delay < 2e-9, "3-stage delay {}", r.delay);
    }

    #[test]
    fn aggressor_on_middle_net_adds_delay() {
        let (p, l, nl, para) = chain_setup();
        let mut spec = chain_spec(&nl, &p);
        let base = simulate_path(&nl, &l, &p, &para, &spec, &[], None)
            .expect("base")
            .delay;
        // Fake an aggressor coupled to w2 by injecting a coupling record.
        let w2 = nl.net_by_name("w2").expect("w2");
        let a = nl.net_by_name("a").expect("a"); // reuse a net id as aggressor handle
        let mut para2 = para.clone();
        para2.nets[w2.index()]
            .couplings
            .push(xtalk_layout::CouplingCap {
                other: a,
                c: 20e-15,
            });
        // w2 falls (a rises, w1 falls... w1 = NOT(a): falls? a rises =>
        // w1 falls => w2 rises => y falls). Aggressor must fall against a
        // rising w2.
        spec.aggressors = vec![AggressorSpec {
            net: a,
            rising: false,
        }];
        let t_mid = 2.2e-9; // roughly while w2 transitions
        let noisy = simulate_path(&nl, &l, &p, &para2, &spec, &[t_mid], None)
            .expect("noisy")
            .delay;
        assert!(
            noisy > base + 5e-12,
            "aggressor adds delay: {base} vs {noisy}"
        );
    }

    #[test]
    fn empty_path_rejected() {
        let (p, l, nl, para) = chain_setup();
        let spec = PathSpec {
            gates: Vec::new(),
            input_wave: Waveform::ramp(0.0, 1e-10, 0.0, 3.3).expect("ramp"),
            aggressors: Vec::new(),
        };
        assert_eq!(
            simulate_path(&nl, &l, &p, &para, &spec, &[], None).unwrap_err(),
            PathError::Empty
        );
    }

    #[test]
    fn nand_path_with_side_values() {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw = NAND(a, b)\ny = NOT(w)\n";
        let nl = bench::parse(text, &l).expect("parse");
        let pl = place::place(&nl, &l, &p);
        let r = route::route(&nl, &pl, &p);
        let para = extract::extract(&nl, &r, &p);
        let w = nl.net_by_name("w").expect("w");
        let y = nl.net_by_name("y").expect("y");
        let spec = PathSpec {
            gates: vec![
                PathGateSpec {
                    gate: nl.net(w).driver.expect("driver"),
                    switching_pin: 0,
                    side_values: vec![0.0, p.vdd],
                },
                PathGateSpec {
                    gate: nl.net(y).driver.expect("driver"),
                    switching_pin: 0,
                    side_values: vec![0.0],
                },
            ],
            input_wave: Waveform::ramp(1.5e-9, 0.2e-9, 0.0, p.vdd).expect("ramp"),
            aggressors: Vec::new(),
        };
        let res = simulate_path(&nl, &l, &p, &para, &spec, &[], None).expect("simulate");
        assert!(res.delay > 0.0 && res.delay < 2e-9, "delay {}", res.delay);
    }

    #[test]
    fn error_types_display() {
        assert!(PathError::Empty.to_string().contains("no gates"));
        assert!(PathError::NoTransition.to_string().contains("never"));
    }
}
