//! Adversarial aggressor alignment.
//!
//! The paper obtains its reference numbers by iteratively adjusting the
//! aggressors' piecewise-linear sources "to obtain worst-case path delays at
//! every coupling capacitance" (§6). [`coordinate_ascent`] is that loop: a
//! derivative-free coordinate search over the aggressor switching times that
//! maximizes an arbitrary delay oracle (here: one transient simulation per
//! probe).

/// Maximizes `delay(times)` over per-aggressor switching times by cyclic
/// coordinate ascent with a shrinking probe window.
///
/// * `delay` — oracle returning the measured delay for a time vector, or
///   `None` when the probe fails (treated as very bad).
/// * `initial` — starting times (e.g. the STA-predicted victim transition
///   time at each aggressor's coupling site).
/// * `window` — initial probe half-width, seconds.
/// * `rounds` — number of full passes over all aggressors; the window
///   halves each round.
///
/// Returns the best delay and the time vector achieving it. With no
/// aggressors the oracle is evaluated once at the empty vector.
pub fn coordinate_ascent(
    mut delay: impl FnMut(&[f64]) -> Option<f64>,
    initial: Vec<f64>,
    window: f64,
    rounds: usize,
) -> (f64, Vec<f64>) {
    let mut times = initial;
    let mut best = delay(&times).unwrap_or(f64::NEG_INFINITY);
    if times.is_empty() {
        return (best, times);
    }
    let mut w = window;
    for _ in 0..rounds {
        for k in 0..times.len() {
            let t0 = times[k];
            let mut best_t = t0;
            for cand in [t0 - w, t0 + w, t0 - 0.5 * w, t0 + 0.5 * w] {
                times[k] = cand;
                if let Some(d) = delay(&times) {
                    if d > best {
                        best = d;
                        best_t = cand;
                    }
                }
            }
            times[k] = best_t;
        }
        w *= 0.5;
    }
    (best, times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_concave_function() {
        // delay(t) peaks at t = 2ns.
        let oracle = |ts: &[f64]| -> Option<f64> {
            let t = ts[0];
            Some(1.0 - (t - 2e-9).abs() * 1e8)
        };
        let (best, times) = coordinate_ascent(oracle, vec![0.5e-9], 1e-9, 6);
        assert!((times[0] - 2e-9).abs() < 0.2e-9, "found {}", times[0]);
        assert!(best > 0.9);
    }

    #[test]
    fn multi_dimensional_peak() {
        let oracle = |ts: &[f64]| -> Option<f64> {
            Some(-(ts[0] - 1e-9).powi(2) * 1e18 - (ts[1] - 3e-9).powi(2) * 1e18)
        };
        let (_, times) = coordinate_ascent(oracle, vec![0.0, 0.0], 2e-9, 8);
        assert!((times[0] - 1e-9).abs() < 0.3e-9);
        assert!((times[1] - 3e-9).abs() < 0.3e-9);
    }

    #[test]
    fn empty_aggressor_list() {
        let (best, times) = coordinate_ascent(|_| Some(42.0), Vec::new(), 1e-9, 3);
        assert_eq!(best, 42.0);
        assert!(times.is_empty());
    }

    #[test]
    fn oracle_failures_do_not_crash() {
        let mut calls = 0usize;
        let oracle = |_: &[f64]| -> Option<f64> {
            calls += 1;
            None
        };
        let (best, times) = coordinate_ascent(oracle, vec![1e-9], 1e-9, 2);
        assert!(best.is_infinite() && best < 0.0);
        assert_eq!(times, vec![1e-9], "failed probes keep the original time");
    }

    #[test]
    fn never_decreases_from_initial() {
        // Sawtooth-ish oracle: ascent must end at least as good as start.
        let oracle =
            |ts: &[f64]| -> Option<f64> { Some((ts[0] * 1e9).sin() + (ts[0] * 3e9).cos() * 0.3) };
        let t0 = vec![1.1e-9];
        let initial = oracle(&t0).expect("oracle value");
        let (best, _) = coordinate_ascent(oracle, t0, 0.5e-9, 4);
        assert!(best >= initial - 1e-12);
    }
}
