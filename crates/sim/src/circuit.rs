//! Flat transistor-level circuit representation for transient simulation.
//!
//! A [`Circuit`] holds individual transistors and capacitors between nodes.
//! Nodes are either *free* (their voltage is integrated) or *forced*
//! (voltage prescribed over time — supply-quality sources, primary inputs,
//! and the aggressor PWL sources of the paper's §6 methodology).

use xtalk_tech::cell::{Network, Stage, StageSignal};
use xtalk_tech::mosfet::DeviceType;
use xtalk_tech::{Library, Process};
use xtalk_wave::pwl::Waveform;

/// Identifier of a circuit node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A device/capacitor terminal: a circuit node or a supply rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A circuit node.
    Node(NodeId),
    /// The positive supply.
    Vdd,
    /// Ground.
    Gnd,
}

/// How a node's voltage is determined.
#[derive(Debug, Clone)]
pub enum Drive {
    /// Integrated by the simulator.
    Free,
    /// Held at a constant voltage.
    Const(f64),
    /// Follows a piecewise-linear waveform.
    Pwl(Waveform),
}

/// One circuit node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Debug name.
    pub name: String,
    /// Drive kind.
    pub drive: Drive,
    /// Grounded capacitance, farads (meaningful for free nodes).
    pub cap: f64,
    /// Initial voltage for free nodes.
    pub v0: f64,
}

/// One MOS transistor.
#[derive(Debug, Clone, Copy)]
pub struct Device {
    /// Polarity.
    pub polarity: DeviceType,
    /// Gate width, metres.
    pub width: f64,
    /// Gate terminal.
    pub gate: NodeRef,
    /// Drain terminal (the stage-output side).
    pub drain: NodeRef,
    /// Source terminal (the rail side).
    pub source: NodeRef,
}

/// A two-terminal capacitor (used for coupling caps).
#[derive(Debug, Clone, Copy)]
pub struct MutualCap {
    /// First terminal.
    pub a: NodeRef,
    /// Second terminal.
    pub b: NodeRef,
    /// Capacitance, farads.
    pub c: f64,
}

/// A flat transistor-level circuit.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All transistors.
    pub devices: Vec<Device>,
    /// All floating (coupling) capacitors.
    pub mutual: Vec<MutualCap>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, drive: Drive, cap: f64, v0: f64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            drive,
            cap,
            v0,
        });
        id
    }

    /// Adds grounded capacitance to a node (no-op for rails).
    pub fn add_cap(&mut self, node: NodeRef, c: f64) {
        if let NodeRef::Node(id) = node {
            self.nodes[id.index()].cap += c;
        }
    }

    /// Adds a coupling capacitor.
    pub fn add_mutual(&mut self, a: NodeRef, b: NodeRef, c: f64) {
        self.mutual.push(MutualCap { a, b, c });
    }

    /// Number of free (integrated) nodes.
    pub fn free_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.drive, Drive::Free))
            .count()
    }

    /// Instantiates one cell [`Stage`] between the given pin nodes.
    ///
    /// `inputs[slot]` gives the node driving stage-input `slot`; `output` is
    /// the stage output node. Internal series-stack nodes are created as
    /// free nodes with their diffusion capacitance. Device diffusion also
    /// loads the output node.
    pub fn instantiate_stage(
        &mut self,
        stage: &Stage,
        inputs: &[NodeRef],
        output: NodeRef,
        process: &Process,
        name: &str,
    ) {
        self.flatten(
            &stage.pullup,
            output,
            NodeRef::Vdd,
            DeviceType::Pmos,
            inputs,
            process,
            name,
        );
        self.flatten(
            &stage.pulldown,
            output,
            NodeRef::Gnd,
            DeviceType::Nmos,
            inputs,
            process,
            name,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn flatten(
        &mut self,
        net: &Network,
        top: NodeRef,
        bottom: NodeRef,
        polarity: DeviceType,
        inputs: &[NodeRef],
        process: &Process,
        name: &str,
    ) {
        match net {
            Network::Device { input, width, .. } => {
                // Half the diffusion on each terminal.
                let cd = 0.5 * process.diffusion_cap(*width);
                self.add_cap(top, cd);
                self.add_cap(bottom, cd);
                self.devices.push(Device {
                    polarity,
                    width: *width,
                    gate: inputs[*input],
                    drain: top,
                    source: bottom,
                });
            }
            Network::Parallel(children) => {
                for c in children {
                    self.flatten(c, top, bottom, polarity, inputs, process, name);
                }
            }
            Network::Series(children) => {
                let mut upper = top;
                for (k, c) in children.iter().enumerate() {
                    let lower = if k + 1 == children.len() {
                        bottom
                    } else {
                        let mid = self.add_node(
                            format!("{name}.m{k}"),
                            Drive::Free,
                            0.2e-15, // small junction floor keeps integration stable
                            match polarity {
                                DeviceType::Nmos => 0.0,
                                DeviceType::Pmos => process.vdd,
                            },
                        );
                        NodeRef::Node(mid)
                    };
                    self.flatten(c, upper, lower, polarity, inputs, process, name);
                    upper = lower;
                }
            }
        }
    }

    /// Instantiates a whole cell: all stages, with internal nets created as
    /// free nodes. `pin_nodes[pin]` are the cell's input pin nodes,
    /// `output` its output node; `launch` (when given) drives the Launch
    /// signal of sequential cells.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate_cell(
        &mut self,
        cell: &xtalk_tech::Cell,
        pin_nodes: &[NodeRef],
        output: NodeRef,
        launch: Option<NodeRef>,
        library: &Library,
        process: &Process,
        name: &str,
    ) {
        let _ = library;
        // Create internal nodes, loaded with the gate caps of the stages
        // they drive.
        let internal: Vec<NodeId> = (0..cell.internal_nodes)
            .map(|i| self.add_node(format!("{name}.i{i}"), Drive::Free, 0.0, 0.0))
            .collect();
        let resolve = |sig: &StageSignal, internal: &[NodeId]| -> NodeRef {
            match sig {
                StageSignal::Pin(p) => pin_nodes.get(*p).copied().unwrap_or(NodeRef::Gnd),
                StageSignal::Internal(i) => NodeRef::Node(internal[*i]),
                StageSignal::Launch => launch.unwrap_or(NodeRef::Gnd),
            }
        };
        for (si, stage) in cell.stages.iter().enumerate() {
            let inputs: Vec<NodeRef> = stage.inputs.iter().map(|s| resolve(s, &internal)).collect();
            // Gate caps load whatever drives the stage.
            for (slot, node) in inputs.iter().enumerate() {
                self.add_cap(*node, stage.input_cap(slot, process));
            }
            let out = if stage.output == StageSignal::Pin(0) {
                output
            } else {
                resolve(&stage.output, &internal)
            };
            self.instantiate_stage(stage, &inputs, out, process, &format!("{name}.s{si}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn setup() -> (Process, Library) {
        let p = Process::c05um();
        (p.clone(), Library::c05um(&p))
    }

    #[test]
    fn inverter_flattens_to_two_devices() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let mut c = Circuit::new();
        let a = c.add_node("a", Drive::Const(0.0), 0.0, 0.0);
        let y = c.add_node("y", Drive::Free, 0.0, 0.0);
        c.instantiate_cell(
            inv,
            &[NodeRef::Node(a)],
            NodeRef::Node(y),
            None,
            &l,
            &p,
            "u0",
        );
        assert_eq!(c.devices.len(), 2);
        assert_eq!(c.free_count(), 1);
        // Output node carries diffusion cap.
        assert!(c.nodes[y.index()].cap > 0.0);
        // Input node carries gate cap.
        assert!(c.nodes[a.index()].cap > 0.0);
    }

    #[test]
    fn nand2_creates_stack_node() {
        let (p, l) = setup();
        let nand = l.cell("NAND2X1").expect("nand");
        let mut c = Circuit::new();
        let a = c.add_node("a", Drive::Const(3.3), 0.0, 0.0);
        let b = c.add_node("b", Drive::Const(3.3), 0.0, 0.0);
        let y = c.add_node("y", Drive::Free, 0.0, 0.0);
        c.instantiate_cell(
            nand,
            &[NodeRef::Node(a), NodeRef::Node(b)],
            NodeRef::Node(y),
            None,
            &l,
            &p,
            "u0",
        );
        assert_eq!(c.devices.len(), 4);
        // One internal NMOS stack node, free.
        assert_eq!(c.free_count(), 2);
    }

    #[test]
    fn xor_instantiates_all_stages() {
        let (p, l) = setup();
        let xor = l.cell("XOR2X1").expect("xor");
        let mut c = Circuit::new();
        let a = c.add_node("a", Drive::Const(0.0), 0.0, 0.0);
        let b = c.add_node("b", Drive::Const(0.0), 0.0, 0.0);
        let y = c.add_node("y", Drive::Free, 0.0, 0.0);
        c.instantiate_cell(
            xor,
            &[NodeRef::Node(a), NodeRef::Node(b)],
            NodeRef::Node(y),
            None,
            &l,
            &p,
            "u0",
        );
        assert_eq!(c.devices.len(), xor.device_count());
        // 3 internal nets + 4 NAND stack nodes + output-free? (output given)
        assert!(c.free_count() >= 7);
    }

    #[test]
    fn mutual_caps_recorded() {
        let mut c = Circuit::new();
        let a = c.add_node("a", Drive::Free, 1e-15, 0.0);
        let b = c.add_node("b", Drive::Free, 1e-15, 0.0);
        c.add_mutual(NodeRef::Node(a), NodeRef::Node(b), 2e-15);
        assert_eq!(c.mutual.len(), 1);
        assert!((c.mutual[0].c - 2e-15).abs() < 1e-24);
    }

    #[test]
    fn add_cap_ignores_rails() {
        let mut c = Circuit::new();
        c.add_cap(NodeRef::Vdd, 1e-15);
        c.add_cap(NodeRef::Gnd, 1e-15);
        assert!(c.nodes.is_empty());
    }
}
