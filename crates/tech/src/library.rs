//! The transistor-level standard-cell library.
//!
//! [`Library::c05um`] builds the cell set used by the reproduction: sized
//! complementary-CMOS gates for the generic 0.5 µm process. Single-stage
//! cells (INV, NAND, NOR, AOI, OAI) map to one transistor stage; composite
//! cells (BUF, AND, OR, XOR, XNOR, MUX) are chains of primitive stages, and
//! the D flip-flop is a sequential cell whose Q output is re-launched from
//! the clock through a two-inverter driver.
//!
//! ```
//! use xtalk_tech::{Library, Process};
//!
//! let process = Process::c05um();
//! let lib = Library::c05um(&process);
//! let nand2 = lib.cell("NAND2X1").expect("library cell");
//! assert_eq!(nand2.inputs.len(), 2);
//! assert_eq!(nand2.device_count(), 4);
//! ```

use std::collections::BTreeMap;

use crate::cell::{Cell, Function, Network, SeqSpec, Stage, StageSignal};
use crate::process::Process;

const L: f64 = 0.5e-6;
const UM: f64 = 1.0e-6;

/// A named collection of [`Cell`]s.
#[derive(Debug, Clone, Default)]
pub struct Library {
    cells: BTreeMap<String, Cell>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// Builds the default 0.5 µm library, with input capacitances computed
    /// from the transistor geometry of `process`.
    pub fn c05um(process: &Process) -> Self {
        let mut lib = Library::new();
        for mut cell in build_cells() {
            cell.compute_input_caps(process);
            lib.insert(cell);
        }
        lib
    }

    /// Adds a cell, replacing any cell of the same name.
    pub fn insert(&mut self, cell: Cell) {
        self.cells.insert(cell.name.clone(), cell);
    }

    /// Looks a cell up by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Iterates over all cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Picks the canonical cell for a boolean function with `n` inputs, as
    /// used by the `.bench` reader and the synthetic circuit generator.
    ///
    /// Returns `None` when the library has no matching cell.
    pub fn cell_for_function(&self, function: Function, n: usize) -> Option<&Cell> {
        let name = match (function, n) {
            (Function::Inv, _) => "INVX1",
            (Function::Buf, _) => "BUFX2",
            (Function::Nand, 2) => "NAND2X1",
            (Function::Nand, 3) => "NAND3X1",
            (Function::Nand, 4) => "NAND4X1",
            (Function::Nor, 2) => "NOR2X1",
            (Function::Nor, 3) => "NOR3X1",
            (Function::And, 2) => "AND2X1",
            (Function::And, 3) => "AND3X1",
            (Function::Or, 2) => "OR2X1",
            (Function::Or, 3) => "OR3X1",
            (Function::Xor, _) => "XOR2X1",
            (Function::Xnor, _) => "XNOR2X1",
            (Function::Mux2, _) => "MUX2X1",
            (Function::Aoi21, _) => "AOI21X1",
            (Function::Oai21, _) => "OAI21X1",
            (Function::Dff, _) => "DFFX1",
            _ => return None,
        };
        self.cell(name)
    }
}

impl<'a> IntoIterator for &'a Library {
    type Item = &'a Cell;
    type IntoIter = std::collections::btree_map::Values<'a, String, Cell>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.values()
    }
}

fn letters(n: usize) -> Vec<String> {
    ["A", "B", "C", "D"][..n]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn single_stage(
    name: &str,
    function: Function,
    n: usize,
    pullup: Network,
    pulldown: Network,
    area: usize,
) -> Cell {
    Cell {
        name: name.to_string(),
        inputs: letters(n),
        output: "Y".to_string(),
        function,
        stages: vec![Stage {
            inputs: (0..n).map(StageSignal::Pin).collect(),
            output: StageSignal::Pin(0),
            pullup,
            pulldown,
        }],
        internal_nodes: 0,
        seq: None,
        area_sites: area,
        input_cap: Vec::new(),
    }
}

fn inverter_cell(name: &str, scale: f64, area: usize) -> Cell {
    single_stage(
        name,
        Function::Inv,
        1,
        Network::device(0, scale * 4.0 * UM, L),
        Network::device(0, scale * 2.0 * UM, L),
        area,
    )
}

fn nand_cell(name: &str, n: usize, scale: f64, area: usize) -> Cell {
    // Series NMOS widened by the stack depth to keep the pull-down drive.
    let wn = scale * 2.0 * UM * n as f64;
    let wp = scale * 4.0 * UM;
    single_stage(
        name,
        Function::Nand,
        n,
        Network::Parallel((0..n).map(|i| Network::device(i, wp, L)).collect()),
        Network::Series((0..n).map(|i| Network::device(i, wn, L)).collect()),
        area,
    )
}

fn nor_cell(name: &str, n: usize, scale: f64, area: usize) -> Cell {
    let wp = scale * 4.0 * UM * n as f64;
    let wn = scale * 2.0 * UM;
    single_stage(
        name,
        Function::Nor,
        n,
        Network::Series((0..n).map(|i| Network::device(i, wp, L)).collect()),
        Network::Parallel((0..n).map(|i| Network::device(i, wn, L)).collect()),
        area,
    )
}

/// NAND2 stage with arbitrary input signals, used inside composite cells.
fn nand2_stage(a: StageSignal, b: StageSignal, out: StageSignal, scale: f64) -> Stage {
    Stage {
        inputs: vec![a, b],
        output: out,
        pullup: Network::Parallel(vec![
            Network::device(0, scale * 4.0 * UM, L),
            Network::device(1, scale * 4.0 * UM, L),
        ]),
        pulldown: Network::Series(vec![
            Network::device(0, scale * 4.0 * UM, L),
            Network::device(1, scale * 4.0 * UM, L),
        ]),
    }
}

fn inv_stage(input: StageSignal, output: StageSignal, scale: f64) -> Stage {
    Stage::inverter(input, output, scale * 4.0 * UM, scale * 2.0 * UM, L)
}

fn buffer_cell(name: &str, out_scale: f64, area: usize) -> Cell {
    Cell {
        name: name.to_string(),
        inputs: letters(1),
        output: "Y".to_string(),
        function: Function::Buf,
        stages: vec![
            inv_stage(
                StageSignal::Pin(0),
                StageSignal::Internal(0),
                out_scale * 0.35,
            ),
            inv_stage(StageSignal::Internal(0), StageSignal::Pin(0), out_scale),
        ],
        internal_nodes: 1,
        seq: None,
        area_sites: area,
        input_cap: Vec::new(),
    }
}

fn and_or_cell(name: &str, function: Function, n: usize, area: usize) -> Cell {
    // AND = NAND + INV, OR = NOR + INV.
    let first = match function {
        Function::And => nand_cell("tmp", n, 1.0, 0).stages.remove(0),
        Function::Or => nor_cell("tmp", n, 1.0, 0).stages.remove(0),
        _ => unreachable!("and_or_cell only builds AND/OR"),
    };
    let mut first = first;
    first.output = StageSignal::Internal(0);
    Cell {
        name: name.to_string(),
        inputs: letters(n),
        output: "Y".to_string(),
        function,
        stages: vec![
            first,
            inv_stage(StageSignal::Internal(0), StageSignal::Pin(0), 1.0),
        ],
        internal_nodes: 1,
        seq: None,
        area_sites: area,
        input_cap: Vec::new(),
    }
}

fn xor2_cell() -> Cell {
    // Classic 4-NAND decomposition:
    //   n0 = NAND(A, B); n1 = NAND(A, n0); n2 = NAND(B, n0); Y = NAND(n1, n2)
    use StageSignal::{Internal, Pin};
    Cell {
        name: "XOR2X1".to_string(),
        inputs: letters(2),
        output: "Y".to_string(),
        function: Function::Xor,
        stages: vec![
            nand2_stage(Pin(0), Pin(1), Internal(0), 1.0),
            nand2_stage(Pin(0), Internal(0), Internal(1), 1.0),
            nand2_stage(Pin(1), Internal(0), Internal(2), 1.0),
            nand2_stage(Internal(1), Internal(2), Pin(0), 1.0),
        ],
        internal_nodes: 3,
        seq: None,
        area_sites: 8,
        input_cap: Vec::new(),
    }
}

fn xnor2_cell() -> Cell {
    use StageSignal::{Internal, Pin};
    let mut c = xor2_cell();
    c.name = "XNOR2X1".to_string();
    c.function = Function::Xnor;
    // XOR result goes to an extra internal node, then an inverter drives Y.
    c.stages[3].output = Internal(3);
    c.stages.push(inv_stage(Internal(3), Pin(0), 1.0));
    c.internal_nodes = 4;
    c.area_sites = 9;
    c
}

fn mux2_cell() -> Cell {
    // Y = NAND(NAND(D0, !S), NAND(D1, S)); inputs [D0, D1, S].
    use StageSignal::{Internal, Pin};
    Cell {
        name: "MUX2X1".to_string(),
        inputs: vec!["D0".to_string(), "D1".to_string(), "S".to_string()],
        output: "Y".to_string(),
        function: Function::Mux2,
        stages: vec![
            inv_stage(Pin(2), Internal(0), 1.0),
            nand2_stage(Pin(0), Internal(0), Internal(1), 1.0),
            nand2_stage(Pin(1), Pin(2), Internal(2), 1.0),
            nand2_stage(Internal(1), Internal(2), Pin(0), 1.0),
        ],
        internal_nodes: 3,
        seq: None,
        area_sites: 8,
        input_cap: Vec::new(),
    }
}

fn dff_cell() -> Cell {
    use StageSignal::{Internal, Launch, Pin};
    Cell {
        name: "DFFX1".to_string(),
        inputs: vec!["D".to_string(), "CK".to_string()],
        output: "Q".to_string(),
        function: Function::Dff,
        // The Q driver: the timing engine applies the launch transition at
        // the active clock edge and solves this two-inverter chain for the
        // clock-to-Q delay and the launched waveform shape.
        stages: vec![
            inv_stage(Launch, Internal(0), 0.5),
            inv_stage(Internal(0), Pin(0), 1.0),
        ],
        internal_nodes: 1,
        seq: Some(SeqSpec {
            d_pin: 0,
            clk_pin: 1,
        }),
        area_sites: 10,
        input_cap: Vec::new(),
    }
}

fn aoi21_cell() -> Cell {
    // Y = !((A & B) | C)
    single_stage(
        "AOI21X1",
        Function::Aoi21,
        3,
        Network::Series(vec![
            Network::Parallel(vec![
                Network::device(0, 8.0 * UM, L),
                Network::device(1, 8.0 * UM, L),
            ]),
            Network::device(2, 8.0 * UM, L),
        ]),
        Network::Parallel(vec![
            Network::Series(vec![
                Network::device(0, 4.0 * UM, L),
                Network::device(1, 4.0 * UM, L),
            ]),
            Network::device(2, 2.0 * UM, L),
        ]),
        4,
    )
}

fn oai21_cell() -> Cell {
    // Y = !((A | B) & C)
    single_stage(
        "OAI21X1",
        Function::Oai21,
        3,
        Network::Parallel(vec![
            Network::Series(vec![
                Network::device(0, 8.0 * UM, L),
                Network::device(1, 8.0 * UM, L),
            ]),
            Network::device(2, 4.0 * UM, L),
        ]),
        Network::Series(vec![
            Network::Parallel(vec![
                Network::device(0, 4.0 * UM, L),
                Network::device(1, 4.0 * UM, L),
            ]),
            Network::device(2, 4.0 * UM, L),
        ]),
        4,
    )
}

fn build_cells() -> Vec<Cell> {
    let mut cells = vec![
        inverter_cell("INVX1", 1.0, 2),
        inverter_cell("INVX2", 2.0, 3),
        inverter_cell("INVX4", 4.0, 4),
        inverter_cell("INVX8", 8.0, 6),
        buffer_cell("BUFX2", 2.0, 4),
        buffer_cell("BUFX4", 4.0, 5),
        buffer_cell("CLKBUFX4", 4.0, 6),
        buffer_cell("CLKBUFX8", 8.0, 8),
        nand_cell("NAND2X1", 2, 1.0, 3),
        nand_cell("NAND2X2", 2, 2.0, 4),
        nand_cell("NAND3X1", 3, 1.0, 4),
        nand_cell("NAND4X1", 4, 1.0, 5),
        nor_cell("NOR2X1", 2, 1.0, 3),
        nor_cell("NOR2X2", 2, 2.0, 4),
        nor_cell("NOR3X1", 3, 1.0, 4),
        and_or_cell("AND2X1", Function::And, 2, 4),
        and_or_cell("AND3X1", Function::And, 3, 5),
        and_or_cell("OR2X1", Function::Or, 2, 4),
        and_or_cell("OR3X1", Function::Or, 3, 5),
        xor2_cell(),
        xnor2_cell(),
        mux2_cell(),
        aoi21_cell(),
        oai21_cell(),
        dff_cell(),
    ];
    for cell in &mut cells {
        debug_assert!(!cell.inputs.is_empty());
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::StageSignal;

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    #[test]
    fn library_has_expected_cells() {
        let lib = lib();
        for name in [
            "INVX1", "INVX2", "INVX4", "INVX8", "BUFX2", "BUFX4", "CLKBUFX4", "CLKBUFX8",
            "NAND2X1", "NAND2X2", "NAND3X1", "NAND4X1", "NOR2X1", "NOR2X2", "NOR3X1", "AND2X1",
            "AND3X1", "OR2X1", "OR3X1", "XOR2X1", "XNOR2X1", "MUX2X1", "AOI21X1", "OAI21X1",
            "DFFX1",
        ] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
        assert_eq!(lib.len(), 25);
        assert!(!lib.is_empty());
    }

    #[test]
    fn input_caps_computed_and_positive() {
        let lib = lib();
        for cell in &lib {
            assert_eq!(cell.input_cap.len(), cell.inputs.len(), "{}", cell.name);
            for (pin, cap) in cell.input_cap.iter().enumerate() {
                assert!(
                    *cap > 0.5e-15 && *cap < 200e-15,
                    "{} pin {pin}: implausible cap {cap}",
                    cell.name
                );
            }
        }
    }

    #[test]
    fn stage_outputs_wellformed() {
        let lib = lib();
        for cell in &lib {
            let last = cell.stages.last().expect("cells have stages");
            assert_eq!(
                last.output,
                StageSignal::Pin(0),
                "{}: final stage must drive the output pin",
                cell.name
            );
            for stage in &cell.stages {
                for sig in &stage.inputs {
                    match sig {
                        StageSignal::Pin(i) => assert!(*i < cell.inputs.len()),
                        StageSignal::Internal(i) => assert!(*i < cell.internal_nodes),
                        StageSignal::Launch => assert!(cell.is_sequential()),
                    }
                }
            }
        }
    }

    #[test]
    fn internal_nodes_driven_exactly_once() {
        let lib = lib();
        for cell in &lib {
            let mut driven = vec![0usize; cell.internal_nodes];
            for stage in &cell.stages {
                if let StageSignal::Internal(i) = stage.output {
                    driven[i] += 1;
                }
            }
            for (i, d) in driven.iter().enumerate() {
                assert_eq!(*d, 1, "{}: internal node {i} driven {d} times", cell.name);
            }
        }
    }

    #[test]
    fn xor_decomposition_is_logically_xor() {
        let lib = lib();
        let xor = lib.cell("XOR2X1").expect("xor cell");
        for a in [false, true] {
            for b in [false, true] {
                let mut internals = vec![None; xor.internal_nodes];
                let mut out = None;
                for stage in &xor.stages {
                    let val = |slot: usize| match stage.inputs[slot] {
                        StageSignal::Pin(0) => Some(a),
                        StageSignal::Pin(1) => Some(b),
                        StageSignal::Internal(i) => internals[i],
                        _ => None,
                    };
                    let v = stage.eval(val);
                    match stage.output {
                        StageSignal::Internal(i) => internals[i] = v,
                        StageSignal::Pin(0) => out = v,
                        _ => {}
                    }
                }
                assert_eq!(out, Some(a ^ b), "XOR({a},{b})");
            }
        }
    }

    #[test]
    fn mux_decomposition_is_logically_mux() {
        let lib = lib();
        let mux = lib.cell("MUX2X1").expect("mux cell");
        for d0 in [false, true] {
            for d1 in [false, true] {
                for s in [false, true] {
                    let mut internals = vec![None; mux.internal_nodes];
                    let mut out = None;
                    for stage in &mux.stages {
                        let val = |slot: usize| match stage.inputs[slot] {
                            StageSignal::Pin(0) => Some(d0),
                            StageSignal::Pin(1) => Some(d1),
                            StageSignal::Pin(2) => Some(s),
                            StageSignal::Internal(i) => internals[i],
                            _ => None,
                        };
                        let v = stage.eval(val);
                        match stage.output {
                            StageSignal::Internal(i) => internals[i] = v,
                            StageSignal::Pin(0) => out = v,
                            _ => {}
                        }
                    }
                    assert_eq!(out, Some(if s { d1 } else { d0 }), "MUX({d0},{d1},{s})");
                }
            }
        }
    }

    #[test]
    fn dff_is_sequential_with_pins() {
        let lib = lib();
        let dff = lib.cell("DFFX1").expect("dff cell");
        let seq = dff.seq.as_ref().expect("sequential spec");
        assert_eq!(dff.inputs[seq.d_pin], "D");
        assert_eq!(dff.inputs[seq.clk_pin], "CK");
        assert!(dff.is_sequential());
    }

    #[test]
    fn function_selection() {
        let lib = lib();
        assert_eq!(
            lib.cell_for_function(Function::Nand, 3)
                .map(|c| c.name.as_str()),
            Some("NAND3X1")
        );
        assert_eq!(
            lib.cell_for_function(Function::Inv, 1)
                .map(|c| c.name.as_str()),
            Some("INVX1")
        );
        assert!(lib.cell_for_function(Function::Nand, 7).is_none());
    }

    #[test]
    fn bigger_drives_have_bigger_caps() {
        let lib = lib();
        let x1 = lib.cell("INVX1").expect("invx1").input_cap[0];
        let x4 = lib.cell("INVX4").expect("invx4").input_cap[0];
        assert!(x4 > 3.0 * x1 && x4 < 5.0 * x1);
    }
}
