//! Analytical MOSFET DC model (alpha-power law with sub-threshold region).
//!
//! This is the "golden" device model of the technology. It is *sampled* into
//! [`crate::table::DeviceTable`]s which are what the timing engine and the
//! transient simulator actually evaluate — mirroring the paper's §3 choice of
//! a table-based transistor representation (after Dartu & Pileggi's TETA).
//!
//! The strong-inversion part follows the Sakurai–Newton alpha-power law,
//! which captures velocity saturation in short-channel devices:
//!
//! ```text
//! Vgst   = Vgs - Vth
//! Idsat  = (W / Leff) * (Pc / 2) * Vgst^alpha          (per device)
//! Vdsat  = Pv * Vgst^(alpha / 2)
//! Id     = Idsat * (2 - Vds/Vdsat) * (Vds/Vdsat)       Vds <  Vdsat (linear)
//! Id     = Idsat * (1 + lambda * Vds)                  Vds >= Vdsat (saturation)
//! ```
//!
//! Below threshold the drain current decays exponentially with the usual
//! `exp(Vgst / (n * vT))` slope. The paper explicitly notes that the
//! sub-threshold region is why the coupling-model restart voltage must be
//! chosen *below* the device threshold (0.2 V vs. 0.6 V) — so the model here
//! keeps a smooth, non-zero sub-threshold current.
//!
//! ```
//! use xtalk_tech::mosfet::{DeviceType, MosfetParams};
//!
//! let nmos = MosfetParams::nmos_05um();
//! let strong = nmos.drain_current(3.3, 3.3, 2.0e-6);
//! let weak = nmos.drain_current(0.3, 3.3, 2.0e-6);
//! assert!(strong > 1e-4);          // hundreds of microamps
//! assert!(weak < strong * 1e-3);   // sub-threshold is orders weaker
//! ```

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Polarity of a MOS device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeviceType {
    /// N-channel device (pull-down networks).
    Nmos,
    /// P-channel device (pull-up networks).
    Pmos,
}

impl DeviceType {
    /// Returns the complementary device type.
    ///
    /// ```
    /// use xtalk_tech::mosfet::DeviceType;
    /// assert_eq!(DeviceType::Nmos.complement(), DeviceType::Pmos);
    /// ```
    pub fn complement(self) -> DeviceType {
        match self {
            DeviceType::Nmos => DeviceType::Pmos,
            DeviceType::Pmos => DeviceType::Nmos,
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceType::Nmos => write!(f, "nmos"),
            DeviceType::Pmos => write!(f, "pmos"),
        }
    }
}

/// Alpha-power-law parameters of one device polarity.
///
/// All voltages are magnitudes: for a PMOS the caller passes `Vsg` / `Vsd`
/// (source-referenced, positive when the device conducts), so one set of
/// equations serves both polarities.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MosfetParams {
    /// Device polarity this parameter set describes.
    pub device: DeviceType,
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Velocity-saturation exponent (2.0 = long channel, ~1.2 = very short).
    pub alpha: f64,
    /// Drive-strength coefficient, A / V^alpha for a W/Leff ratio of 1.
    pub pc: f64,
    /// Saturation-voltage coefficient, V^(1 - alpha/2).
    pub pv: f64,
    /// Channel-length-modulation coefficient, 1/V.
    pub lambda: f64,
    /// Effective channel length, metres.
    pub leff: f64,
    /// Sub-threshold leakage scale at `Vgs == Vth`, A for W/Leff of 1.
    pub i0: f64,
    /// Sub-threshold slope factor `n` (swing = n * vT * ln 10).
    pub n_sub: f64,
}

impl MosfetParams {
    /// NMOS parameters for the generic 0.5 µm process.
    ///
    /// Calibrated so a minimum-length device drives roughly 420 µA per µm of
    /// width at `Vgs = Vds = 3.3 V`, which is representative of mid-90s
    /// half-micron CMOS.
    pub fn nmos_05um() -> Self {
        MosfetParams {
            device: DeviceType::Nmos,
            vth: 0.6,
            alpha: 1.3,
            pc: 1.16e-4,
            pv: 0.78,
            lambda: 0.05,
            leff: 0.5e-6,
            i0: 5.0e-8,
            n_sub: 1.5,
        }
    }

    /// PMOS parameters for the generic 0.5 µm process (about half the NMOS
    /// drive per width, as hole mobility dictates).
    pub fn pmos_05um() -> Self {
        MosfetParams {
            device: DeviceType::Pmos,
            vth: 0.6,
            alpha: 1.4,
            pc: 5.5e-5,
            pv: 0.85,
            lambda: 0.05,
            leff: 0.5e-6,
            i0: 2.0e-8,
            n_sub: 1.5,
        }
    }

    /// Drain current for terminal voltages referenced so the device conducts
    /// with positive `vds` (i.e. pass `Vgs, Vds` for NMOS and `Vsg, Vsd` for
    /// PMOS).
    ///
    /// Negative `vds` is handled by the MOS source/drain symmetry
    /// `Id(Vgs, Vds) = -Id(Vgs - Vds, -Vds)`.
    ///
    /// `width` is the drawn gate width in metres; current scales linearly
    /// with `width / leff`.
    pub fn drain_current(&self, vgs: f64, vds: f64, width: f64) -> f64 {
        if vds < 0.0 {
            return -self.drain_current(vgs - vds, -vds, width);
        }
        let wl = width / self.leff;
        let vgst = vgs - self.vth;

        // Sub-threshold component: exponential below Vth, saturating at i0
        // above it (the strong-inversion term dominates there anyway).
        let sub_arg = (vgst.min(0.0)) / (self.n_sub * THERMAL_VOLTAGE);
        let i_sub = wl * self.i0 * sub_arg.exp() * (1.0 - (-vds / THERMAL_VOLTAGE).exp());

        if vgst <= 0.0 {
            return i_sub;
        }

        let idsat = wl * 0.5 * self.pc * vgst.powf(self.alpha);
        let vdsat = self.pv * vgst.powf(self.alpha * 0.5);
        let i_strong = if vds < vdsat {
            let x = vds / vdsat;
            idsat * (2.0 - x) * x * (1.0 + self.lambda * vds)
        } else {
            idsat * (1.0 + self.lambda * vds)
        };
        i_strong + i_sub
    }

    /// Saturation drain voltage for the given gate overdrive (0 below
    /// threshold).
    pub fn vdsat(&self, vgs: f64) -> f64 {
        let vgst = vgs - self.vth;
        if vgst <= 0.0 {
            0.0
        } else {
            self.pv * vgst.powf(self.alpha * 0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UM: f64 = 1.0e-6;

    #[test]
    fn nmos_drive_strength_plausible_for_05um() {
        let n = MosfetParams::nmos_05um();
        let per_um = n.drain_current(3.3, 3.3, UM) / UM * 1e-6; // A per um
                                                                // 0.5um NMOS: 300..600 uA/um is the plausible band.
        assert!(per_um > 300e-6 && per_um < 600e-6, "got {per_um}");
    }

    #[test]
    fn pmos_weaker_than_nmos() {
        let n = MosfetParams::nmos_05um();
        let p = MosfetParams::pmos_05um();
        let idn = n.drain_current(3.3, 3.3, UM);
        let idp = p.drain_current(3.3, 3.3, UM);
        assert!(idp < idn);
        assert!(idp > 0.25 * idn, "PMOS should not be absurdly weak");
    }

    #[test]
    fn zero_vds_zero_current() {
        let n = MosfetParams::nmos_05um();
        assert_eq!(n.drain_current(3.3, 0.0, UM), 0.0);
        assert_eq!(n.drain_current(0.0, 0.0, UM), 0.0);
    }

    #[test]
    fn current_monotone_in_vgs() {
        let n = MosfetParams::nmos_05um();
        let mut prev = -1.0;
        for i in 0..34 {
            let vgs = i as f64 * 0.1;
            let id = n.drain_current(vgs, 3.3, UM);
            assert!(id >= prev, "Ids must not decrease with Vgs");
            prev = id;
        }
    }

    #[test]
    fn current_monotone_in_vds() {
        let n = MosfetParams::nmos_05um();
        let mut prev = -1.0;
        for i in 0..34 {
            let vds = i as f64 * 0.1;
            let id = n.drain_current(2.0, vds, UM);
            assert!(
                id >= prev,
                "Ids must not decrease with Vds, got {id} < {prev}"
            );
            prev = id;
        }
    }

    #[test]
    fn linear_saturation_continuity() {
        let n = MosfetParams::nmos_05um();
        let vgs = 2.5;
        let vdsat = n.vdsat(vgs);
        let lo = n.drain_current(vgs, vdsat - 1e-6, UM);
        let hi = n.drain_current(vgs, vdsat + 1e-6, UM);
        assert!((lo - hi).abs() / hi < 1e-3, "kink at vdsat: {lo} vs {hi}");
    }

    #[test]
    fn symmetry_for_negative_vds() {
        let n = MosfetParams::nmos_05um();
        let fwd = n.drain_current(2.0 + 1.0, 1.0, UM);
        let rev = n.drain_current(2.0, -1.0, UM);
        assert!((fwd + rev).abs() < 1e-12, "Id(Vgs,Vds) = -Id(Vgs-Vds,-Vds)");
    }

    #[test]
    fn subthreshold_is_exponential() {
        let n = MosfetParams::nmos_05um();
        let i1 = n.drain_current(0.5, 3.3, UM);
        let i2 = n.drain_current(0.4, 3.3, UM);
        let ratio = i1 / i2;
        let expect = (0.1 / (n.n_sub * THERMAL_VOLTAGE)).exp();
        assert!((ratio / expect - 1.0).abs() < 0.05);
    }

    #[test]
    fn current_scales_linearly_with_width() {
        let n = MosfetParams::nmos_05um();
        let i1 = n.drain_current(3.3, 1.5, UM);
        let i2 = n.drain_current(3.3, 1.5, 2.0 * UM);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn device_type_complement_and_display() {
        assert_eq!(DeviceType::Pmos.complement(), DeviceType::Nmos);
        assert_eq!(DeviceType::Nmos.to_string(), "nmos");
        assert_eq!(DeviceType::Pmos.to_string(), "pmos");
    }
}
