//! Process description: supply, thresholds, device tables, wire parasitics.
//!
//! [`Process`] is the single object the rest of the analyzer needs to know
//! about a technology. [`Process::c05um`] builds a generic 0.5 µm, 3.3 V,
//! two-metal-layer process consistent with the paper's experimental setup
//! (ISCAS89 circuits "routed in a 0.5 µm process technology with two metal
//! layers", transistor threshold 0.6 V, coupling-model threshold 0.2 V).

use crate::mosfet::{DeviceType, MosfetParams};
use crate::table::DeviceTable;

/// Electrical description of one routing layer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerTech {
    /// Layer name ("M1", "M2", ...).
    pub name: String,
    /// Routing track pitch in metres (width + spacing).
    pub pitch: f64,
    /// Minimum wire width in metres.
    pub width: f64,
    /// Wire resistance per metre of minimum-width wire, ohms/m.
    pub r_per_m: f64,
    /// Wire capacitance to ground (area + fringe) per metre, farads/m.
    pub c_per_m: f64,
    /// Coupling capacitance per metre of parallel run to an adjacent track
    /// at minimum spacing, farads/m.
    pub cc_per_m: f64,
}

/// A complete process technology.
///
/// Everything downstream — cell library sizing, parasitic extraction, the
/// waveform engine, the transient simulator — reads its constants from here,
/// so an analysis is reproducible from (netlist, seed, process).
#[derive(Debug, Clone)]
pub struct Process {
    /// Human-readable process name.
    pub name: String,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Restart/quiescence threshold of the coupling model (paper §2: 0.2 V,
    /// deliberately below the 0.6 V device threshold to stay clear of
    /// sub-threshold conduction effects).
    pub coupling_vth: f64,
    /// Fraction of `vdd` where delays are measured (0.5).
    pub delay_threshold_frac: f64,
    /// Lower slew measurement fraction (0.1).
    pub slew_lo_frac: f64,
    /// Upper slew measurement fraction (0.9).
    pub slew_hi_frac: f64,
    /// Default transition time assumed on primary inputs, seconds.
    pub default_input_slew: f64,
    /// Gate-oxide capacitance per area, F/m^2 (for input pin caps).
    pub cox_per_area: f64,
    /// Source/drain diffusion capacitance per metre of device width, F/m
    /// (loads the driving stage's own output).
    pub cdiff_per_m: f64,
    /// Standard-cell row height, metres (placement).
    pub row_height: f64,
    /// Standard-cell placement site width, metres.
    pub site_width: f64,
    /// Routing layers, index 0 = M1 (horizontal), 1 = M2 (vertical).
    pub layers: Vec<LayerTech>,
    nmos: MosfetParams,
    pmos: MosfetParams,
    nmos_table: DeviceTable,
    pmos_table: DeviceTable,
}

impl Process {
    /// Builds the generic 0.5 µm / 3.3 V / two-metal process used throughout
    /// the reproduction.
    ///
    /// ```
    /// let p = xtalk_tech::Process::c05um();
    /// assert_eq!(p.vdd, 3.3);
    /// assert_eq!(p.coupling_vth, 0.2);
    /// assert_eq!(p.layers.len(), 2);
    /// ```
    pub fn c05um() -> Self {
        let vdd = 3.3;
        let nmos = MosfetParams::nmos_05um();
        let pmos = MosfetParams::pmos_05um();
        // 129 samples per axis: "fine discretization" so plain Newton
        // converges (paper §3).
        let nmos_table = DeviceTable::from_params(&nmos, vdd, 129);
        let pmos_table = DeviceTable::from_params(&pmos, vdd, 129);
        Process {
            name: "generic-0.5um-2LM".to_string(),
            vdd,
            coupling_vth: 0.2,
            delay_threshold_frac: 0.5,
            slew_lo_frac: 0.1,
            slew_hi_frac: 0.9,
            default_input_slew: 0.2e-9,
            cox_per_area: 3.45e-3,
            cdiff_per_m: 1.0e-9,
            row_height: 12.0e-6,
            site_width: 3.0e-6,
            layers: vec![
                LayerTech {
                    name: "M1".to_string(),
                    pitch: 1.6e-6,
                    width: 0.8e-6,
                    r_per_m: 8.75e4,
                    c_per_m: 1.5e-10,
                    cc_per_m: 5.0e-11,
                },
                LayerTech {
                    name: "M2".to_string(),
                    pitch: 1.8e-6,
                    width: 0.9e-6,
                    r_per_m: 6.0e4,
                    c_per_m: 1.3e-10,
                    cc_per_m: 4.5e-11,
                },
            ],
            nmos,
            pmos,
            nmos_table,
            pmos_table,
        }
    }

    /// The analytical parameters of the requested device polarity.
    pub fn params(&self, device: DeviceType) -> &MosfetParams {
        match device {
            DeviceType::Nmos => &self.nmos,
            DeviceType::Pmos => &self.pmos,
        }
    }

    /// The sampled lookup table of the requested device polarity.
    pub fn table(&self, device: DeviceType) -> &DeviceTable {
        match device {
            DeviceType::Nmos => &self.nmos_table,
            DeviceType::Pmos => &self.pmos_table,
        }
    }

    /// Absolute voltage at which delays are measured (`vdd / 2` by default).
    pub fn delay_threshold(&self) -> f64 {
        self.delay_threshold_frac * self.vdd
    }

    /// Absolute `(low, high)` voltages between which transition times are
    /// measured.
    pub fn slew_thresholds(&self) -> (f64, f64) {
        (self.slew_lo_frac * self.vdd, self.slew_hi_frac * self.vdd)
    }

    /// Input capacitance of a gate terminal of the given geometry.
    pub fn gate_cap(&self, width: f64, length: f64) -> f64 {
        self.cox_per_area * width * length
    }

    /// Diffusion capacitance contributed to an output node by a device of
    /// the given width.
    pub fn diffusion_cap(&self, width: f64) -> f64 {
        self.cdiff_per_m * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c05um_sanity() {
        let p = Process::c05um();
        assert_eq!(p.vdd, 3.3);
        assert_eq!(p.coupling_vth, 0.2);
        assert!(p.coupling_vth < p.params(DeviceType::Nmos).vth);
        assert_eq!(p.layers.len(), 2);
        assert!((p.delay_threshold() - 1.65).abs() < 1e-12);
        let (lo, hi) = p.slew_thresholds();
        assert!(lo < hi && hi < p.vdd);
    }

    #[test]
    fn tables_match_polarity() {
        let p = Process::c05um();
        assert_eq!(p.table(DeviceType::Nmos).params().device, DeviceType::Nmos);
        assert_eq!(p.table(DeviceType::Pmos).params().device, DeviceType::Pmos);
    }

    #[test]
    fn gate_cap_plausible() {
        let p = Process::c05um();
        // 2um x 0.5um gate: a few femtofarads.
        let c = p.gate_cap(2.0e-6, 0.5e-6);
        assert!(c > 1.0e-15 && c < 10.0e-15, "got {c}");
    }

    #[test]
    fn diffusion_cap_scales_with_width() {
        let p = Process::c05um();
        let c1 = p.diffusion_cap(2.0e-6);
        let c2 = p.diffusion_cap(4.0e-6);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wire_constants_plausible() {
        let p = Process::c05um();
        for layer in &p.layers {
            // 1 mm of wire: tens to hundreds of ohms, 100-200 fF.
            let r = layer.r_per_m * 1.0e-3;
            let c = layer.c_per_m * 1.0e-3;
            assert!(r > 10.0 && r < 1000.0, "{}: R/mm = {r}", layer.name);
            assert!(c > 50.0e-15 && c < 500.0e-15, "{}: C/mm = {c}", layer.name);
            assert!(layer.cc_per_m < layer.c_per_m);
            // Lateral coupling is roughly a third of the total wire cap at
            // average spacing in a two-metal 0.5um process.
            assert!(
                layer.cc_per_m > 0.15 * layer.c_per_m,
                "coupling must matter"
            );
        }
    }
}
