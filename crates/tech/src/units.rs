//! Newtypes for physical quantities.
//!
//! Internally the numeric kernels of `xtalk` work on plain SI `f64` values
//! (volts, seconds, farads, ohms, amperes, metres) for speed; these newtypes
//! are used at public API boundaries where confusing a capacitance for a
//! resistance would be a silent disaster. Each type wraps an SI value and
//! offers convenience constructors/accessors in the unit engineers actually
//! use for the quantity (nanoseconds, femtofarads, microns, ...).
//!
//! ```
//! use xtalk_tech::units::{Farads, Seconds};
//!
//! let c = Farads::from_ff(12.5);
//! assert!((c.as_ff() - 12.5).abs() < 1e-9);
//! let t = Seconds::from_ns(0.35);
//! assert!((t.get() - 0.35e-9).abs() < 1e-21);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a value from the base SI amount.
            pub const fn new(si: f64) -> Self {
                $name(si)
            }

            /// Returns the base SI amount.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// The larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// `true` when the value is finite (not NaN / infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: Self) -> Self {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: Self) -> Self {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> Self {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> Self {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> Self {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(si: f64) -> Self {
                $name(si)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

unit_newtype!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit_newtype!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit_newtype!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit_newtype!(
    /// Resistance in ohms.
    Ohms,
    "Ohm"
);
unit_newtype!(
    /// Current in amperes.
    Amps,
    "A"
);
unit_newtype!(
    /// Length in metres.
    Metres,
    "m"
);

impl Seconds {
    /// Creates a time from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Creates a time from picoseconds.
    pub fn from_ps(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Returns the time expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the time expressed in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 * 1e12
    }
}

impl Farads {
    /// Creates a capacitance from femtofarads.
    pub fn from_ff(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Creates a capacitance from picofarads.
    pub fn from_pf(pf: f64) -> Self {
        Farads(pf * 1e-12)
    }

    /// Returns the capacitance expressed in femtofarads.
    pub fn as_ff(self) -> f64 {
        self.0 * 1e15
    }

    /// Returns the capacitance expressed in picofarads.
    pub fn as_pf(self) -> f64 {
        self.0 * 1e12
    }
}

impl Metres {
    /// Creates a length from microns.
    pub fn from_um(um: f64) -> Self {
        Metres(um * 1e-6)
    }

    /// Returns the length expressed in microns.
    pub fn as_um(self) -> f64 {
        self.0 * 1e6
    }
}

impl Ohms {
    /// Creates a resistance from kilo-ohms.
    pub fn from_kohm(kohm: f64) -> Self {
        Ohms(kohm * 1e3)
    }

    /// Returns the resistance expressed in kilo-ohms.
    pub fn as_kohm(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Amps {
    /// Creates a current from microamperes.
    pub fn from_ua(ua: f64) -> Self {
        Amps(ua * 1e-6)
    }

    /// Returns the current expressed in microamperes.
    pub fn as_ua(self) -> f64 {
        self.0 * 1e6
    }
}

/// `R * C` gives a time constant.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds::new(self.get() * rhs.get())
    }
}

/// `C * R` gives a time constant.
impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds::new(self.get() * rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_si_roundtrip() {
        let v = Volts::new(3.3);
        assert_eq!(v.get(), 3.3);
        assert_eq!(f64::from(v), 3.3);
        assert_eq!(Volts::from(1.0), Volts::new(1.0));
    }

    #[test]
    fn scaled_constructors() {
        assert!((Seconds::from_ns(1.0).get() - 1e-9).abs() < 1e-24);
        assert!((Seconds::from_ps(1.0).get() - 1e-12).abs() < 1e-24);
        assert!((Farads::from_ff(1.0).get() - 1e-15).abs() < 1e-30);
        assert!((Farads::from_pf(1.0).get() - 1e-12).abs() < 1e-27);
        assert!((Metres::from_um(1.0).get() - 1e-6).abs() < 1e-20);
        assert!((Ohms::from_kohm(1.0).get() - 1e3).abs() < 1e-9);
        assert!((Amps::from_ua(1.0).get() - 1e-6).abs() < 1e-20);
    }

    #[test]
    fn scaled_accessors_roundtrip() {
        assert!((Seconds::from_ns(2.5).as_ns() - 2.5).abs() < 1e-12);
        assert!((Seconds::from_ps(2.5).as_ps() - 2.5).abs() < 1e-9);
        assert!((Farads::from_ff(7.0).as_ff() - 7.0).abs() < 1e-9);
        assert!((Farads::from_pf(7.0).as_pf() - 7.0).abs() < 1e-9);
        assert!((Metres::from_um(40.0).as_um() - 40.0).abs() < 1e-9);
        assert!((Ohms::from_kohm(3.0).as_kohm() - 3.0).abs() < 1e-12);
        assert!((Amps::from_ua(150.0).as_ua() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::from_ns(1.0);
        let b = Seconds::from_ns(2.0);
        assert!((a + b).as_ns() - 3.0 < 1e-9);
        assert!((b - a).as_ns() - 1.0 < 1e-9);
        assert!(((b * 2.0).as_ns() - 4.0).abs() < 1e-9);
        assert!(((b / 2.0).as_ns() - 1.0).abs() < 1e-9);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert_eq!(-a, Seconds::from_ns(-1.0));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut t = Seconds::ZERO;
        t += Seconds::from_ns(1.0);
        t += Seconds::from_ns(2.0);
        t -= Seconds::from_ns(0.5);
        assert!((t.as_ns() - 2.5).abs() < 1e-9);

        let total: Farads = [1.0, 2.0, 3.0].iter().map(|&ff| Farads::from_ff(ff)).sum();
        assert!((total.as_ff() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rc_product_is_time() {
        let tau = Ohms::from_kohm(1.0) * Farads::from_pf(1.0);
        assert!((tau.as_ns() - 1.0).abs() < 1e-9);
        let tau2 = Farads::from_pf(1.0) * Ohms::from_kohm(1.0);
        assert_eq!(tau, tau2);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Volts::new(3.3)), "3.3 V");
        assert_eq!(format!("{}", Ohms::new(10.0)), "10 Ohm");
    }

    #[test]
    fn finiteness() {
        assert!(Volts::new(1.0).is_finite());
        assert!(!Volts::new(f64::NAN).is_finite());
        assert!(!Volts::new(f64::INFINITY).is_finite());
    }
}
