//! Transistor-level standard-cell description.
//!
//! Every combinational cell is a chain of one or more **stages**, where a
//! stage is a single complementary-CMOS structure: a PMOS pull-up network
//! between VDD and the stage output and an NMOS pull-down network between
//! the output and ground, both expressed as series/parallel trees
//! ([`Network`]). Multi-stage cells (buffers, AND/OR, XOR, MUX) are
//! decompositions into these primitive stages — which is exactly the
//! granularity the transistor-level waveform engine of the paper (§3)
//! operates on.
//!
//! Sequential cells (D flip-flops) carry a [`SeqSpec`]: the D pin is a
//! timing endpoint and the Q pin is re-launched from the clock through a
//! two-inverter output driver.

use crate::process::Process;

/// A series/parallel transistor network between a rail and a stage output.
///
/// `Device.input` indexes into the owning [`Stage`]'s `inputs` list; the
/// polarity (NMOS/PMOS) is implied by which side of the stage the network
/// sits on, so it is not stored per device.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Network {
    /// A single transistor whose gate is driven by stage input `input`.
    Device {
        /// Index into the stage's `inputs` vector.
        input: usize,
        /// Drawn gate width, metres.
        width: f64,
        /// Drawn gate length, metres.
        length: f64,
    },
    /// Networks in series. By convention element 0 is adjacent to the stage
    /// output and the last element is adjacent to the rail.
    Series(Vec<Network>),
    /// Networks in parallel.
    Parallel(Vec<Network>),
}

impl Network {
    /// Convenience constructor for a single device.
    pub fn device(input: usize, width: f64, length: f64) -> Self {
        Network::Device {
            input,
            width,
            length,
        }
    }

    /// Total number of transistors in the network.
    pub fn device_count(&self) -> usize {
        match self {
            Network::Device { .. } => 1,
            Network::Series(v) | Network::Parallel(v) => v.iter().map(Network::device_count).sum(),
        }
    }

    /// Sum of gate capacitance this network presents to stage input `input`.
    pub fn gate_cap_for_input(&self, input: usize, process: &Process) -> f64 {
        match self {
            Network::Device {
                input: i,
                width,
                length,
            } => {
                if *i == input {
                    process.gate_cap(*width, *length)
                } else {
                    0.0
                }
            }
            Network::Series(v) | Network::Parallel(v) => {
                v.iter().map(|n| n.gate_cap_for_input(input, process)).sum()
            }
        }
    }

    /// Total width of the devices whose diffusion touches the stage output
    /// (element 0 of a series chain; every branch of a parallel group).
    pub fn output_adjacent_width(&self) -> f64 {
        match self {
            Network::Device { width, .. } => *width,
            Network::Series(v) => v.first().map_or(0.0, Network::output_adjacent_width),
            Network::Parallel(v) => v.iter().map(Network::output_adjacent_width).sum(),
        }
    }

    /// Largest number of stacked (series) devices on any path through the
    /// network — the stack depth the internal-node solver must handle.
    pub fn max_stack_depth(&self) -> usize {
        match self {
            Network::Device { .. } => 1,
            Network::Series(v) => v.iter().map(Network::max_stack_depth).sum(),
            Network::Parallel(v) => v.iter().map(Network::max_stack_depth).max().unwrap_or(0),
        }
    }

    /// Whether the network conducts given the boolean state of each stage
    /// input (`states[input]`; `None` = unknown → returns `None` unless the
    /// known inputs already decide the answer).
    pub fn conducts(&self, on: impl Fn(usize) -> Option<bool> + Copy) -> Option<bool> {
        match self {
            Network::Device { input, .. } => on(*input),
            Network::Series(v) => {
                let mut any_unknown = false;
                for n in v {
                    match n.conducts(on) {
                        Some(false) => return Some(false),
                        None => any_unknown = true,
                        Some(true) => {}
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Network::Parallel(v) => {
                let mut any_unknown = false;
                for n in v {
                    match n.conducts(on) {
                        Some(true) => return Some(true),
                        None => any_unknown = true,
                        Some(false) => {}
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Visits every device in the network.
    pub fn for_each_device(&self, f: &mut impl FnMut(usize, f64, f64)) {
        match self {
            Network::Device {
                input,
                width,
                length,
            } => f(*input, *width, *length),
            Network::Series(v) | Network::Parallel(v) => {
                for n in v {
                    n.for_each_device(f);
                }
            }
        }
    }
}

/// What drives a stage input or receives a stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StageSignal {
    /// An external cell pin, by index into [`Cell::inputs`] (for stage
    /// inputs) or the cell output (for the final stage's output).
    Pin(usize),
    /// A cell-internal node, by index.
    Internal(usize),
    /// The launch node of a sequential cell's output driver (set by the
    /// timing engine at the active clock edge).
    Launch,
}

/// One complementary-CMOS stage of a cell.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stage {
    /// Signals driving the transistor gates; device `input` indices refer
    /// to this list.
    pub inputs: Vec<StageSignal>,
    /// Where the stage output goes.
    pub output: StageSignal,
    /// PMOS network from VDD to the output.
    pub pullup: Network,
    /// NMOS network from the output to ground.
    pub pulldown: Network,
}

impl Stage {
    /// Builds an inverter stage.
    pub fn inverter(input: StageSignal, output: StageSignal, wp: f64, wn: f64, l: f64) -> Self {
        Stage {
            inputs: vec![input],
            output,
            pullup: Network::device(0, wp, l),
            pulldown: Network::device(0, wn, l),
        }
    }

    /// Capacitance of the stage's own output node (drain diffusion of the
    /// output-adjacent devices).
    pub fn output_diffusion_cap(&self, process: &Process) -> f64 {
        process.diffusion_cap(
            self.pullup.output_adjacent_width() + self.pulldown.output_adjacent_width(),
        )
    }

    /// Input capacitance the stage presents on stage-input slot `slot`.
    pub fn input_cap(&self, slot: usize, process: &Process) -> f64 {
        self.pullup.gate_cap_for_input(slot, process)
            + self.pulldown.gate_cap_for_input(slot, process)
    }

    /// The stage's logic value given per-slot input values
    /// (complementary stage: output = NOT(pulldown conducts)).
    pub fn eval(&self, values: impl Fn(usize) -> Option<bool> + Copy) -> Option<bool> {
        // In a well-formed complementary stage pull-up conducts exactly when
        // pull-down does not; evaluating the pull-down suffices, but if it is
        // unknown the pull-up may still decide (e.g. one known input).
        match self.pulldown.conducts(values) {
            Some(b) => Some(!b),
            None => self.pullup.conducts(|i| values(i).map(|v| !v)).map(|b| !b),
        }
    }
}

/// The boolean function of a cell, for logic simulation and netlist I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Function {
    /// Logical inversion.
    Inv,
    /// Identity.
    Buf,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// Two-input exclusive OR.
    Xor,
    /// Two-input exclusive NOR.
    Xnor,
    /// Two-to-one multiplexer; inputs are `[d0, d1, s]`.
    Mux2,
    /// And-or-invert: `!((a & b) | c)`; inputs are `[a, b, c]`.
    Aoi21,
    /// Or-and-invert: `!((a | b) & c)`; inputs are `[a, b, c]`.
    Oai21,
    /// Rising-edge D flip-flop; inputs are `[d, ck]`.
    Dff,
}

impl Function {
    /// Evaluates the combinational function on three-valued inputs
    /// (`None` = unknown). [`Function::Dff`] always returns `None` — its
    /// behaviour is stateful and handled by the logic simulator.
    pub fn eval(&self, inputs: &[Option<bool>]) -> Option<bool> {
        fn fold_and(inputs: &[Option<bool>]) -> Option<bool> {
            let mut unknown = false;
            for v in inputs {
                match v {
                    Some(false) => return Some(false),
                    None => unknown = true,
                    Some(true) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(true)
            }
        }
        fn fold_or(inputs: &[Option<bool>]) -> Option<bool> {
            let mut unknown = false;
            for v in inputs {
                match v {
                    Some(true) => return Some(true),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
        match self {
            Function::Inv => inputs[0].map(|v| !v),
            Function::Buf => inputs[0],
            Function::And => fold_and(inputs),
            Function::Nand => fold_and(inputs).map(|v| !v),
            Function::Or => fold_or(inputs),
            Function::Nor => fold_or(inputs).map(|v| !v),
            Function::Xor => match (inputs[0], inputs[1]) {
                (Some(a), Some(b)) => Some(a ^ b),
                _ => None,
            },
            Function::Xnor => match (inputs[0], inputs[1]) {
                (Some(a), Some(b)) => Some(!(a ^ b)),
                _ => None,
            },
            Function::Mux2 => match inputs[2] {
                Some(false) => inputs[0],
                Some(true) => inputs[1],
                None => match (inputs[0], inputs[1]) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    _ => None,
                },
            },
            Function::Aoi21 => {
                let ab = fold_and(&inputs[..2]);
                fold_or(&[ab, inputs[2]]).map(|v| !v)
            }
            Function::Oai21 => {
                let ab = fold_or(&inputs[..2]);
                fold_and(&[ab, inputs[2]]).map(|v| !v)
            }
            Function::Dff => None,
        }
    }

    /// Number of inputs this function takes when instantiated with `n`
    /// data inputs (fixed for Xor/Xnor/Mux2/Inv/Buf/Dff).
    pub fn is_inverting(&self) -> bool {
        matches!(
            self,
            Function::Inv | Function::Nand | Function::Nor | Function::Aoi21 | Function::Oai21
        )
    }
}

/// Sequential behaviour of a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeqSpec {
    /// Index of the data pin within [`Cell::inputs`].
    pub d_pin: usize,
    /// Index of the clock pin within [`Cell::inputs`].
    pub clk_pin: usize,
}

/// A standard cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Library name, e.g. `"NAND2X1"`.
    pub name: String,
    /// Ordered input pin names.
    pub inputs: Vec<String>,
    /// Output pin name.
    pub output: String,
    /// Boolean function (for logic simulation and `.bench` I/O).
    pub function: Function,
    /// Transistor stages in topological order; the last stage drives the
    /// output pin.
    pub stages: Vec<Stage>,
    /// Number of cell-internal nodes referenced by [`StageSignal::Internal`].
    pub internal_nodes: usize,
    /// Sequential behaviour, if any.
    pub seq: Option<SeqSpec>,
    /// Placement width in sites.
    pub area_sites: usize,
    /// Per-input-pin capacitance, farads (filled in by the library builder).
    pub input_cap: Vec<f64>,
}

impl Cell {
    /// Index of the input pin with the given name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|p| p == name)
    }

    /// Recomputes `input_cap` from the transistor geometry.
    pub fn compute_input_caps(&mut self, process: &Process) {
        self.input_cap = (0..self.inputs.len())
            .map(|pin| {
                let mut cap = 0.0;
                for stage in &self.stages {
                    for (slot, sig) in stage.inputs.iter().enumerate() {
                        if *sig == StageSignal::Pin(pin) {
                            cap += stage.input_cap(slot, process);
                        }
                    }
                }
                // Sequential data/clock pins also load internal latch
                // circuitry that the stage list doesn't model; charge them a
                // nominal two-transistor gate load.
                if cap == 0.0 {
                    cap = 2.0 * process.gate_cap(2.0e-6, 0.5e-6);
                }
                cap
            })
            .collect();
    }

    /// Sensitizing constant side voltages for the cell-level arc through
    /// `pin`, derived from the boolean [`Function`]: one voltage per input
    /// pin, with the `pin` entry a placeholder 0. Returns `None` for
    /// sequential cells or out-of-range pins.
    ///
    /// For AND-like functions the other pins go high, for OR-like ones low;
    /// XOR/XNOR hold the other input low (identity/inversion path) and MUX
    /// selects the switching data pin.
    pub fn sensitizing_side_values(&self, pin: usize, vdd: f64) -> Option<Vec<f64>> {
        let n = self.inputs.len();
        if pin >= n {
            return None;
        }
        let mut v = vec![0.0; n];
        match self.function {
            Function::Inv | Function::Buf => {}
            Function::And | Function::Nand => {
                for (k, value) in v.iter_mut().enumerate() {
                    if k != pin {
                        *value = vdd;
                    }
                }
            }
            Function::Or | Function::Nor => {}
            Function::Xor | Function::Xnor => {}
            Function::Mux2 => match pin {
                0 => v[2] = 0.0,
                1 => v[2] = vdd,
                2 => {
                    v[0] = 0.0;
                    v[1] = vdd;
                }
                _ => return None,
            },
            Function::Aoi21 => match pin {
                0 => v[1] = vdd,
                1 => v[0] = vdd,
                2 => {}
                _ => return None,
            },
            Function::Oai21 => match pin {
                0 => v[2] = vdd,
                1 => v[2] = vdd,
                2 => v[0] = vdd,
                _ => return None,
            },
            Function::Dff => return None,
        }
        Some(v)
    }

    /// Whether the cell arc from input `pin` to the output is *inverting*
    /// under the given constant side voltages (entries above `vdd/2` count
    /// as logic 1; the `pin` entry is ignored).
    ///
    /// Unlike [`Function::is_inverting`], this is exact for cells whose arc
    /// polarity depends on the side values (XOR/XNOR/MUX): `XNOR(a, 0)`
    /// inverts while `XNOR(a, 1)` buffers. Returns `None` when the side
    /// assignment does not sensitize the arc (the output does not flip) or
    /// the cell is sequential.
    pub fn arc_inverting(&self, pin: usize, side_voltages: &[f64], vdd: f64) -> Option<bool> {
        if self.function == Function::Dff || pin >= self.inputs.len() {
            return None;
        }
        let eval_with = |value: bool| -> Option<bool> {
            let inputs: Vec<Option<bool>> = (0..self.inputs.len())
                .map(|k| {
                    if k == pin {
                        Some(value)
                    } else {
                        Some(side_voltages.get(k).copied().unwrap_or(0.0) > 0.5 * vdd)
                    }
                })
                .collect();
            self.function.eval(&inputs)
        };
        let lo = eval_with(false)?;
        let hi = eval_with(true)?;
        if lo == hi {
            return None;
        }
        Some(!hi)
    }

    /// Total transistor count over all stages.
    pub fn device_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.pullup.device_count() + s.pulldown.device_count())
            .sum()
    }

    /// `true` if the cell is a storage element.
    pub fn is_sequential(&self) -> bool {
        self.seq.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UM: f64 = 1.0e-6;

    fn nand2_stage() -> Stage {
        Stage {
            inputs: vec![StageSignal::Pin(0), StageSignal::Pin(1)],
            output: StageSignal::Pin(0),
            pullup: Network::Parallel(vec![
                Network::device(0, 4.0 * UM, 0.5 * UM),
                Network::device(1, 4.0 * UM, 0.5 * UM),
            ]),
            pulldown: Network::Series(vec![
                Network::device(0, 4.0 * UM, 0.5 * UM),
                Network::device(1, 4.0 * UM, 0.5 * UM),
            ]),
        }
    }

    #[test]
    fn network_counts() {
        let s = nand2_stage();
        assert_eq!(s.pullup.device_count(), 2);
        assert_eq!(s.pulldown.device_count(), 2);
        assert_eq!(s.pulldown.max_stack_depth(), 2);
        assert_eq!(s.pullup.max_stack_depth(), 1);
    }

    #[test]
    fn output_adjacent_width() {
        let s = nand2_stage();
        // Parallel pull-up: both devices touch the output.
        assert!((s.pullup.output_adjacent_width() - 8.0 * UM).abs() < 1e-12);
        // Series pull-down: only the head device touches the output.
        assert!((s.pulldown.output_adjacent_width() - 4.0 * UM).abs() < 1e-12);
    }

    #[test]
    fn nand_conduction_logic() {
        let s = nand2_stage();
        let val = |a: Option<bool>, b: Option<bool>| move |i: usize| if i == 0 { a } else { b };
        assert_eq!(s.eval(val(Some(true), Some(true))), Some(false));
        assert_eq!(s.eval(val(Some(true), Some(false))), Some(true));
        assert_eq!(s.eval(val(Some(false), None)), Some(true)); // controlled
        assert_eq!(s.eval(val(Some(true), None)), None);
    }

    #[test]
    fn function_eval_three_valued() {
        use Function::*;
        let t = Some(true);
        let f = Some(false);
        let x: Option<bool> = None;
        assert_eq!(Inv.eval(&[t]), f);
        assert_eq!(Buf.eval(&[x]), x);
        assert_eq!(And.eval(&[t, f]), f);
        assert_eq!(And.eval(&[t, x]), x);
        assert_eq!(And.eval(&[f, x]), f);
        assert_eq!(Nand.eval(&[t, t]), f);
        assert_eq!(Or.eval(&[f, t]), t);
        assert_eq!(Or.eval(&[x, t]), t);
        assert_eq!(Nor.eval(&[f, f]), t);
        assert_eq!(Xor.eval(&[t, f]), t);
        assert_eq!(Xor.eval(&[t, x]), x);
        assert_eq!(Xnor.eval(&[t, t]), t);
        assert_eq!(Mux2.eval(&[t, f, f]), t);
        assert_eq!(Mux2.eval(&[t, f, t]), f);
        assert_eq!(Mux2.eval(&[t, t, x]), t);
        assert_eq!(Mux2.eval(&[t, f, x]), x);
        assert_eq!(Aoi21.eval(&[t, t, f]), f);
        assert_eq!(Aoi21.eval(&[t, f, f]), t);
        assert_eq!(Aoi21.eval(&[x, f, t]), f);
        assert_eq!(Aoi21.eval(&[x, t, f]), x);
        assert_eq!(Oai21.eval(&[f, f, t]), t);
        assert_eq!(Oai21.eval(&[t, f, t]), f);
        assert_eq!(Oai21.eval(&[x, t, f]), t);
        assert_eq!(Oai21.eval(&[x, f, t]), x);
        assert_eq!(Dff.eval(&[t, t]), x);
    }

    #[test]
    fn arc_inverting_tracks_side_values() {
        use crate::library::Library;
        use crate::process::Process;
        let lib = Library::c05um(&Process::c05um());
        let vdd = 3.3;
        let xnor = lib.cell("XNOR2X1").expect("xnor");
        assert_eq!(xnor.arc_inverting(0, &[0.0, 0.0], vdd), Some(true));
        assert_eq!(xnor.arc_inverting(0, &[0.0, vdd], vdd), Some(false));
        let xor = lib.cell("XOR2X1").expect("xor");
        assert_eq!(xor.arc_inverting(0, &[0.0, 0.0], vdd), Some(false));
        assert_eq!(xor.arc_inverting(0, &[0.0, vdd], vdd), Some(true));
        let nand = lib.cell("NAND2X1").expect("nand");
        assert_eq!(nand.arc_inverting(1, &[vdd, 0.0], vdd), Some(true));
        // Non-sensitizing sides: NAND with the other input low is stuck.
        assert_eq!(nand.arc_inverting(1, &[0.0, 0.0], vdd), None);
        let dff = lib.cell("DFFX1").expect("dff");
        assert_eq!(dff.arc_inverting(0, &[0.0, 0.0], vdd), None);
        let mux = lib.cell("MUX2X1").expect("mux");
        assert_eq!(mux.arc_inverting(0, &[0.0, 0.0, 0.0], vdd), Some(false));
        assert_eq!(mux.arc_inverting(0, &[0.0, 0.0, vdd], vdd), None);
    }

    #[test]
    fn inverting_classification() {
        assert!(Function::Inv.is_inverting());
        assert!(Function::Nand.is_inverting());
        assert!(Function::Nor.is_inverting());
        assert!(!Function::And.is_inverting());
        assert!(!Function::Buf.is_inverting());
    }

    #[test]
    fn stage_eval_uses_pullup_when_pulldown_unknown() {
        // NOR2: pulldown parallel, pullup series. With a=true the pull-up is
        // off and output is decidedly 0 even when b is unknown.
        let s = Stage {
            inputs: vec![StageSignal::Pin(0), StageSignal::Pin(1)],
            output: StageSignal::Pin(0),
            pullup: Network::Series(vec![
                Network::device(0, 8.0 * UM, 0.5 * UM),
                Network::device(1, 8.0 * UM, 0.5 * UM),
            ]),
            pulldown: Network::Parallel(vec![
                Network::device(0, 2.0 * UM, 0.5 * UM),
                Network::device(1, 2.0 * UM, 0.5 * UM),
            ]),
        };
        let v = |i: usize| if i == 0 { Some(true) } else { None };
        assert_eq!(s.eval(v), Some(false));
    }
}
